//! Cross-crate integration tests: the full pipeline
//! (workload → CDN simulation → trace → analysis) must recover the
//! populations the generator planted.

use jcdn::core::characterize::{
    CacheabilityHeatmap, RequestTypeBreakdown, ResponseTypeBreakdown, TokenCategoryProvider,
    TrafficSourceBreakdown,
};
use jcdn::core::dataset::simulate;
use jcdn::trace::codec::{decode, encode, to_jsonl};
use jcdn::trace::summary::DatasetSummary;
use jcdn::ua::DeviceType;
use jcdn::workload::WorkloadConfig;

fn dataset() -> jcdn::core::dataset::Dataset {
    simulate(&WorkloadConfig::tiny(0xD0E))
}

#[test]
fn device_mix_is_recovered_from_the_logs() {
    let data = dataset();
    let b = TrafficSourceBreakdown::compute(&data.trace);

    // Ground truth from the workload (per-event device labels).
    let w = &data.workload;
    let mut truth_mobile = 0usize;
    let mut truth_total = 0usize;
    for e in &w.events {
        if w.objects[e.object as usize].mime != jcdn::trace::MimeType::Json {
            continue;
        }
        truth_total += 1;
        if w.clients[e.client as usize].device == DeviceType::Mobile {
            truth_mobile += 1;
        }
    }
    let truth_share = truth_mobile as f64 / truth_total as f64;
    let measured = b.request_share(DeviceType::Mobile);
    // The classifier reads UA strings only; it must land within 3pp of the
    // planted share.
    assert!(
        (measured - truth_share).abs() < 0.03,
        "planted {truth_share}, classified {measured}"
    );
}

#[test]
fn request_and_response_shapes_match_paper_targets() {
    let data = dataset();
    let req = RequestTypeBreakdown::compute(&data.trace);
    assert!(
        (req.download_share() - 0.84).abs() < 0.08,
        "GET share {}",
        req.download_share()
    );
    assert!(req.upload_share_of_rest() > 0.9);

    let mut resp = ResponseTypeBreakdown::compute(&data.trace);
    let uncacheable = resp.uncacheable_share();
    assert!(
        (0.42..0.72).contains(&uncacheable),
        "uncacheable share {uncacheable}"
    );
    let p75 = resp.json_smaller_than_html_at(0.75).unwrap();
    assert!(
        p75 > 0.5,
        "JSON must be much smaller than HTML at p75: {p75}"
    );
}

#[test]
fn heatmap_separates_content_from_personalized_industries() {
    use jcdn::workload::IndustryCategory;
    let data = dataset();
    let h = CacheabilityHeatmap::compute(&data.trace, &TokenCategoryProvider, 10);
    let news = h.row_mean(IndustryCategory::NewsMedia);
    let financial = h.row_mean(IndustryCategory::FinancialServices);
    if let (Some(news), Some(financial)) = (news, financial) {
        assert!(
            news > financial + 0.25,
            "news {news} must be far more cacheable than financial {financial}"
        );
    }
}

#[test]
fn trace_round_trips_through_the_binary_codec() {
    let data = dataset();
    let decoded =
        decode(encode(&data.trace).expect("simulator traces are sorted")).expect("decode");
    assert_eq!(decoded.records(), data.trace.records());
    assert_eq!(decoded.url_table(), data.trace.url_table());
    // Summaries agree as well.
    let a = DatasetSummary::compute("x", &data.trace);
    let b = DatasetSummary::compute("x", &decoded);
    assert_eq!(a, b);
}

#[test]
fn jsonl_export_parses_line_by_line() {
    let data = simulate(&WorkloadConfig::tiny(0xD0E).scaled(0.05));
    let jsonl = to_jsonl(&data.trace);
    let mut lines = 0;
    for line in jsonl.lines() {
        let v = jcdn::json::parse(line).expect("every JSONL line parses");
        assert!(v.get("url").is_some());
        assert!(v.get("time_us").is_some());
        lines += 1;
    }
    assert_eq!(lines, data.trace.len());
}

#[test]
fn simulator_cache_statuses_are_consistent_with_universe() {
    let data = dataset();
    let w = &data.workload;
    // NotCacheable records ↔ uncacheable objects, exactly.
    for view in data.trace.iter() {
        let object = w
            .objects
            .iter()
            .find(|o| o.url == view.url)
            .expect("every logged URL exists in the universe");
        assert_eq!(
            view.record.cache == jcdn::trace::CacheStatus::NotCacheable,
            !object.cacheable,
            "cache flag mismatch for {}",
            view.url
        );
    }
}

#[test]
fn dataset_summary_matches_config_shape() {
    let data = dataset();
    let s = data.summary();
    assert_eq!(s.logs, data.trace.len());
    assert!(s.domains <= data.workload.config.domains);
    assert!(s.clients > 0);
    assert!(
        s.json_logs * 10 > s.logs * 5,
        "JSON must dominate the trace"
    );
}
