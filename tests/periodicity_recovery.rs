//! Integration test: the §5.1 study recovers planted periodic flows from a
//! fully simulated dataset (generator → CDN simulator → logs → analysis).

use jcdn::core::dataset::simulate;
use jcdn::core::periodicity::{run_study, PeriodicityStudyConfig};
use jcdn::signal::periodicity::PeriodicityConfig;
use jcdn::trace::SimDuration;
use jcdn::workload::WorkloadConfig;

fn study_config() -> PeriodicityStudyConfig {
    PeriodicityStudyConfig {
        detector: PeriodicityConfig {
            permutations: 60,
            parallel: true,
            max_bins: 1 << 14,
            ..PeriodicityConfig::default()
        },
        ..PeriodicityStudyConfig::default()
    }
}

#[test]
fn planted_periods_are_recovered_through_the_full_pipeline() {
    // A 2-hour capture: long enough for several period spikes, short
    // enough for CI.
    let mut config = WorkloadConfig::tiny(0xBEAC);
    config.duration = SimDuration::from_secs(7200);
    config.clients = 500;
    config.target_events = 80_000;
    let data = simulate(&config);
    assert!(
        !data.workload.truth.periodic_objects.is_empty(),
        "generator must plant periodic objects"
    );

    let report = run_study(&data.trace, &study_config());
    assert!(
        !report.object_periods.is_empty(),
        "study must detect periodic objects"
    );

    // Every detected period matches a planted one (or a small harmonic).
    let spikes = [30.0, 60.0, 120.0, 180.0, 600.0, 900.0, 1800.0];
    let mut on_spike = 0;
    for &period in report.object_periods.values() {
        if spikes
            .iter()
            .any(|s| (period - s).abs() <= s * 0.15 || (period - 2.0 * s).abs() <= s * 0.2)
        {
            on_spike += 1;
        }
    }
    let share = on_spike as f64 / report.object_periods.len() as f64;
    assert!(
        share >= 0.75,
        "detected periods must sit on planted spikes: {share} \
         (periods: {:?})",
        report.object_periods.values().collect::<Vec<_>>()
    );

    // The periodic request share lands in a sane band around the planted
    // 6.3% (detection is conservative; some flows fall below thresholds).
    let measured = report.periodic_share();
    assert!(
        (0.015..0.12).contains(&measured),
        "periodic share {measured}"
    );

    // Detected (client, object) pairs overlap the planted ground truth.
    let w = &data.workload;
    let mut matched = 0;
    for flow in &report.periodic_flows {
        let url = data.trace.url(flow.url);
        let object = w
            .objects
            .iter()
            .position(|o| o.url == url)
            .map(|i| i as u32);
        let client = w
            .clients
            .iter()
            .position(|c| c.ip_hash == flow.client.0 .0)
            .map(|i| i as u32);
        if let (Some(object), Some(client)) = (object, client) {
            if w.truth.periodic_pairs.contains_key(&(client, object)) {
                matched += 1;
            }
        }
    }
    assert!(
        matched * 10 >= report.periodic_flows.len() * 8,
        "at least 80% of detected flows are planted: {matched}/{}",
        report.periodic_flows.len()
    );
}

#[test]
fn detector_stays_quiet_on_a_periodicity_free_workload() {
    // Zero periodic budget: all traffic is Poisson/manifest.
    let mut config = WorkloadConfig::tiny(0xACED);
    config.targets.periodic_share = 0.0;
    config.duration = SimDuration::from_secs(3600);
    config.target_events = 30_000;
    let data = simulate(&config);
    assert!(data.workload.truth.periodic_objects.is_empty());

    let report = run_study(&data.trace, &study_config());
    // Poisson flows must (almost) never be labelled periodic.
    assert!(
        report.periodic_share() < 0.01,
        "false periodic share {}",
        report.periodic_share()
    );
}
