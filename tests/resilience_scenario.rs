//! The headline resilience scenario: a ten-minute origin outage on one
//! domain, simulated with and without the client/edge countermeasures.
//!
//! The resilient run must deliver a strictly lower end-user error rate —
//! retries, serve-stale, and negative caching exist to absorb exactly this
//! kind of incident — and identical inputs must reproduce byte-identical
//! traces.

use jcdn_cdnsim::{run_default, FaultPlan, OriginOutage, ResilienceConfig, SimConfig, Window};
use jcdn_core::characterize::{AvailabilityBreakdown, TokenCategoryProvider};
use jcdn_trace::codec::encode;
use jcdn_workload::{build, Workload, WorkloadConfig};

/// Ten-minute hard outage covering most of the tiny workload's 300 s run
/// window (and then some), on the busiest domain.
fn outage_config(workload: &Workload, resilient: bool) -> SimConfig {
    let mut counts = vec![0u64; workload.domains.len()];
    for event in &workload.events {
        counts[workload.objects[event.object as usize].domain as usize] += 1;
    }
    let busiest = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    SimConfig {
        fault: FaultPlan {
            outages: vec![OriginOutage {
                domain: busiest,
                window: Window::from_secs(30, 630),
            }],
            ..FaultPlan::default()
        },
        resilience: if resilient {
            ResilienceConfig::default()
        } else {
            ResilienceConfig::disabled()
        },
        ..SimConfig::default()
    }
}

#[test]
fn resilience_strictly_lowers_end_user_error_rate() {
    let workload = build(&WorkloadConfig::tiny(0xCD4));
    let with = run_default(&workload, &outage_config(&workload, true));
    let without = run_default(&workload, &outage_config(&workload, false));

    // Both runs hit the same outage, so both see origin errors.
    assert!(without.stats.origin_errors > 0, "outage must bite");
    assert!(with.stats.origin_errors > 0);

    let rate_with = with.stats.end_user_error_rate().unwrap_or(0.0);
    let rate_without = without.stats.end_user_error_rate().unwrap_or(0.0);
    assert!(
        rate_with < rate_without,
        "resilience must strictly lower the end-user error rate \
         (with: {rate_with:.4}, without: {rate_without:.4})"
    );

    // The countermeasures actually fired.
    assert!(with.stats.retries_issued > 0);
    assert!(with.stats.stale_serves > 0);
    assert_eq!(without.stats.retries_issued, 0);
    assert_eq!(without.stats.stale_serves, 0);

    // The trace-level availability analysis agrees with the simulator's
    // own counters.
    let availability = AvailabilityBreakdown::compute(&with.trace, &TokenCategoryProvider);
    assert_eq!(availability.attempts, with.stats.requests);
    assert_eq!(availability.end_user_failures, with.stats.end_user_failures);
    assert_eq!(availability.stale_serves, with.stats.stale_serves);
    assert!((availability.end_user_error_rate() - rate_with).abs() < 1e-12);
}

#[test]
fn outage_scenario_is_deterministic() {
    let workload = build(&WorkloadConfig::tiny(0xCD4));
    let config = outage_config(&workload, true);
    let a = run_default(&workload, &config);
    let b = run_default(&workload, &config);
    assert_eq!(encode(&a.trace), encode(&b.trace));
    assert_eq!(a.stats.end_user_failures, b.stats.end_user_failures);
    assert_eq!(a.stats.retries_issued, b.stats.retries_issued);
}
