//! Integration test: the §5.2 prediction study over a fully simulated
//! dataset shows the paper's qualitative results — clustered URLs beat raw
//! URLs, accuracy rises with K, and longer history changes little.

use jcdn::core::dataset::simulate;
use jcdn::core::prediction::{run_study, PredictionStudyConfig};
use jcdn::workload::WorkloadConfig;

#[test]
fn table3_shape_holds_on_simulated_traffic() {
    let data = simulate(&WorkloadConfig::tiny(0x7AB1));
    let report = run_study(&data.trace, &PredictionStudyConfig::default());
    assert_eq!(report.rows.len(), 3);
    assert!(report.test_transitions > 1000, "need a real test set");

    // Clustered ≥ raw at every K.
    for cell in &report.rows {
        assert!(
            cell.clustered >= cell.actual,
            "K={}: clustered {} < actual {}",
            cell.k,
            cell.clustered,
            cell.actual
        );
    }
    // Accuracy grows with K.
    assert!(report.rows[2].actual >= report.rows[0].actual);
    assert!(report.rows[2].clustered >= report.rows[0].clustered);
    // Prediction works at all: K=10 raw accuracy is far above the
    // popularity floor of a ~100-object universe.
    assert!(
        report.rows[2].actual > 0.25,
        "raw K=10 accuracy {}",
        report.rows[2].actual
    );
    assert!(
        report.rows[2].clustered > 0.45,
        "clustered K=10 accuracy {}",
        report.rows[2].clustered
    );
}

#[test]
fn longer_history_changes_accuracy_only_marginally() {
    let data = simulate(&WorkloadConfig::tiny(0x7AB2).scaled(0.5));
    let n1 = run_study(&data.trace, &PredictionStudyConfig::default());
    let n5 = run_study(
        &data.trace,
        &PredictionStudyConfig {
            history: 5,
            ..PredictionStudyConfig::default()
        },
    );
    let delta = (n5.rows[2].actual - n1.rows[2].actual).abs();
    assert!(delta <= 0.08, "N=5 moved raw K=10 accuracy by {delta}");
}

#[test]
fn prediction_transfers_to_unseen_clients_of_the_same_apps() {
    // The split is by client; held-out clients are only predictable
    // because app structure transfers across clients. Verify the study's
    // numbers come from genuinely held-out clients.
    let data = simulate(&WorkloadConfig::tiny(0x7AB3).scaled(0.5));
    let report = run_study(&data.trace, &PredictionStudyConfig::default());
    assert!(report.train_clients > 0);
    assert!(report.test_clients > 0);
    let ratio = report.train_clients as f64 / (report.train_clients + report.test_clients) as f64;
    assert!(
        (0.6..0.8).contains(&ratio),
        "train fraction {ratio} should be near 70%"
    );
}
