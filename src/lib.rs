//! # jcdn — facade crate
//!
//! Re-exports the whole workspace under one roof. See the README for the
//! architecture and `DESIGN.md` for the system inventory. Examples live in
//! `examples/` and cross-crate integration tests in `tests/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use jcdn_cdnsim as cdnsim;
pub use jcdn_core as core;
pub use jcdn_json as json;
pub use jcdn_ngram as ngram;
pub use jcdn_obs as obs;
pub use jcdn_prefetch as prefetch;
pub use jcdn_signal as signal;
pub use jcdn_stats as stats;
pub use jcdn_trace as trace;
pub use jcdn_ua as ua;
pub use jcdn_url as url;
pub use jcdn_workload as workload;
