//! Workspace-local stand-in for `crossbeam`, built on `std::thread::scope`
//! (stable since Rust 1.63, below the workspace MSRV). Only the
//! `crossbeam::thread::scope` entry point jcdn uses is provided.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// Handle passed to the scope closure; spawns scoped worker threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Token handed to spawned closures (crossbeam passes a nested scope; the
    /// workspace never uses it, so this carries no operations).
    pub struct NestedScope(());

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to the enclosing `scope` call.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&NestedScope(())))
        }
    }

    /// Runs `f` with a scope in which borrowed data can be sent to threads;
    /// all spawned threads are joined before this returns. A panicking worker
    /// propagates its panic (upstream crossbeam reports it as `Err` instead —
    /// jcdn immediately `.expect`s that result, so the observable behaviour
    /// matches).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut results = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (slot, &x) in results.iter_mut().zip(&data) {
                scope.spawn(move |_| {
                    *slot = x * 10;
                });
            }
        })
        .expect("workers joined");
        assert_eq!(results, vec![10, 20, 30, 40]);
    }
}
