//! Workspace-local stand-in for `crossbeam`, built on `std::thread::scope`
//! (stable since Rust 1.63, below the workspace MSRV). Provides the two
//! entry points jcdn uses: `crossbeam::thread::scope` and the
//! `crossbeam::channel` MPMC channel (unbounded, over a mutex-guarded
//! queue — correct semantics, no lock-free cleverness).

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half; cloning adds another producer.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half; cloning adds another consumer.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// The message could not be delivered: every `Receiver` is gone.
    /// Carries the undelivered message back, like upstream crossbeam.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and every `Sender` is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing when no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel poisoned").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; fails once the channel is empty
        /// and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Drains the channel until disconnection (blocking iterator).
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel poisoned").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.state.lock().expect("channel poisoned").receivers -= 1;
        }
    }
}

/// Scoped threads.
pub mod thread {
    /// Handle passed to the scope closure; spawns scoped worker threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Token handed to spawned closures (crossbeam passes a nested scope; the
    /// workspace never uses it, so this carries no operations).
    pub struct NestedScope(());

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to the enclosing `scope` call.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(&NestedScope(())))
        }
    }

    /// Runs `f` with a scope in which borrowed data can be sent to threads;
    /// all spawned threads are joined before this returns. A panicking worker
    /// propagates its panic (upstream crossbeam reports it as `Err` instead —
    /// jcdn immediately `.expect`s that result, so the observable behaviour
    /// matches).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn mpmc_channel_fans_out_and_disconnects() {
        let (job_tx, job_rx) = super::channel::unbounded::<u64>();
        let (res_tx, res_rx) = super::channel::unbounded::<u64>();
        for i in 0..100 {
            job_tx.send(i).expect("receiver alive");
        }
        drop(job_tx);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                let rx = job_rx.clone();
                let tx = res_tx.clone();
                scope.spawn(move |_| {
                    while let Ok(i) = rx.recv() {
                        tx.send(i * 2).expect("collector alive");
                    }
                });
            }
            drop(res_tx);
            drop(job_rx);
            let mut got: Vec<u64> = res_rx.iter().collect();
            got.sort_unstable();
            let want: Vec<u64> = (0..100).map(|i| i * 2).collect();
            assert_eq!(got, want);
        })
        .expect("workers joined");
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(super::channel::SendError(7)));
    }

    #[test]
    fn recv_fails_once_senders_are_gone() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        tx.send(1).expect("receiver alive");
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut results = vec![0u64; 4];
        super::thread::scope(|scope| {
            for (slot, &x) in results.iter_mut().zip(&data) {
                scope.spawn(move |_| {
                    *slot = x * 10;
                });
            }
        })
        .expect("workers joined");
        assert_eq!(results, vec![10, 20, 30, 40]);
    }
}
