//! Derive macros for the workspace-local serde stand-in.
//!
//! The vendored `serde` traits are pure markers, so the derives only need to
//! find the type's name and emit empty impls. No `syn`/`quote`: the input is
//! scanned token-by-token for the `struct`/`enum` keyword. Generic types are
//! rejected with a compile error (nothing in jcdn derives serde on generics).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier that follows `struct` or `enum`, checking that no
/// generic parameter list follows it.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => return Err(format!("expected type name, found {other:?}")),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "the vendored serde derive does not support generic type `{name}`"
                        ));
                    }
                }
                return Ok(name);
            }
        }
    }
    Err("no struct or enum found in derive input".to_string())
}

fn emit(input: TokenStream, render: impl Fn(&str) -> String) -> TokenStream {
    match type_name(input) {
        Ok(name) => render(&name).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
