//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! narrow slice of the `rand 0.8` API that jcdn uses: `StdRng` seeded with
//! `seed_from_u64`, the `Rng` extension methods (`gen`, `gen_bool`,
//! `gen_range`), and `SliceRandom::shuffle`/`choose`. The generator is
//! xoshiro256++ seeded via splitmix64 — deterministic across platforms, which
//! is all the simulator needs (every jcdn RNG is explicitly seeded).
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine: jcdn only ever compares its own runs against each other.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (high half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed (splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator's full-range distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps a raw 64-bit draw onto `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform-in-bounds sampler. Implemented for the primitive
/// integers and `f64`; used by `Rng::gen_range` via [`SampleRange`].
pub trait SampleUniform: Copy {
    /// Uniform draw in `[low, high)` (`inclusive = false`) or `[low, high]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + (high - low) * unit_f64(rng.next_u64())
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full-range distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p` (`0.0 ≤ p ≤ 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Randomized operations on slices.
pub mod seq {
    use super::Rng;

    /// `shuffle` and `choose` for slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let share = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&share), "share {share}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
    }
}
