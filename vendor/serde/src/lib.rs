//! Workspace-local stand-in for `serde`.
//!
//! jcdn derives `Serialize`/`Deserialize` on its public data types so that
//! downstream users can plug in a real serializer, but the workspace itself
//! never serializes through serde (the trace codec is hand-rolled, JSON export
//! is hand-rolled). Since the build environment has no network access, the
//! traits are vendored as markers: deriving them compiles and records intent,
//! and nothing in-tree depends on their methods.

#![forbid(unsafe_code)]

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
