//! Workspace-local stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the proptest API its test-suites use: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_filter`/`prop_filter_map`/`prop_recursive`,
//! `prop_oneof!`, `Just`, `any`, regex-literal string strategies, ranges as
//! strategies, `prop::collection::vec`, `prop::option::of`, and
//! `prop::sample::Index`.
//!
//! Differences from upstream, deliberately accepted:
//! - No shrinking: a failing case reports its panic directly.
//! - No `proptest-regressions` persistence; runs are seeded deterministically
//!   from the test name, so every CI run explores the same cases.
//! - Integer `any` is bit-width biased rather than shrink-order biased.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG and per-test configuration.

    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic test RNG (xoshiro256++ seeded from the test name).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a over the bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::from_seed(h)
        }

        /// Seeds the generator from a raw integer via splitmix64.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`. `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (regenerating otherwise).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Maps values through `f`, regenerating whenever `f` returns `None`.
        fn prop_filter_map<U, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }

        /// Type-erases the strategy behind a cheap-to-clone handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                f: Rc::new(move |rng| self.generate(rng)),
            }
        }

        /// Builds recursive structures: `self` is the leaf strategy and
        /// `branch` wraps an inner strategy into the next level. The tree is
        /// unrolled eagerly to `depth` levels (no lazy recursion, which keeps
        /// the stub simple; `_size`/`_items` are accepted for signature
        /// compatibility).
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _size: u32,
            _items: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut current = self.boxed();
            for _ in 0..depth {
                current = branch(current).boxed();
            }
            current
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T> {
        f: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    const FILTER_ATTEMPTS: u32 = 10_000;

    /// `prop_filter` adapter.
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_ATTEMPTS {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?}: predicate rejected every candidate",
                self.reason
            );
        }
    }

    /// `prop_filter_map` adapter.
    #[derive(Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, U, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..FILTER_ATTEMPTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map {:?}: mapper rejected every candidate",
                self.reason
            );
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11)
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (start as i128 + draw as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            start + (end - start) * rng.unit_f64()
        }
    }

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod string {
    //! A tiny regex-subset interpreter for string-literal strategies.
    //!
    //! Supports what the workspace's patterns use: character classes with
    //! ranges and escapes (`[a-z0-9._~-]`), the printable-character escape
    //! `\PC`, literal characters, and `{m}`/`{m,n}`/`?`/`*`/`+` quantifiers.

    use super::test_runner::TestRng;

    #[derive(Clone, Debug)]
    struct CharSet {
        ranges: Vec<(u32, u32)>,
        total: u64,
    }

    impl CharSet {
        fn new(mut ranges: Vec<(u32, u32)>) -> Self {
            ranges.retain(|(lo, hi)| lo <= hi);
            let total = ranges.iter().map(|(lo, hi)| u64::from(hi - lo) + 1).sum();
            CharSet { ranges, total }
        }

        fn pick(&self, rng: &mut TestRng) -> char {
            assert!(self.total > 0, "empty character class");
            let mut idx = rng.below(self.total);
            for &(lo, hi) in &self.ranges {
                let span = u64::from(hi - lo) + 1;
                if idx < span {
                    return char::from_u32(lo + idx as u32).expect("valid scalar");
                }
                idx -= span;
            }
            unreachable!("index within total")
        }
    }

    /// Printable characters (`\PC`): ASCII printable plus a few Latin-1,
    /// Latin Extended, Greek, and CJK ranges. A practical slice of "not a
    /// control character" that still exercises multi-byte UTF-8 paths.
    fn printable() -> CharSet {
        CharSet::new(vec![
            (0x20, 0x7e),
            (0xa1, 0xff),
            (0x100, 0x17f),
            (0x391, 0x3a9),
            (0x3b1, 0x3c9),
            (0x4e00, 0x4e2f),
        ])
    }

    #[derive(Clone, Debug)]
    struct Element {
        set: CharSet,
        min: u32,
        max: u32,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> CharSet {
        let mut ranges = Vec::new();
        let mut pending: Vec<char> = Vec::new();
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => break,
                '\\' => pending.push(chars.next().expect("dangling escape in class")),
                '-' => {
                    // A dash is a range operator only between two chars.
                    match (pending.pop(), chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            let hi = match chars.next() {
                                Some('\\') => chars.next().expect("dangling escape in class"),
                                Some(other) => other,
                                None => panic!("unterminated character class"),
                            };
                            ranges.push((lo as u32, hi as u32));
                        }
                        (prev, _) => {
                            if let Some(p) = prev {
                                pending.push(p);
                            }
                            pending.push('-');
                        }
                    }
                }
                other => pending.push(other),
            }
        }
        for c in pending {
            ranges.push((c as u32, c as u32));
        }
        CharSet::new(ranges)
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("quantifier min"),
                        n.trim().parse().expect("quantifier max"),
                    ),
                    None => {
                        let exact = spec.trim().parse().expect("quantifier count");
                        (exact, exact)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        }
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let mut chars = pattern.chars().peekable();
        let mut elements = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars),
                '\\' => match chars.next().expect("dangling escape") {
                    'P' => {
                        let class = chars.next().expect("\\P needs a class letter");
                        assert_eq!(class, 'C', "only \\PC is supported");
                        printable()
                    }
                    'd' => CharSet::new(vec![('0' as u32, '9' as u32)]),
                    'w' => CharSet::new(vec![
                        ('a' as u32, 'z' as u32),
                        ('A' as u32, 'Z' as u32),
                        ('0' as u32, '9' as u32),
                        ('_' as u32, '_' as u32),
                    ]),
                    literal => CharSet::new(vec![(literal as u32, literal as u32)]),
                },
                '.' => printable(),
                literal => CharSet::new(vec![(literal as u32, literal as u32)]),
            };
            let (min, max) = parse_quantifier(&mut chars);
            elements.push(Element { set, min, max });
        }
        elements
    }

    /// Generates one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for element in parse(pattern) {
            let count = if element.max > element.min {
                element.min + rng.below(u64::from(element.max - element.min) + 1) as u32
            } else {
                element.min
            };
            for _ in 0..count {
                out.push(element.set.pick(rng));
            }
        }
        out
    }
}

pub mod arbitrary {
    //! The `Arbitrary` trait and `any`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy produced by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyStrategy<A> {
        _marker: std::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }

    /// Draws a bit-width first so small and large magnitudes both appear
    /// (mirrors upstream proptest's bias toward edge-ish values).
    fn biased_u64(rng: &mut TestRng) -> u64 {
        let bits = rng.below(65) as u32;
        if bits == 0 {
            0
        } else {
            rng.next_u64() >> (64 - bits)
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    biased_u64(rng) as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    let magnitude = biased_u64(rng) as $t;
                    if rng.below(2) == 0 { magnitude } else { magnitude.wrapping_neg() }
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.below(2) == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mix plain uniform values with raw bit patterns so NaN and
            // infinities appear, as they do under upstream `any::<f64>()`.
            match rng.below(4) {
                0 => f64::from_bits(rng.next_u64()),
                1 => (rng.unit_f64() - 0.5) * 2e12,
                _ => rng.unit_f64(),
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::string::generate_from_pattern("\\PC", rng)
                .chars()
                .next()
                .unwrap_or('a')
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.below(17);
            let mut out = String::new();
            for _ in 0..len {
                out.push(char::arbitrary(rng));
            }
            out
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index::from_raw(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise (upstream's default).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    /// An index into a collection whose length is unknown at generation time.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        /// Wraps a raw draw.
        pub fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Projects onto `0..len`. Panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.

    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::{ProptestConfig, TestRng};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to the strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[test] fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts within a property (panics with context, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::for_test("string_patterns");
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z][a-z0-9-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = crate::string::generate_from_pattern("[ -~]{0,20}", &mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let p = crate::string::generate_from_pattern("\\PC{0,60}", &mut rng);
            assert!(p.chars().count() <= 60);
            assert!(p.chars().all(|c| !c.is_control()));
            let cls = crate::string::generate_from_pattern(
                "[\\[\\]{}:,\"0-9a-z\\\\ .eE+-]{0,64}",
                &mut rng,
            );
            for c in cls.chars() {
                assert!(
                    "[]{}:,\"\\ .eE+-".contains(c) || c.is_ascii_digit() || c.is_ascii_lowercase(),
                    "unexpected char {c:?}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 10u64..=20, f in -1.5f64..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u32..100, 0..10),
            o in prop::option::of(1u16..),
            idx in any::<prop::sample::Index>(),
            choice in prop_oneof![Just("http"), Just("https")],
        ) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 100));
            if let Some(p) = o {
                prop_assert!(p >= 1);
            }
            prop_assert!(idx.index(7) < 7);
            prop_assert!(choice == "http" || choice == "https");
        }
    }
}
