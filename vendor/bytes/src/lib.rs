//! Workspace-local stand-in for the `bytes` crate.
//!
//! The trace codec uses `Bytes`/`BytesMut` plus the cursor-style `Buf`/`BufMut`
//! traits. This vendored version backs `Bytes` with an `Arc<Vec<u8>>` and a
//! window, so `clone` and `slice` are cheap like upstream, without any unsafe
//! code.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer with a consuming read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A view of a sub-range, sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the readable bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Growable byte buffer for encoding.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Sequential reads from a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte. Panics when empty.
    fn get_u8(&mut self) -> u8 {
        let byte = self.chunk()[0];
        self.advance(1);
        byte
    }

    /// Reads a little-endian `u16`. Panics on underrun.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`. Panics on underrun.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Fills `dest` from the cursor. Panics on underrun.
    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(self.remaining() >= dest.len(), "copy_to_slice underrun");
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    /// Reads `len` bytes into an owned buffer. Panics on underrun.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut out = vec![0u8; len];
        self.copy_to_slice(&mut out);
        Bytes::from(out)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Sequential writes onto a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xab);
        buf.put_u16_le(0x1234);
        buf.put_slice(b"hello");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 8);
        assert_eq!(bytes.get_u8(), 0xab);
        assert_eq!(bytes.get_u16_le(), 0x1234);
        let tail = bytes.copy_to_bytes(5);
        assert_eq!(tail.to_vec(), b"hello");
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_is_a_window() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = bytes.slice(2..5);
        assert_eq!(mid.to_vec(), vec![2, 3, 4]);
        assert_eq!(bytes.len(), 6, "slicing leaves the source untouched");
    }
}
