//! Workspace-local stand-in for `criterion`.
//!
//! Provides the API subset the jcdn benches use (`bench_function`,
//! `benchmark_group`, `bench_with_input`, `criterion_group!`,
//! `criterion_main!`) with a simple median-of-samples timer instead of
//! criterion's full statistical machinery. `cargo bench -- --test` runs each
//! benchmark body once, which is what CI uses to smoke-test the bench paths.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    test_mode: bool,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Calls `body` repeatedly and records the mean time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        if self.test_mode {
            std::hint::black_box(body());
            self.nanos_per_iter = 0.0;
            return;
        }
        // Warm up and size the batch so the measured window is ~20ms.
        let warmup = Instant::now();
        std::hint::black_box(body());
        let once = warmup.elapsed().as_nanos().max(1);
        let batch = (20_000_000 / once).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(body());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / batch as f64;
    }
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with both a function name and a parameter.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Times `f` and prints one result line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_one(self.test_mode, name, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks (`Criterion::benchmark_group`).
pub struct BenchmarkGroup<'c> {
    name: String,
    test_mode: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes batches by time.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Times `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_one(self.test_mode, &format!("{}/{}", self.name, name), f);
    }

    /// Times `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.test_mode, &format!("{}/{}", self.name, id.id), |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; printing happens per benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, name: &str, mut f: F) {
    let mut bencher = Bencher {
        test_mode,
        nanos_per_iter: 0.0,
    };
    f(&mut bencher);
    if test_mode {
        println!("test {name} ... ok");
    } else {
        println!("{name}: {:.1} ns/iter", bencher.nanos_per_iter);
    }
}

/// Re-export of the standard black box, for API compatibility.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bencher_times_a_body() {
        let mut ran = 0u64;
        super::run_one(false, "smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }
}
