//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! Self-contained (the workspace carries no numeric dependencies): a minimal
//! complex type and an in-place, power-of-two FFT with the conventional
//! unnormalized forward transform and `1/N`-normalized inverse.

use std::ops::{Add, Mul, Sub};

/// A complex number, `re + i·im`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Constructs from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A real number.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// Smallest power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place forward FFT.
///
/// # Panics
/// Panics when `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (normalized by `1/N`).
///
/// # Panics
/// Panics when `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    transform(data, true);
    let scale = 1.0 / data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(scale);
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex::cis(angle);
        for start in (0..n).step_by(len) {
            let mut w = Complex::real(1.0);
            for k in 0..len / 2 {
                let even = data[start + k];
                let odd = data[start + k + len / 2] * w;
                data[start + k] = even + odd;
                data[start + k + len / 2] = even - odd;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// FFT of a real signal, zero-padded to the next power of two.
pub fn rfft(signal: &[f64]) -> Vec<Complex> {
    let n = next_pow2(signal.len());
    let mut data = vec![Complex::ZERO; n];
    for (slot, &x) in data.iter_mut().zip(signal.iter()) {
        *slot = Complex::real(x);
    }
    fft_in_place(&mut data);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) DFT for cross-checking.
    fn dft(signal: &[Complex]) -> Vec<Complex> {
        let n = signal.len();
        (0..n)
            .map(|k| {
                let mut sum = Complex::ZERO;
                for (t, &x) in signal.iter().enumerate() {
                    sum = sum
                        + x * Complex::cis(-std::f64::consts::TAU * k as f64 * t as f64 / n as f64);
                }
                sum
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "index {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn matches_naive_dft() {
        let signal: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut fast = signal.clone();
        fft_in_place(&mut fast);
        let slow = dft(&signal);
        assert_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn round_trip_identity() {
        let signal: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sqrt(), -(i as f64) * 0.1))
            .collect();
        let mut data = signal.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        assert_close(&data, &signal, 1e-10);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 16];
        data[0] = Complex::real(1.0);
        fft_in_place(&mut data);
        for x in &data {
            assert!((x.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_at_its_bin() {
        let n = 64;
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|t| (std::f64::consts::TAU * k0 as f64 * t as f64 / n as f64).cos())
            .collect();
        let spectrum = rfft(&signal);
        let powers: Vec<f64> = spectrum.iter().map(|c| c.norm_sq()).collect();
        let max_bin = (1..n / 2)
            .max_by(|&a, &b| powers[a].partial_cmp(&powers[b]).unwrap())
            .unwrap();
        assert_eq!(max_bin, k0);
    }

    #[test]
    fn parseval_identity() {
        let signal: Vec<f64> = (0..128).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let spectrum = rfft(&signal);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            spectrum.iter().map(|c| c.norm_sq()).sum::<f64>() / spectrum.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn trivial_sizes() {
        let mut one = vec![Complex::real(3.0)];
        fft_in_place(&mut one);
        assert_eq!(one[0], Complex::real(3.0));

        let mut two = vec![Complex::real(1.0), Complex::real(2.0)];
        fft_in_place(&mut two);
        assert!((two[0].re - 3.0).abs() < 1e-12);
        assert!((two[1].re + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut data = vec![Complex::ZERO; 12];
        fft_in_place(&mut data);
    }

    #[test]
    fn rfft_pads_to_pow2() {
        assert_eq!(rfft(&[1.0; 20]).len(), 32);
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(17), 32);
    }
}
