//! # jcdn-signal — FFT, autocorrelation, and periodicity detection
//!
//! §5.1 of the paper detects periodic request flows by "a combination of
//! autocorrelation (on the time domain) and fourier transform (on the
//! frequency domain) to extract key periods and randomness to filter noisy
//! periods", extending Vlachos et al. (SDM '05). This crate implements the
//! whole stack from scratch:
//!
//! * [`fft`] — an iterative radix-2 Cooley–Tukey FFT over [`fft::Complex`]
//!   (no external numeric dependency),
//! * [`spectrum`] — periodograms and frequency/period conversion,
//! * [`acf`] — circular autocorrelation via the Wiener–Khinchin theorem,
//! * [`periodicity`] — the paper's four-step detection algorithm with
//!   permutation-derived significance thresholds (x = 100 by default) and a
//!   1-second sampling grid, parallelized across permutations on the
//!   `jcdn-exec` scatter–gather pool.
//!
//! ## Example: recover a planted 30-second period
//!
//! ```
//! use jcdn_signal::periodicity::{detect_period, PeriodicityConfig};
//!
//! // A client polling every 30s for an hour, with ±1s of jitter baked in
//! // by rounding to the sampling grid.
//! let times: Vec<f64> = (0..120).map(|i| i as f64 * 30.0).collect();
//! let cfg = PeriodicityConfig::default();
//! let hit = detect_period(&times, &cfg).expect("planted period must be found");
//! assert!((hit.period_seconds - 30.0).abs() <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod fft;
pub mod periodicity;
pub mod spectrum;
