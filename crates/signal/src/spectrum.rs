//! Periodograms.

use crate::fft::{next_pow2, rfft};

/// The one-sided periodogram of a real signal.
///
/// The signal is mean-removed (so the DC bin does not dominate), zero-padded
/// to the next power of two, and transformed; `power[k]` is `|X[k]|²/N` for
/// `k = 0 .. N/2` where `N` is the padded length. `power[0]` is ~0 by
/// construction.
#[derive(Clone, Debug)]
pub struct Periodogram {
    /// Power per frequency bin, indices `0..=N/2`.
    pub power: Vec<f64>,
    /// Padded FFT length `N`.
    pub n: usize,
    /// Original (unpadded) signal length.
    pub signal_len: usize,
}

impl Periodogram {
    /// Computes the periodogram of `signal`.
    pub fn compute(signal: &[f64]) -> Periodogram {
        let signal_len = signal.len();
        let n = next_pow2(signal_len);
        let mean = if signal_len > 0 {
            signal.iter().sum::<f64>() / signal_len as f64
        } else {
            0.0
        };
        let centered: Vec<f64> = signal.iter().map(|&x| x - mean).collect();
        let spectrum = rfft(&centered);
        let power: Vec<f64> = spectrum[..=n / 2]
            .iter()
            .map(|c| c.norm_sq() / n as f64)
            .collect();
        Periodogram {
            power,
            n,
            signal_len,
        }
    }

    /// The period (in samples) corresponding to frequency bin `k`.
    ///
    /// Bin `k` holds frequency `k/N` cycles per sample, i.e. period `N/k`
    /// samples. `k = 0` has no period; returns `f64::INFINITY`.
    pub fn bin_period(&self, k: usize) -> f64 {
        if k == 0 {
            f64::INFINITY
        } else {
            self.n as f64 / k as f64
        }
    }

    /// The frequency bin whose period is closest to `period` samples.
    pub fn bin_for_period(&self, period: f64) -> usize {
        if period <= 0.0 {
            return 0;
        }
        let k = (self.n as f64 / period).round() as usize;
        k.min(self.power.len() - 1)
    }

    /// The maximum power over "interesting" bins — `k ≥ 2` (periods of at
    /// most half the padded window) up to Nyquist — and its bin. Returns
    /// `None` when the signal is too short.
    pub fn peak(&self) -> Option<(usize, f64)> {
        let lo = 2.min(self.power.len().saturating_sub(1)).max(1);
        (lo..self.power.len())
            .map(|k| (k, self.power[k]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Bins with power strictly above `threshold`, in decreasing power
    /// order, restricted to `k ≥ 2`.
    pub fn significant_bins(&self, threshold: f64) -> Vec<usize> {
        let mut bins: Vec<usize> = (2..self.power.len())
            .filter(|&k| self.power[k] > threshold)
            .collect();
        bins.sort_by(|&a, &b| self.power[b].total_cmp(&self.power[a]));
        bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, period: f64) -> Vec<f64> {
        (0..n)
            .map(|t| (std::f64::consts::TAU * t as f64 / period).sin() + 5.0)
            .collect()
    }

    #[test]
    fn peak_finds_planted_period() {
        let p = Periodogram::compute(&tone(256, 16.0));
        let (k, _) = p.peak().unwrap();
        assert!(
            (p.bin_period(k) - 16.0).abs() < 1.0,
            "got {}",
            p.bin_period(k)
        );
    }

    #[test]
    fn dc_offset_is_removed() {
        let p = Periodogram::compute(&[7.0; 64]);
        assert!(p.power[0] < 1e-18);
        assert!(p.power.iter().all(|&x| x < 1e-18));
    }

    #[test]
    fn bin_period_inverse_of_bin_for_period() {
        let p = Periodogram::compute(&tone(128, 8.0));
        for k in 2..20 {
            let period = p.bin_period(k);
            assert_eq!(p.bin_for_period(period), k);
        }
        assert_eq!(p.bin_period(0), f64::INFINITY);
        assert_eq!(p.bin_for_period(0.0), 0);
    }

    #[test]
    fn significant_bins_sorted_by_power() {
        // Two tones with different amplitudes.
        let n = 256;
        let signal: Vec<f64> = (0..n)
            .map(|t| {
                3.0 * (std::f64::consts::TAU * t as f64 / 32.0).sin()
                    + 1.0 * (std::f64::consts::TAU * t as f64 / 8.0).sin()
            })
            .collect();
        let p = Periodogram::compute(&signal);
        let bins = p.significant_bins(1.0);
        assert!(bins.len() >= 2);
        // Strongest first: period 32 → bin 8; period 8 → bin 32.
        assert_eq!(bins[0], 8);
        assert!(bins.contains(&32));
    }

    #[test]
    fn empty_and_tiny_signals() {
        let p = Periodogram::compute(&[]);
        assert_eq!(p.signal_len, 0);
        let p = Periodogram::compute(&[1.0]);
        assert_eq!(p.n, 1);
    }
}
