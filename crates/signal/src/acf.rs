//! Autocorrelation via the Wiener–Khinchin theorem.

use crate::fft::{fft_in_place, ifft_in_place, next_pow2, Complex};

/// The (linear, biased) autocorrelation of a real signal, normalized so
/// `acf[0] = 1`.
///
/// Computed through the frequency domain: zero-pad the mean-removed signal
/// to at least `2n` (to avoid circular wrap-around), FFT, multiply by the
/// conjugate, inverse FFT. O(n log n) instead of the naive O(n²), which
/// matters when thousands of client-object flows each run 100 permutations.
#[derive(Clone, Debug)]
pub struct Autocorrelation {
    /// `acf[lag]` for `lag = 0 .. n`, with `acf[0] = 1` (or all zeros for a
    /// constant signal).
    pub values: Vec<f64>,
}

impl Autocorrelation {
    /// Computes the autocorrelation of `signal`.
    pub fn compute(signal: &[f64]) -> Autocorrelation {
        let n = signal.len();
        if n == 0 {
            return Autocorrelation { values: Vec::new() };
        }
        let mean = signal.iter().sum::<f64>() / n as f64;
        let padded_len = next_pow2(2 * n);
        let mut data = vec![Complex::ZERO; padded_len];
        for (slot, &x) in data.iter_mut().zip(signal.iter()) {
            *slot = Complex::real(x - mean);
        }
        fft_in_place(&mut data);
        for x in data.iter_mut() {
            *x = Complex::real(x.norm_sq());
        }
        ifft_in_place(&mut data);
        let r0 = data[0].re;
        let values = if r0 <= 1e-12 {
            // Constant signal: autocovariance is identically zero.
            vec![0.0; n]
        } else {
            data[..n].iter().map(|c| c.re / r0).collect()
        };
        Autocorrelation { values }
    }

    /// Number of lags (equal to the signal length).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for an empty signal.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Local maxima in `lag = 2 .. len/2`, returned as `(lag, value)` in
    /// decreasing value order. Lags 0 and 1 are excluded — lag 0 is the
    /// trivial peak and lag 1 is dominated by short-range smoothness.
    pub fn peaks(&self) -> Vec<(usize, f64)> {
        let half = self.values.len() / 2;
        let mut peaks = Vec::new();
        for lag in 2..half {
            let v = self.values[lag];
            let prev = self.values[lag - 1];
            let next = self
                .values
                .get(lag + 1)
                .copied()
                .unwrap_or(f64::NEG_INFINITY);
            if v > prev && v >= next {
                peaks.push((lag, v));
            }
        }
        peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
        peaks
    }

    /// The highest peak (per [`peaks`][Self::peaks]), if any.
    pub fn max_peak(&self) -> Option<(usize, f64)> {
        self.peaks().into_iter().next()
    }

    /// The strongest local maximum within `±tolerance` lags of `lag`,
    /// searching the raw values (not just strict peaks at the exact spot).
    pub fn peak_near(&self, lag: usize, tolerance: usize) -> Option<(usize, f64)> {
        let half = self.values.len() / 2;
        let lo = lag.saturating_sub(tolerance).max(2);
        let hi = (lag + tolerance).min(half.saturating_sub(1));
        if lo > hi {
            return None;
        }
        (lo..=hi)
            .map(|l| (l, self.values[l]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive O(n²) reference implementation.
    fn naive_acf(signal: &[f64]) -> Vec<f64> {
        let n = signal.len();
        let mean = signal.iter().sum::<f64>() / n as f64;
        let x: Vec<f64> = signal.iter().map(|&v| v - mean).collect();
        let r0: f64 = x.iter().map(|v| v * v).sum();
        (0..n)
            .map(|lag| {
                let r: f64 = (0..n - lag).map(|i| x[i] * x[i + lag]).sum();
                if r0 > 0.0 {
                    r / r0
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn matches_naive_reference() {
        let signal: Vec<f64> = (0..50)
            .map(|i| ((i * 7 % 13) as f64) + (i as f64 * 0.1))
            .collect();
        let fast = Autocorrelation::compute(&signal);
        let slow = naive_acf(&signal);
        for (lag, (a, b)) in fast.values.iter().zip(slow.iter()).enumerate() {
            assert!((a - b).abs() < 1e-9, "lag {lag}: {a} vs {b}");
        }
    }

    #[test]
    fn lag_zero_is_one() {
        let signal: Vec<f64> = (0..32).map(|i| (i as f64 * 0.9).sin()).collect();
        let acf = Autocorrelation::compute(&signal);
        assert!((acf.values[0] - 1.0).abs() < 1e-12);
        assert!(acf.values.iter().all(|&v| v <= 1.0 + 1e-12));
    }

    #[test]
    fn periodic_signal_peaks_at_its_period() {
        let signal: Vec<f64> = (0..240)
            .map(|t| if t % 12 == 0 { 1.0 } else { 0.0 })
            .collect();
        let acf = Autocorrelation::compute(&signal);
        let (lag, value) = acf.max_peak().unwrap();
        assert_eq!(lag, 12);
        assert!(value > 0.8);
    }

    #[test]
    fn constant_signal_has_zero_acf() {
        let acf = Autocorrelation::compute(&[4.0; 20]);
        assert!(acf.values.iter().all(|&v| v == 0.0));
        assert!(acf.max_peak().is_none() || acf.max_peak().unwrap().1 == 0.0);
    }

    #[test]
    fn empty_signal() {
        let acf = Autocorrelation::compute(&[]);
        assert!(acf.is_empty());
        assert!(acf.max_peak().is_none());
    }

    #[test]
    fn peak_near_finds_offset_peaks() {
        let signal: Vec<f64> = (0..300)
            .map(|t| if t % 30 == 0 { 1.0 } else { 0.0 })
            .collect();
        let acf = Autocorrelation::compute(&signal);
        // Search around lag 28 with tolerance 3 → should find 30.
        let (lag, _) = acf.peak_near(28, 3).unwrap();
        assert_eq!(lag, 30);
        // Tolerance too small → misses (but returns the best in range).
        let (lag, v) = acf.peak_near(20, 2).unwrap();
        assert!((18..=22).contains(&lag));
        assert!(v < 0.5);
    }

    #[test]
    fn peak_near_edge_cases() {
        let acf = Autocorrelation::compute(&[1.0, 0.0, 1.0, 0.0]);
        // Window collapses below the valid range.
        assert!(acf.peak_near(0, 0).is_none() || acf.peak_near(0, 0).is_some());
        let short = Autocorrelation::compute(&[1.0]);
        assert!(short.peak_near(5, 2).is_none());
    }
}
