//! The §5.1 period-detection algorithm.
//!
//! The paper (extending Vlachos et al. \[29\]):
//!
//! 1. Calculate the autocorrelation and Fourier transform for each flow.
//! 2. Randomly permute the flow x times and calculate autocorrelation and
//!    Fourier transform for each permutation, recording the max period and
//!    frequency of each.
//! 3. Of all max periods and frequencies, take the (x−1)-th largest as
//!    thresholds for the original, unpermuted flow.
//! 4. Use the thresholds to discard insignificant periods/frequencies, then
//!    line up autocorrelation and Fourier transform to find the most
//!    significant period.
//!
//! The algorithm returns either the single most significant period or
//! nothing ("we assume a flow only contains one significant period").
//!
//! Implementation notes:
//!
//! * Flows are sampled onto a 1-second counting grid by default, matching
//!   the paper's choice ("accurate detection of periods less than this
//!   sampling rate is difficult due to network jitter").
//! * Permutations shuffle the *sampled counting series* (as in Vlachos et
//!   al.): this preserves the per-bin count marginal while destroying
//!   temporal structure — the null model the thresholds are drawn from.
//!   (Shuffling inter-arrivals would be a broken null: a perfectly
//!   periodic flow has identical gaps, so every permutation would be
//!   exactly as periodic as the original.)
//! * "(x−1)-th largest" is implemented as the `significance_quantile`
//!   (default 0.99): with x = 100 permutations the threshold is the
//!   second-largest permutation maximum.
//! * The Fourier candidate gives the coarse period (bin resolution N/k);
//!   the ACF peak near it refines the estimate and acts as the lineup
//!   check — harmonics pass the power test but fail the ACF test.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::acf::Autocorrelation;
use crate::spectrum::Periodogram;

/// Tuning knobs for [`detect_period`]. Defaults match the paper.
#[derive(Clone, Debug)]
pub struct PeriodicityConfig {
    /// Width of one sampling bin, in seconds (paper: 1s).
    pub sampling_seconds: f64,
    /// Number of permutations `x` (paper: 100; "values greater than 100 do
    /// not produce significantly different results").
    pub permutations: usize,
    /// Quantile of permutation maxima used as the significance threshold
    /// (0.99 ≈ the paper's "(x−1)-th largest" with x = 100).
    pub significance_quantile: f64,
    /// Base seed for the permutation RNG; detection is deterministic in
    /// (input, config).
    pub seed: u64,
    /// Minimum number of events required to attempt detection.
    pub min_events: usize,
    /// Cap on series length; longer spans coarsen the sampling bin instead
    /// of growing the FFT without bound.
    pub max_bins: usize,
    /// ACF lineup tolerance as a fraction of the candidate period.
    pub acf_lineup_tolerance: f64,
    /// Run permutations on multiple threads.
    pub parallel: bool,
}

impl Default for PeriodicityConfig {
    fn default() -> Self {
        PeriodicityConfig {
            sampling_seconds: 1.0,
            permutations: 100,
            significance_quantile: 0.99,
            seed: 0x1a2b_3c4d,
            min_events: 4,
            max_bins: 1 << 17,
            acf_lineup_tolerance: 0.08,
            parallel: false,
        }
    }
}

/// A detected period and its evidence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectedPeriod {
    /// The period in seconds (ACF-refined).
    pub period_seconds: f64,
    /// The period in sampling bins.
    pub period_bins: usize,
    /// Periodogram power at the detecting bin.
    pub power: f64,
    /// ACF value at the refined lag.
    pub acf_value: f64,
    /// The permutation-derived power threshold that was exceeded.
    pub power_threshold: f64,
    /// The permutation-derived ACF threshold that was exceeded.
    pub acf_threshold: f64,
}

impl DetectedPeriod {
    /// True when `other` agrees with this period within `tolerance_bins`
    /// sampling bins — the paper's object/client period "match" test.
    pub fn matches(&self, other: &DetectedPeriod, tolerance_bins: usize) -> bool {
        self.period_bins.abs_diff(other.period_bins) <= tolerance_bins
    }
}

/// Detects the most significant period in a sequence of event times
/// (seconds, any order), or `None` when no period survives the
/// significance thresholds.
pub fn detect_period(times: &[f64], cfg: &PeriodicityConfig) -> Option<DetectedPeriod> {
    let (series, sampling) = bin_times(times, cfg)?;
    detect_in_series(&series, sampling, cfg)
}

/// Detects up to `max_periods` distinct periods — the multi-period
/// analysis the paper leaves as future work.
///
/// Iterative component removal: after each detection the per-phase mean
/// profile of the detected period is subtracted from the series (zeroing
/// its periodic structure), and detection reruns on the residual. Periods
/// that are within tolerance of — or small integer multiples of — an
/// already-found one are treated as residue of the same component and stop
/// the loop.
pub fn detect_periods(
    times: &[f64],
    cfg: &PeriodicityConfig,
    max_periods: usize,
) -> Vec<DetectedPeriod> {
    let Some((mut series, sampling)) = bin_times(times, cfg) else {
        return Vec::new();
    };
    let mut found: Vec<DetectedPeriod> = Vec::new();
    while found.len() < max_periods {
        let Some(hit) = detect_in_series(&series, sampling, cfg) else {
            break;
        };
        let duplicate = found.iter().any(|prev| {
            let ratio = hit.period_bins.max(prev.period_bins) as f64
                / hit.period_bins.min(prev.period_bins).max(1) as f64;
            (ratio - ratio.round()).abs() <= 0.1 && ratio.round() <= 4.0
        });
        if duplicate {
            break;
        }
        subtract_periodic_component(&mut series, hit.period_bins);
        found.push(hit);
    }
    found
}

/// Bins event times onto the sampling grid, or `None` when the input is
/// too small/degenerate for detection.
fn bin_times(times: &[f64], cfg: &PeriodicityConfig) -> Option<(Vec<f64>, f64)> {
    if times.len() < cfg.min_events || times.iter().any(|t| !t.is_finite()) {
        return None;
    }
    let mut sorted = times.to_vec();
    sorted.sort_unstable_by(|a, b| a.total_cmp(b));
    let (Some(&first), Some(&last)) = (sorted.first(), sorted.last()) else {
        return None;
    };
    let span = last - first;
    if span <= 0.0 {
        return None;
    }
    // Coarsen sampling if the span would exceed the bin cap.
    let sampling = cfg.sampling_seconds.max(span / cfg.max_bins as f64);
    let bins = (span / sampling).floor() as usize + 1;
    if bins < 8 {
        return None;
    }
    Some((bin_events(&sorted, sampling, bins), sampling))
}

/// Removes the `period`-periodic structure from `series` by subtracting
/// each phase class's mean.
fn subtract_periodic_component(series: &mut [f64], period: usize) {
    if period == 0 || period >= series.len() {
        return;
    }
    for phase in 0..period {
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut i = phase;
        while i < series.len() {
            sum += series[i];
            n += 1;
            i += period;
        }
        let mean = sum / n as f64;
        let mut i = phase;
        while i < series.len() {
            series[i] -= mean;
            i += period;
        }
    }
}

/// Runs detection on an already-binned series.
fn detect_in_series(
    series: &[f64],
    sampling: f64,
    cfg: &PeriodicityConfig,
) -> Option<DetectedPeriod> {
    let bins = series.len();
    let periodogram = Periodogram::compute(series);
    let acf = Autocorrelation::compute(series);

    // Null-model thresholds from permutations of the sampled series.
    let (power_threshold, acf_threshold) = permutation_thresholds(series, cfg)?;

    // Step 4: line up FFT candidates with ACF peaks. Two directions:
    //
    // (a) every significant periodogram bin is mapped to the nearest ACF
    //     peak (harmonics pass the power test but fail the ACF test);
    // (b) the strongest ACF peaks whose lag is an integer multiple of some
    //     significant periodogram period are also candidates — a flow
    //     pooled from many clients with spread phases can have its
    //     *fundamental* Fourier component cancel while harmonics stay
    //     strong, yet the fundamental still autocorrelates fully.
    //
    // Among all candidates the winner is the highest ACF value; values
    // within 5% of the maximum count as ties and the shortest period wins
    // (a jittered flow has near-equal ACF peaks at every multiple of the
    // true period — the fundamental is the smallest of them).
    let mut candidates: Vec<DetectedPeriod> = Vec::new();
    let significant = periodogram.significant_bins(power_threshold);
    for &k in &significant {
        let coarse_period = periodogram.bin_period(k);
        let period_bins = coarse_period.round() as usize;
        if period_bins < 2 || period_bins > bins / 2 {
            continue;
        }
        let tolerance = ((period_bins as f64 * cfg.acf_lineup_tolerance).ceil() as usize).max(1);
        let Some((lag, acf_value)) = acf.peak_near(period_bins, tolerance) else {
            continue;
        };
        if acf_value <= acf_threshold {
            continue;
        }
        candidates.push(DetectedPeriod {
            period_seconds: lag as f64 * sampling,
            period_bins: lag,
            power: periodogram.power[k],
            acf_value,
            power_threshold,
            acf_threshold,
        });
    }
    for (lag, acf_value) in acf.peaks().into_iter().take(8) {
        if acf_value <= acf_threshold || lag < 2 || lag > bins / 2 {
            continue;
        }
        let supporting = significant.iter().copied().find(|&k| {
            let period = periodogram.bin_period(k);
            if period <= 0.0 || !period.is_finite() {
                return false;
            }
            let m = lag as f64 / period;
            // Bounded multiple: the cancelled fundamental sits a small
            // integer multiple above the surviving harmonics.
            (0.85..=6.5).contains(&m) && (m - m.round()).abs() <= 0.15
        });
        if let Some(k) = supporting {
            candidates.push(DetectedPeriod {
                period_seconds: lag as f64 * sampling,
                period_bins: lag,
                power: periodogram.power[k],
                acf_value,
                power_threshold,
                acf_threshold,
            });
        }
    }

    // Deduplicate by lag (several adjacent spectral bins map to the same
    // ACF peak), keeping the strongest spectral evidence per lag.
    candidates.sort_by(|a, b| {
        a.period_bins
            .cmp(&b.period_bins)
            .then(b.power.total_cmp(&a.power))
    });
    candidates.dedup_by_key(|c| c.period_bins);

    // Final pick: the fundamental is the candidate the *other* candidates
    // are integer multiples of (a periodic flow shows ACF peaks at every
    // multiple of its true period, all with similar values under jitter).
    // Rank by (multiple-support count, ACF value, shorter period).
    let support = |c: &DetectedPeriod| {
        candidates
            .iter()
            .filter(|o| {
                let m = o.period_bins as f64 / c.period_bins as f64;
                m >= 0.9 && (m - m.round()).abs() <= 0.1
            })
            .count()
    };
    candidates
        .iter()
        .max_by(|a, b| {
            support(a)
                .cmp(&support(b))
                .then(a.acf_value.total_cmp(&b.acf_value))
                .then(b.period_bins.cmp(&a.period_bins))
        })
        .copied()
}

/// Bins sorted event times (seconds) into a counting series.
fn bin_events(sorted_times: &[f64], sampling: f64, bins: usize) -> Vec<f64> {
    let t0 = sorted_times[0];
    let mut series = vec![0.0; bins];
    for &t in sorted_times {
        let idx = (((t - t0) / sampling) as usize).min(bins - 1);
        series[idx] += 1.0;
    }
    series
}

/// Runs the permutation null model and returns `(power, acf)` thresholds.
fn permutation_thresholds(series: &[f64], cfg: &PeriodicityConfig) -> Option<(f64, f64)> {
    if cfg.permutations == 0 || series.is_empty() {
        return None;
    }

    let one = |i: usize| -> (f64, f64) {
        // Per-permutation RNG derived from (seed, index) so results do not
        // depend on thread scheduling.
        let mut rng = StdRng::seed_from_u64(splitmix(
            cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ));
        let mut shuffled = series.to_vec();
        shuffled.shuffle(&mut rng);
        let max_power = Periodogram::compute(&shuffled)
            .peak()
            .map_or(0.0, |(_, p)| p);
        let max_acf = Autocorrelation::compute(&shuffled)
            .max_peak()
            .map_or(0.0, |(_, v)| v);
        (max_power, max_acf)
    };

    let threads = if cfg.parallel && cfg.permutations >= 8 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        1
    };
    // Per-permutation derived RNGs make the output independent of thread
    // count, so the pool width is purely a throughput knob.
    let results: Vec<(f64, f64)> = jcdn_exec::scatter_gather(cfg.permutations, threads, one);

    let mut powers: Vec<f64> = results.iter().map(|&(p, _)| p).collect();
    let mut acfs: Vec<f64> = results.iter().map(|&(_, a)| a).collect();
    powers.sort_by(|a, b| b.total_cmp(a));
    acfs.sort_by(|a, b| b.total_cmp(a));
    let idx = (((1.0 - cfg.significance_quantile) * cfg.permutations as f64).floor() as usize)
        .min(cfg.permutations - 1);
    Some((powers[idx], acfs[idx]))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn cfg() -> PeriodicityConfig {
        PeriodicityConfig {
            permutations: 50,
            ..PeriodicityConfig::default()
        }
    }

    fn periodic_times(period: f64, count: usize, jitter: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|i| {
                let j = if jitter > 0.0 {
                    rng.gen_range(-jitter..jitter)
                } else {
                    0.0
                };
                (i as f64 * period + j).max(0.0)
            })
            .collect()
    }

    #[test]
    fn clean_period_is_detected_exactly() {
        for period in [30.0, 60.0, 120.0] {
            let times = periodic_times(period, 120, 0.0, 1);
            let hit = detect_period(&times, &cfg()).unwrap_or_else(|| panic!("period {period}"));
            assert!(
                (hit.period_seconds - period).abs() <= 1.0,
                "period {period}: got {}",
                hit.period_seconds
            );
        }
    }

    #[test]
    fn jittered_period_is_detected() {
        // ±2s network jitter on a 60s poller, 2h of data.
        let times = periodic_times(60.0, 120, 2.0, 7);
        let hit = detect_period(&times, &cfg()).expect("jittered period");
        assert!(
            (hit.period_seconds - 60.0).abs() <= 3.0,
            "got {}",
            hit.period_seconds
        );
    }

    #[test]
    fn poisson_noise_is_rejected() {
        // Exponential inter-arrivals with the same mean rate as a 60s
        // poller must not produce a period.
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = 0.0;
        let times: Vec<f64> = (0..120)
            .map(|_| {
                let u: f64 = 1.0 - rng.gen::<f64>();
                t += -u.ln() * 60.0;
                t
            })
            .collect();
        let mut rejected = 0;
        for seed in 0..5u64 {
            let c = PeriodicityConfig { seed, ..cfg() };
            if detect_period(&times, &c).is_none() {
                rejected += 1;
            }
        }
        assert!(rejected >= 4, "only {rejected}/5 noise runs rejected");
    }

    #[test]
    fn too_few_events_or_degenerate_input() {
        assert!(detect_period(&[], &cfg()).is_none());
        assert!(detect_period(&[1.0, 2.0, 3.0], &cfg()).is_none());
        assert!(detect_period(&[5.0; 10], &cfg()).is_none()); // zero span
        assert!(detect_period(&[0.0, f64::NAN, 2.0, 3.0, 4.0], &cfg()).is_none());
        // Span shorter than 8 bins.
        let tight: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        assert!(detect_period(&tight, &cfg()).is_none());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut times = periodic_times(30.0, 100, 0.0, 3);
        times.reverse();
        times.swap(5, 50);
        let hit = detect_period(&times, &cfg()).expect("order must not matter");
        assert!((hit.period_seconds - 30.0).abs() <= 1.0);
    }

    #[test]
    fn deterministic_per_seed_and_parallel_equals_serial() {
        let times = periodic_times(45.0, 100, 1.0, 9);
        let serial = detect_period(
            &times,
            &PeriodicityConfig {
                parallel: false,
                ..cfg()
            },
        );
        let parallel = detect_period(
            &times,
            &PeriodicityConfig {
                parallel: true,
                ..cfg()
            },
        );
        assert_eq!(serial, parallel);
        assert_eq!(serial, detect_period(&times, &cfg()));
    }

    #[test]
    fn long_span_coarsens_sampling_instead_of_failing() {
        // A 10-day span at 1s sampling would need 864k bins > max_bins.
        let c = PeriodicityConfig {
            max_bins: 1 << 12,
            ..cfg()
        };
        let times = periodic_times(3600.0, 240, 0.0, 5); // hourly for 10 days
        let hit = detect_period(&times, &c).expect("hourly period");
        // Sampling coarsened to ~211s; accept within one coarse bin.
        assert!(
            (hit.period_seconds - 3600.0).abs() <= 260.0,
            "got {}",
            hit.period_seconds
        );
    }

    #[test]
    fn matches_tolerance() {
        let a = DetectedPeriod {
            period_seconds: 30.0,
            period_bins: 30,
            power: 1.0,
            acf_value: 0.9,
            power_threshold: 0.1,
            acf_threshold: 0.1,
        };
        let b = DetectedPeriod {
            period_bins: 32,
            ..a
        };
        assert!(a.matches(&b, 2));
        assert!(!a.matches(&b, 1));
    }

    #[test]
    fn multi_period_flow_yields_both_periods() {
        // Two interleaved pollers on the same object: 30s and 77s
        // (deliberately non-harmonic), over ~2 hours.
        let mut times = periodic_times(30.0, 240, 0.5, 21);
        times.extend(periodic_times(77.0, 94, 0.5, 22));
        let hits = detect_periods(&times, &cfg(), 4);
        assert!(
            hits.len() >= 2,
            "expected two periods, got {:?}",
            hits.iter().map(|h| h.period_seconds).collect::<Vec<_>>()
        );
        let periods: Vec<f64> = hits.iter().map(|h| h.period_seconds).collect();
        assert!(
            periods.iter().any(|p| (p - 30.0).abs() <= 2.0),
            "30s missing from {periods:?}"
        );
        assert!(
            periods.iter().any(|p| (p - 77.0).abs() <= 3.0),
            "77s missing from {periods:?}"
        );
    }

    #[test]
    fn single_period_flow_yields_one_period() {
        let times = periodic_times(60.0, 120, 0.5, 23);
        let hits = detect_periods(&times, &cfg(), 4);
        assert_eq!(
            hits.len(),
            1,
            "harmonic residue must not double-count: {:?}",
            hits.iter().map(|h| h.period_seconds).collect::<Vec<_>>()
        );
        assert!((hits[0].period_seconds - 60.0).abs() <= 1.5);
    }

    #[test]
    fn noise_yields_no_periods() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut t = 0.0;
        let times: Vec<f64> = (0..200)
            .map(|_| {
                let u: f64 = 1.0 - rng.gen::<f64>();
                t += -u.ln() * 45.0;
                t
            })
            .collect();
        let hits = detect_periods(&times, &cfg(), 4);
        assert!(hits.len() <= 1, "noise produced {:?}", hits.len());
    }

    #[test]
    fn detect_periods_respects_the_cap() {
        let times = periodic_times(30.0, 200, 0.0, 25);
        assert!(detect_periods(&times, &cfg(), 0).is_empty());
        assert!(detect_periods(&times, &cfg(), 1).len() <= 1);
    }

    #[test]
    fn zero_permutations_yields_none() {
        let times = periodic_times(30.0, 100, 0.0, 1);
        let c = PeriodicityConfig {
            permutations: 0,
            ..cfg()
        };
        assert!(detect_period(&times, &c).is_none());
    }
}
