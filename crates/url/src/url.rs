//! The parsed URL type.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A parsed HTTP(S) URL.
///
/// Designed for CDN log analysis rather than full WHATWG conformance: no
/// userinfo, no IDNA, no percent-decoding (logs carry URLs verbatim and the
/// n-gram model must see exactly the bytes the client sent). The canonical
/// string form returned by [`Display`][fmt::Display] re-parses to an equal
/// value.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    pub(crate) scheme: Option<String>,
    pub(crate) host: String,
    pub(crate) port: Option<u16>,
    /// Always starts with `/` (an empty input path becomes `/`).
    pub(crate) path: String,
    /// Raw key/value pairs in order of appearance; a key without `=` has a
    /// `None` value (`?flag` vs `?flag=`).
    pub(crate) query: Vec<(String, Option<String>)>,
    pub(crate) fragment: Option<String>,
}

impl Url {
    /// Parses a URL string. See [`crate::ParseUrlError`] for failure modes.
    pub fn parse(input: &str) -> Result<Self, crate::ParseUrlError> {
        crate::parse::parse_url(input)
    }

    /// Builder entry point: an `https` URL on `host` with path `/`.
    pub fn for_host(host: impl Into<String>) -> Self {
        Url {
            scheme: Some("https".to_owned()),
            host: host.into(),
            port: None,
            path: "/".to_owned(),
            query: Vec::new(),
            fragment: None,
        }
    }

    /// Returns a copy with the given path (a leading `/` is added when
    /// missing).
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        let path = path.into();
        self.path = if path.starts_with('/') {
            path
        } else {
            format!("/{path}")
        };
        self
    }

    /// Returns a copy with `key=value` appended to the query.
    pub fn with_query_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.push((key.into(), Some(value.into())));
        self
    }

    /// The scheme (`http`/`https`), if the URL carried one.
    pub fn scheme(&self) -> Option<&str> {
        self.scheme.as_deref()
    }

    /// The host (authority without port). Empty for rooted-path URLs.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The explicit port, if any.
    pub fn port(&self) -> Option<u16> {
        self.port
    }

    /// The path, always starting with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Path segments between `/` separators, excluding empty leading one.
    ///
    /// `/a/b/` yields `["a", "b", ""]` — the trailing empty segment
    /// distinguishes directory-style URLs, which matters for clustering.
    pub fn path_segments(&self) -> impl Iterator<Item = &str> {
        let mut path = &self.path[..];
        if let Some(stripped) = path.strip_prefix('/') {
            path = stripped;
        }
        path.split('/').filter(move |_| !path.is_empty())
    }

    /// Raw query pairs in order of appearance.
    pub fn query_pairs(&self) -> &[(String, Option<String>)] {
        &self.query
    }

    /// First value of query parameter `key`, if present with a value.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// The fragment (without `#`), if any.
    pub fn fragment(&self) -> Option<&str> {
        self.fragment.as_deref()
    }

    /// Host plus path plus query — the object identity used throughout the
    /// paper (scheme and fragment do not distinguish cached objects).
    pub fn object_key(&self) -> String {
        let mut out = String::with_capacity(self.host.len() + self.path.len() + 16);
        out.push_str(&self.host);
        out.push_str(&self.path);
        push_query(&mut out, &self.query);
        out
    }

    /// Resolves `reference` against this URL, for following manifest
    /// references: absolute references replace everything, protocol-relative
    /// keep the scheme, rooted paths keep the authority, and host-relative
    /// references (`host/path`) are treated as absolute with this URL's
    /// scheme.
    pub fn join(&self, reference: &str) -> Result<Url, crate::ParseUrlError> {
        let mut resolved = Url::parse(reference)?;
        if resolved.host.is_empty() {
            resolved.host = self.host.clone();
            resolved.port = self.port;
        }
        if resolved.scheme.is_none() {
            resolved.scheme = self.scheme.clone();
        }
        Ok(resolved)
    }
}

pub(crate) fn push_query(out: &mut String, query: &[(String, Option<String>)]) {
    for (i, (k, v)) in query.iter().enumerate() {
        out.push(if i == 0 { '?' } else { '&' });
        out.push_str(k);
        if let Some(v) = v {
            out.push('=');
            out.push_str(v);
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(scheme) = &self.scheme {
            write!(f, "{scheme}://")?;
        }
        f.write_str(&self.host)?;
        if let Some(port) = self.port {
            write!(f, ":{port}")?;
        }
        f.write_str(&self.path)?;
        let mut q = String::new();
        push_query(&mut q, &self.query);
        f.write_str(&q)?;
        if let Some(fragment) = &self.fragment {
            write!(f, "#{fragment}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_canonical_urls() {
        let url = Url::for_host("api.example.com")
            .with_path("v1/items")
            .with_query_param("page", "2");
        assert_eq!(url.to_string(), "https://api.example.com/v1/items?page=2");
    }

    #[test]
    fn object_key_strips_scheme_and_fragment() {
        let url = Url::parse("https://h.example/a/b?x=1#frag").unwrap();
        assert_eq!(url.object_key(), "h.example/a/b?x=1");
    }

    #[test]
    fn path_segments() {
        let url = Url::parse("https://h.example/a/b/c").unwrap();
        let segs: Vec<_> = url.path_segments().collect();
        assert_eq!(segs, vec!["a", "b", "c"]);

        let root = Url::parse("https://h.example/").unwrap();
        assert_eq!(root.path_segments().count(), 0);

        let trailing = Url::parse("https://h.example/a/").unwrap();
        let segs: Vec<_> = trailing.path_segments().collect();
        assert_eq!(segs, vec!["a", ""]);
    }

    #[test]
    fn query_param_lookup() {
        let url = Url::parse("https://h.example/p?a=1&b&c=&a=2").unwrap();
        assert_eq!(url.query_param("a"), Some("1"));
        assert_eq!(url.query_param("b"), None); // present but valueless
        assert_eq!(url.query_param("c"), Some(""));
        assert_eq!(url.query_pairs().len(), 4);
    }

    #[test]
    fn join_rooted_path_keeps_authority() {
        let base = Url::parse("https://news.example:8443/stories").unwrap();
        let joined = base.join("/article/1234").unwrap();
        assert_eq!(joined.to_string(), "https://news.example:8443/article/1234");
    }

    #[test]
    fn join_host_relative_gets_scheme() {
        let base = Url::parse("https://news.example/stories").unwrap();
        let joined = base.join("cdn.example.net/image1234.jpg").unwrap();
        assert_eq!(joined.to_string(), "https://cdn.example.net/image1234.jpg");
    }

    #[test]
    fn join_absolute_replaces_everything() {
        let base = Url::parse("https://a.example/x").unwrap();
        let joined = base.join("http://b.example/y?z=1").unwrap();
        assert_eq!(joined.to_string(), "http://b.example/y?z=1");
    }
}
