//! URL argument clustering (Klotski-style).
//!
//! §5.2 of the paper evaluates its n-gram predictor on both raw URLs and
//! *clustered* URLs, "using clustering similar to URL argument clustering in
//! \[13\]" (Klotski, NSDI '15). The idea: URLs that differ only in
//! client-specific identifiers (`/article/1234` vs `/article/5678`,
//! `?user=ab12…` vs `?user=cd34…`) denote the same *application step* and
//! should map to the same key, revealing general object dependencies.
//!
//! [`Clusterer`] rewrites each path segment and query value through a set of
//! token rules; anything identifier-like becomes a placeholder.

use crate::Url;

/// The placeholder classes a token can be rewritten to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenClass {
    /// Decimal digits only (`1234`) → `{id}`.
    NumericId,
    /// UUID shape (8-4-4-4-12 hex) → `{uuid}`.
    Uuid,
    /// Long hex string (≥ 8 chars) → `{hex}`.
    Hex,
    /// Long mixed alphanumeric token (≥ 10 chars with both letters and
    /// digits) → `{token}`.
    Token,
    /// Signed decimal number with a fraction (`40.7128`, `-74.0060`) →
    /// `{coord}`. Geo coordinates in telemetry URLs are the paper's example
    /// of unique client information.
    Coordinate,
    /// Anything else is kept verbatim.
    Literal,
}

impl TokenClass {
    /// The placeholder text for this class (`None` for literals).
    pub fn placeholder(self) -> Option<&'static str> {
        match self {
            TokenClass::NumericId => Some("{id}"),
            TokenClass::Uuid => Some("{uuid}"),
            TokenClass::Hex => Some("{hex}"),
            TokenClass::Token => Some("{token}"),
            TokenClass::Coordinate => Some("{coord}"),
            TokenClass::Literal => None,
        }
    }
}

/// Classifies one token (a path segment or a query value).
pub fn classify_token(token: &str) -> TokenClass {
    if token.is_empty() {
        return TokenClass::Literal;
    }
    // Strip a common file extension before classifying: `image1234.jpg`
    // clusters on its stem.
    let stem = token;

    if stem.bytes().all(|b| b.is_ascii_digit()) {
        return TokenClass::NumericId;
    }
    if is_uuid(stem) {
        return TokenClass::Uuid;
    }
    if is_coordinate(stem) {
        return TokenClass::Coordinate;
    }
    if stem.len() >= 8 && stem.bytes().all(|b| b.is_ascii_hexdigit()) {
        return TokenClass::Hex;
    }
    let has_digit = stem.bytes().any(|b| b.is_ascii_digit());
    let has_alpha = stem.bytes().any(|b| b.is_ascii_alphabetic());
    let plain = stem
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
    if stem.len() >= 10 && has_digit && has_alpha && plain {
        return TokenClass::Token;
    }
    TokenClass::Literal
}

fn is_uuid(s: &str) -> bool {
    let bytes = s.as_bytes();
    if bytes.len() != 36 {
        return false;
    }
    for (i, &b) in bytes.iter().enumerate() {
        match i {
            8 | 13 | 18 | 23 => {
                if b != b'-' {
                    return false;
                }
            }
            _ => {
                if !b.is_ascii_hexdigit() {
                    return false;
                }
            }
        }
    }
    true
}

fn is_coordinate(s: &str) -> bool {
    let body = s.strip_prefix('-').unwrap_or(s);
    let Some((int, frac)) = body.split_once('.') else {
        return false;
    };
    !int.is_empty()
        && !frac.is_empty()
        && int.bytes().all(|b| b.is_ascii_digit())
        && frac.bytes().all(|b| b.is_ascii_digit())
}

/// Rewrites URLs into cluster keys.
///
/// Construction is cheap; the type exists (rather than a free function) so
/// policies can be tuned per-experiment.
#[derive(Clone, Debug)]
pub struct Clusterer {
    /// Also replace file-name stems: `image1234.jpg` → `image{id}.jpg`.
    /// Enabled by default — manifest-referenced media share one key.
    pub cluster_file_stems: bool,
    /// Drop query parameters entirely instead of clustering their values.
    /// Disabled by default (the paper clusters values, keeping the keys).
    pub drop_query: bool,
}

impl Default for Clusterer {
    fn default() -> Self {
        Clusterer {
            cluster_file_stems: true,
            drop_query: false,
        }
    }
}

impl Clusterer {
    /// Produces the cluster key for `url`: host + clustered path +
    /// clustered query (keys kept, identifier-like values replaced).
    pub fn cluster(&self, url: &Url) -> String {
        let mut out = String::with_capacity(url.path().len() + url.host().len() + 16);
        out.push_str(url.host());
        let path = url.path();
        if path == "/" {
            out.push('/');
        } else {
            for segment in path.split('/').skip(1) {
                out.push('/');
                out.push_str(&self.cluster_segment(segment));
            }
        }
        if !self.drop_query && !url.query_pairs().is_empty() {
            for (i, (key, value)) in url.query_pairs().iter().enumerate() {
                out.push(if i == 0 { '?' } else { '&' });
                out.push_str(key);
                if let Some(value) = value {
                    out.push('=');
                    match classify_token(value).placeholder() {
                        Some(ph) => out.push_str(ph),
                        None => out.push_str(value),
                    }
                }
            }
        }
        out
    }

    fn cluster_segment(&self, segment: &str) -> String {
        if let Some(ph) = classify_token(segment).placeholder() {
            return ph.to_owned();
        }
        if self.cluster_file_stems {
            if let Some((stem, ext)) = segment.rsplit_once('.') {
                if !ext.is_empty()
                    && ext.len() <= 5
                    && ext.bytes().all(|b| b.is_ascii_alphanumeric())
                {
                    if let Some(ph) = classify_token(stem).placeholder() {
                        return format!("{ph}.{ext}");
                    }
                    // `image1234` → `image{id}`: trailing digit run after a
                    // literal stem is still an identifier.
                    if let Some(rewritten) = cluster_trailing_digits(stem) {
                        return format!("{rewritten}.{ext}");
                    }
                }
            }
            if let Some(rewritten) = cluster_trailing_digits(segment) {
                return rewritten;
            }
        }
        segment.to_owned()
    }
}

/// `image1234` → `image{id}` when a literal prefix ends in ≥2 digits.
fn cluster_trailing_digits(s: &str) -> Option<String> {
    let digits = s.bytes().rev().take_while(|b| b.is_ascii_digit()).count();
    if digits >= 2 && digits < s.len() {
        Some(format!("{}{{id}}", &s[..s.len() - digits]))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> String {
        Clusterer::default().cluster(&Url::parse(s).unwrap())
    }

    #[test]
    fn numeric_path_segments_cluster() {
        assert_eq!(
            key("https://news.example/article/1234"),
            "news.example/article/{id}"
        );
        assert_eq!(
            key("https://news.example/article/5678"),
            "news.example/article/{id}"
        );
    }

    #[test]
    fn uuid_and_hex_segments() {
        assert_eq!(
            key("https://api.example/u/550e8400-e29b-41d4-a716-446655440000/feed"),
            "api.example/u/{uuid}/feed"
        );
        assert_eq!(
            key("https://api.example/s/deadbeef00"),
            "api.example/s/{hex}"
        );
    }

    #[test]
    fn mixed_tokens_and_short_words_survive() {
        assert_eq!(key("https://a.example/k/ab12cd34ef99"), "a.example/k/{hex}");
        assert_eq!(
            key("https://a.example/k/session9x8y7z6w5v"),
            "a.example/k/{token}"
        );
        assert_eq!(key("https://a.example/v2/items"), "a.example/v2/items");
        assert_eq!(key("https://a.example/api/news"), "a.example/api/news");
    }

    #[test]
    fn coordinates_cluster() {
        assert_eq!(
            key("https://t.example/report?lat=40.7128&lon=-74.0060"),
            "t.example/report?lat={coord}&lon={coord}"
        );
    }

    #[test]
    fn query_values_cluster_but_keys_remain() {
        assert_eq!(
            key("https://a.example/p?user=123456&page=2&sort=asc"),
            "a.example/p?user={id}&page={id}&sort=asc"
        );
        assert_eq!(key("https://a.example/p?flag"), "a.example/p?flag");
    }

    #[test]
    fn file_stems_cluster() {
        assert_eq!(
            key("https://img.example/image1234.jpg"),
            "img.example/image{id}.jpg"
        );
        assert_eq!(
            key("https://img.example/video9.mp4"),
            "img.example/video9.mp4" // single trailing digit: kept
        );
    }

    #[test]
    fn drop_query_mode() {
        let c = Clusterer {
            drop_query: true,
            ..Clusterer::default()
        };
        let url = Url::parse("https://a.example/p?user=123").unwrap();
        assert_eq!(c.cluster(&url), "a.example/p");
    }

    #[test]
    fn root_path() {
        assert_eq!(key("https://a.example/"), "a.example/");
    }

    #[test]
    fn classify_token_edges() {
        assert_eq!(classify_token(""), TokenClass::Literal);
        assert_eq!(classify_token("0"), TokenClass::NumericId);
        assert_eq!(classify_token("abcdef"), TokenClass::Literal); // hex but < 8
        assert_eq!(classify_token("abcdef12"), TokenClass::Hex);
        assert_eq!(classify_token("1.5"), TokenClass::Coordinate);
        assert_eq!(classify_token("-1.5"), TokenClass::Coordinate);
        assert_eq!(classify_token("1."), TokenClass::Literal);
        assert_eq!(classify_token(".5"), TokenClass::Literal);
        assert_eq!(
            classify_token("550e8400-e29b-41d4-a716-446655440000"),
            TokenClass::Uuid
        );
    }

    #[test]
    fn identical_cluster_for_same_app_step_different_clients() {
        // The property Table 3 relies on: two clients' URLs for the same
        // step share a key.
        let a = key("https://game.example/score/9912?player=p1q2r3s4t5u6");
        let b = key("https://game.example/score/17?player=z9y8x7w6v5u4");
        assert_eq!(a, b);
    }
}
