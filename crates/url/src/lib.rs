//! # jcdn-url — URL model, parser, and argument clustering
//!
//! CDN request logs identify objects by URL (§3.1 of the paper). This crate
//! provides:
//!
//! * [`Url`] — a parsed URL (scheme, host, port, path, query, fragment) with
//!   a canonical [`Display`][std::fmt::Display] form that round-trips,
//! * [`Url::parse`] — a permissive HTTP-URL parser that accepts the three
//!   reference shapes seen in JSON bodies (absolute, protocol-relative,
//!   host-relative, rooted path),
//! * [`cluster`] — *URL argument clustering* in the spirit of Klotski
//!   (Butkiewicz et al., NSDI '15), the technique §5.2 of the paper uses to
//!   group URLs that differ only in client-specific identifiers. The n-gram
//!   predictor trains on either raw URLs or these cluster keys (Table 3).
//!
//! ## Example
//!
//! ```
//! use jcdn_url::{Url, cluster::Clusterer};
//!
//! let url = Url::parse("https://api.news.example/article/1234?user=sess9x8k2m7q1").unwrap();
//! assert_eq!(url.host(), "api.news.example");
//! assert_eq!(url.path(), "/article/1234");
//!
//! let clusterer = Clusterer::default();
//! let key = clusterer.cluster(&url);
//! assert_eq!(key, "api.news.example/article/{id}?user={token}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
mod parse;
mod url;

pub use parse::ParseUrlError;
pub use url::Url;
