//! Permissive HTTP URL parsing.

use std::fmt;

use crate::url::Url;

/// Why a URL string failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseUrlError {
    /// Empty input.
    Empty,
    /// A scheme other than `http`/`https`.
    UnsupportedScheme(String),
    /// `scheme://` with nothing after it.
    MissingHost,
    /// Port was present but not a valid `u16`.
    InvalidPort(String),
    /// Whitespace or control characters in the input.
    IllegalCharacter(char),
}

impl fmt::Display for ParseUrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseUrlError::Empty => write!(f, "empty URL"),
            ParseUrlError::UnsupportedScheme(s) => write!(f, "unsupported scheme {s:?}"),
            ParseUrlError::MissingHost => write!(f, "missing host after scheme"),
            ParseUrlError::InvalidPort(p) => write!(f, "invalid port {p:?}"),
            ParseUrlError::IllegalCharacter(c) => write!(f, "illegal character {c:?} in URL"),
        }
    }
}

impl std::error::Error for ParseUrlError {}

/// Parses the URL shapes found in CDN logs and JSON manifest bodies:
///
/// * absolute — `https://host[:port]/path?query#fragment`
/// * protocol-relative — `//host/path`
/// * host-relative — `host.tld/path` (a dot before the first `/`)
/// * rooted path — `/path?query` (host left empty, resolved via
///   [`Url::join`])
pub(crate) fn parse_url(input: &str) -> Result<Url, ParseUrlError> {
    if input.is_empty() {
        return Err(ParseUrlError::Empty);
    }
    if let Some(c) = input
        .chars()
        .find(|c| c.is_whitespace() || (*c as u32) < 0x20)
    {
        return Err(ParseUrlError::IllegalCharacter(c));
    }

    let (scheme, rest) = if let Some(rest) = strip_scheme(input, "https") {
        (Some("https".to_owned()), rest)
    } else if let Some(rest) = strip_scheme(input, "http") {
        (Some("http".to_owned()), rest)
    } else if let Some(rest) = input.strip_prefix("//") {
        (None, rest)
    } else if let Some((candidate, _)) = input.split_once("://") {
        return Err(ParseUrlError::UnsupportedScheme(candidate.to_owned()));
    } else {
        // No scheme: decide between rooted path and host-relative.
        if input.starts_with('/') {
            let (path, query, fragment) = split_path_query_fragment(input);
            return Ok(Url {
                scheme: None,
                host: String::new(),
                port: None,
                path: normalize_path(path),
                query: parse_query(query),
                fragment: fragment.map(str::to_owned),
            });
        }
        let host_end = input.find('/').unwrap_or(input.len());
        if !input[..host_end].contains('.') {
            // Not recognizably a host — treat as a bare relative path.
            let (path, query, fragment) = split_path_query_fragment(input);
            return Ok(Url {
                scheme: None,
                host: String::new(),
                port: None,
                path: normalize_path(&format!("/{path}")),
                query: parse_query(query),
                fragment: fragment.map(str::to_owned),
            });
        }
        (None, input)
    };

    // `rest` is authority[/path...]
    let authority_end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
    let authority = &rest[..authority_end];
    if authority.is_empty() {
        return Err(ParseUrlError::MissingHost);
    }
    let (host, port) = match authority.rsplit_once(':') {
        Some((h, p)) if !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()) => {
            let port: u16 = p
                .parse()
                .map_err(|_| ParseUrlError::InvalidPort(p.to_owned()))?;
            (h.to_owned(), Some(port))
        }
        Some((_, p)) if p.bytes().all(|b| b.is_ascii_digit()) => {
            return Err(ParseUrlError::InvalidPort(p.to_owned()));
        }
        _ => (authority.to_owned(), None),
    };

    let (path, query, fragment) = split_path_query_fragment(&rest[authority_end..]);
    Ok(Url {
        scheme,
        host,
        port,
        path: normalize_path(path),
        query: parse_query(query),
        fragment: fragment.map(str::to_owned),
    })
}

fn strip_scheme<'a>(input: &'a str, scheme: &str) -> Option<&'a str> {
    let rest = input.strip_prefix(scheme)?;
    rest.strip_prefix("://")
}

/// Splits `/path?query#fragment` into its three raw parts.
fn split_path_query_fragment(input: &str) -> (&str, Option<&str>, Option<&str>) {
    let (before_fragment, fragment) = match input.split_once('#') {
        Some((b, f)) => (b, Some(f)),
        None => (input, None),
    };
    let (path, query) = match before_fragment.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (before_fragment, None),
    };
    (path, query, fragment)
}

fn normalize_path(path: &str) -> String {
    if path.is_empty() {
        "/".to_owned()
    } else if path.starts_with('/') {
        path.to_owned()
    } else {
        format!("/{path}")
    }
}

fn parse_query(query: Option<&str>) -> Vec<(String, Option<String>)> {
    let Some(query) = query else {
        return Vec::new();
    };
    if query.is_empty() {
        return Vec::new();
    }
    query
        .split('&')
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), Some(v.to_owned())),
            None => (pair.to_owned(), None),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Url {
        Url::parse(s).unwrap_or_else(|e| panic!("{s:?} should parse: {e}"))
    }

    #[test]
    fn absolute_url_full_form() {
        let u = parse("https://api.example.com:8443/v1/items?a=1&b=2#top");
        assert_eq!(u.scheme(), Some("https"));
        assert_eq!(u.host(), "api.example.com");
        assert_eq!(u.port(), Some(8443));
        assert_eq!(u.path(), "/v1/items");
        assert_eq!(u.query_param("b"), Some("2"));
        assert_eq!(u.fragment(), Some("top"));
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "https://h.example/",
            "http://h.example/a/b?x=1&y#f",
            "//h.example/p",
            "h.example/p?q=2",
            "/just/a/path?k",
            "https://h.example:80/",
        ] {
            let u = parse(s);
            let reparsed = parse(&u.to_string());
            assert_eq!(u, reparsed, "round-trip of {s}");
        }
    }

    #[test]
    fn bare_host_gets_root_path() {
        let u = parse("https://example.com");
        assert_eq!(u.path(), "/");
        assert_eq!(u.to_string(), "https://example.com/");
    }

    #[test]
    fn protocol_relative() {
        let u = parse("//cdn.example.net/lib.js");
        assert_eq!(u.scheme(), None);
        assert_eq!(u.host(), "cdn.example.net");
        assert_eq!(u.path(), "/lib.js");
    }

    #[test]
    fn host_relative_requires_dot() {
        let u = parse("news.example.com/stories");
        assert_eq!(u.host(), "news.example.com");
        assert_eq!(u.path(), "/stories");

        // No dot before the slash: treated as a relative path.
        let u = parse("stories/today");
        assert_eq!(u.host(), "");
        assert_eq!(u.path(), "/stories/today");
    }

    #[test]
    fn rooted_path() {
        let u = parse("/article/1234?ref=push");
        assert_eq!(u.host(), "");
        assert_eq!(u.path(), "/article/1234");
        assert_eq!(u.query_param("ref"), Some("push"));
    }

    #[test]
    fn query_shapes() {
        let u = parse("https://h.example/p?plain&empty=&pair=v");
        assert_eq!(
            u.query_pairs(),
            &[
                ("plain".to_owned(), None),
                ("empty".to_owned(), Some(String::new())),
                ("pair".to_owned(), Some("v".to_owned())),
            ]
        );
        // '?' with nothing after it produces an empty query.
        let u = parse("https://h.example/p?");
        assert!(u.query_pairs().is_empty());
    }

    #[test]
    fn error_cases() {
        assert_eq!(Url::parse(""), Err(ParseUrlError::Empty));
        assert_eq!(
            Url::parse("ftp://example.com/x"),
            Err(ParseUrlError::UnsupportedScheme("ftp".to_owned()))
        );
        assert_eq!(Url::parse("https://"), Err(ParseUrlError::MissingHost));
        assert_eq!(
            Url::parse("https://h.example:99999/"),
            Err(ParseUrlError::InvalidPort("99999".to_owned()))
        );
        assert_eq!(
            Url::parse("https://h.example/a b"),
            Err(ParseUrlError::IllegalCharacter(' '))
        );
    }

    #[test]
    fn ipv4_host_with_port() {
        let u = parse("http://10.0.0.1:8080/health");
        assert_eq!(u.host(), "10.0.0.1");
        assert_eq!(u.port(), Some(8080));
    }

    #[test]
    fn colon_in_path_does_not_confuse_port() {
        let u = parse("https://h.example/a:b/c");
        assert_eq!(u.port(), None);
        assert_eq!(u.path(), "/a:b/c");
    }
}
