//! Property tests for URL parsing and clustering.

use jcdn_url::cluster::Clusterer;
use jcdn_url::Url;
use proptest::prelude::*;

/// Generates syntactically valid host names.
fn arb_host() -> impl Strategy<Value = String> {
    ("[a-z][a-z0-9-]{0,8}", "[a-z]{2,4}").prop_map(|(name, tld)| format!("{name}.{tld}"))
}

/// Generates path strings of URL-safe segments.
fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9._~-]{1,10}", 0..5)
        .prop_map(|segments| format!("/{}", segments.join("/")))
}

fn arb_query() -> impl Strategy<Value = String> {
    prop::collection::vec(("[a-z]{1,6}", "[a-zA-Z0-9]{0,8}"), 0..4).prop_map(|pairs| {
        if pairs.is_empty() {
            String::new()
        } else {
            format!(
                "?{}",
                pairs
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join("&")
            )
        }
    })
}

proptest! {
    #[test]
    fn display_reparses_to_equal_url(
        host in arb_host(),
        path in arb_path(),
        query in arb_query(),
        scheme in prop_oneof![Just("http"), Just("https")],
        port in prop::option::of(1u16..),
    ) {
        let port_part = port.map(|p| format!(":{p}")).unwrap_or_default();
        let input = format!("{scheme}://{host}{port_part}{path}{query}");
        let url = Url::parse(&input).expect("constructed URL must parse");
        let round = Url::parse(&url.to_string()).expect("display must reparse");
        prop_assert_eq!(url, round);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,60}") {
        let _ = Url::parse(&s);
    }

    #[test]
    fn object_key_is_scheme_invariant(host in arb_host(), path in arb_path(), query in arb_query()) {
        let a = Url::parse(&format!("http://{host}{path}{query}")).unwrap();
        let b = Url::parse(&format!("https://{host}{path}{query}")).unwrap();
        prop_assert_eq!(a.object_key(), b.object_key());
    }

    #[test]
    fn clustering_is_idempotent_on_ids(
        host in arb_host(),
        section in "[a-z]{3,8}",
        id_a in 0u64..1_000_000,
        id_b in 0u64..1_000_000,
    ) {
        let c = Clusterer::default();
        let a = c.cluster(&Url::parse(&format!("https://{host}/{section}/{id_a}")).unwrap());
        let b = c.cluster(&Url::parse(&format!("https://{host}/{section}/{id_b}")).unwrap());
        // Same application step, different ids → same cluster key.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cluster_key_never_contains_raw_long_numbers(
        host in arb_host(),
        id in 100u64..u64::MAX,
    ) {
        let c = Clusterer::default();
        let key = c.cluster(&Url::parse(&format!("https://{host}/x/{id}?u={id}")).unwrap());
        prop_assert!(!key.contains(&id.to_string()), "key {key} leaks id {id}");
    }

    #[test]
    fn join_of_rooted_path_preserves_host(host in arb_host(), path in arb_path()) {
        let base = Url::parse(&format!("https://{host}/start")).unwrap();
        let joined = base.join(&path).unwrap();
        prop_assert_eq!(joined.host(), base.host());
        prop_assert_eq!(joined.path(), path.as_str());
    }
}
