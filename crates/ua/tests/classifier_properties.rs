//! Property tests: the classifier recovers the generator's ground truth
//! for every spec and seed, and never panics on arbitrary byte soup.

use jcdn_ua::gen::{EmbeddedKind, UaGenerator, UaSpec};
use jcdn_ua::{classify, DeviceType};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_spec() -> impl Strategy<Value = UaSpec> {
    prop_oneof![
        Just(UaSpec::MobileBrowser),
        Just(UaSpec::MobileApp("NewsApp")),
        Just(UaSpec::MobileApp("GameParty")),
        Just(UaSpec::DesktopBrowser),
        Just(UaSpec::Embedded(EmbeddedKind::Console)),
        Just(UaSpec::Embedded(EmbeddedKind::Tv)),
        Just(UaSpec::Embedded(EmbeddedKind::Watch)),
        Just(UaSpec::Embedded(EmbeddedKind::Iot)),
        Just(UaSpec::Script),
        Just(UaSpec::Missing),
        Just(UaSpec::Garbage),
    ]
}

proptest! {
    #[test]
    fn classification_matches_ground_truth(spec in arb_spec(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (ua, truth) = UaGenerator::new().generate(&mut rng, spec);
        let c = classify(ua.as_deref());
        prop_assert_eq!(c.device, truth.device, "ua {:?}", ua);
        prop_assert_eq!(c.is_browser, truth.is_browser, "ua {:?}", ua);
    }

    #[test]
    fn classifier_never_panics_on_arbitrary_strings(ua in "\\PC{0,120}") {
        let c = classify(Some(&ua));
        // Whatever it is, browser classification requires the Mozilla
        // preamble, so unprefixed noise is never a browser.
        if !ua.starts_with("Mozilla/") {
            prop_assert!(!c.is_browser);
        }
    }

    #[test]
    fn device_and_platform_agree(spec in arb_spec(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (ua, _) = UaGenerator::new().generate(&mut rng, spec);
        let c = classify(ua.as_deref());
        // The platform's implied device type never contradicts the final
        // device classification except when an EDC record overrides it —
        // and overrides only move Android/unknown devices into Embedded.
        let implied = c.platform.device_type();
        prop_assert!(
            c.device == implied || c.device == DeviceType::Embedded,
            "device {:?} vs platform {:?} for {:?}",
            c.device,
            c.platform,
            ua
        );
    }
}
