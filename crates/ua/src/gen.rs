//! User-agent string generation (workload side).
//!
//! The synthetic CDN needs UA headers whose *population* matches what the
//! paper's classifier saw. [`UaGenerator`] renders realistic strings for a
//! requested [`UaSpec`] and returns the ground truth alongside, so the
//! pipeline can later verify that classification recovers the planted mix
//! (Figure 3).

use rand::Rng;

use crate::types::{DeviceType, Platform};

/// What kind of agent string to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UaSpec {
    /// A mobile browser (Safari on iOS or Chrome on Android).
    MobileBrowser,
    /// A native mobile app with the given product token.
    MobileApp(&'static str),
    /// A desktop browser (Chrome/Firefox/Edge on Windows/macOS/Linux).
    DesktopBrowser,
    /// A game console, TV, or watch native agent.
    Embedded(EmbeddedKind),
    /// A script/HTTP-library agent (classified Unknown by the paper).
    Script,
    /// No `User-Agent` header at all.
    Missing,
    /// A malformed/unidentifiable agent string.
    Garbage,
}

/// Embedded device families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmbeddedKind {
    /// Game consoles.
    Console,
    /// Smart TVs and streaming sticks.
    Tv,
    /// Smart watches.
    Watch,
    /// Other IoT.
    Iot,
}

/// Ground-truth labels for a generated UA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroundTruth {
    /// True device type.
    pub device: DeviceType,
    /// True platform.
    pub platform: Platform,
    /// Whether the agent is a browser.
    pub is_browser: bool,
}

/// Deterministic generator of realistic UA strings.
///
/// Stateless apart from the RNG passed per call; one generator can be shared
/// across the whole workload build.
#[derive(Clone, Copy, Debug, Default)]
pub struct UaGenerator;

impl UaGenerator {
    /// Creates a generator.
    pub fn new() -> Self {
        UaGenerator
    }

    /// Generates the UA header value (None for [`UaSpec::Missing`]) and its
    /// ground truth.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        spec: UaSpec,
    ) -> (Option<String>, GroundTruth) {
        match spec {
            UaSpec::MobileBrowser => self.mobile_browser(rng),
            UaSpec::MobileApp(app) => self.mobile_app(rng, app),
            UaSpec::DesktopBrowser => self.desktop_browser(rng),
            UaSpec::Embedded(kind) => self.embedded(rng, kind),
            UaSpec::Script => self.script(rng),
            UaSpec::Missing => (
                None,
                GroundTruth {
                    device: DeviceType::Unknown,
                    platform: Platform::Unknown,
                    is_browser: false,
                },
            ),
            UaSpec::Garbage => self.garbage(rng),
        }
    }

    fn mobile_browser<R: Rng + ?Sized>(&self, rng: &mut R) -> (Option<String>, GroundTruth) {
        if rng.gen_bool(0.5) {
            let (ios, webkit) = *pick(
                rng,
                &[
                    ("12_4", "605.1.15"),
                    ("13_1", "605.1.15"),
                    ("11_4", "604.1.38"),
                ],
            );
            let ua = format!(
                "Mozilla/5.0 (iPhone; CPU iPhone OS {ios} like Mac OS X) AppleWebKit/{webkit} \
                 (KHTML, like Gecko) Version/{} Mobile/15E148 Safari/604.1",
                ios.replace('_', ".")
            );
            (
                Some(ua),
                GroundTruth {
                    device: DeviceType::Mobile,
                    platform: Platform::Ios,
                    is_browser: true,
                },
            )
        } else {
            let model = *pick(rng, &["SM-G960F", "SM-A505F", "Pixel 3", "Moto G7"]);
            let android = *pick(rng, &["8.1.0", "9", "10"]);
            let chrome = *pick(rng, &["74.0.3729.157", "75.0.3770.101", "76.0.3809.89"]);
            let ua = format!(
                "Mozilla/5.0 (Linux; Android {android}; {model}) AppleWebKit/537.36 \
                 (KHTML, like Gecko) Chrome/{chrome} Mobile Safari/537.36"
            );
            (
                Some(ua),
                GroundTruth {
                    device: DeviceType::Mobile,
                    platform: Platform::Android,
                    is_browser: true,
                },
            )
        }
    }

    fn mobile_app<R: Rng + ?Sized>(&self, rng: &mut R, app: &str) -> (Option<String>, GroundTruth) {
        let major = rng.gen_range(1..9);
        let minor = rng.gen_range(0..20);
        match rng.gen_range(0..3u8) {
            // iOS app over CFNetwork.
            0 => {
                let ua = format!("{app}/{major}.{minor} CFNetwork/978.0.7 Darwin/18.6.0");
                (
                    Some(ua),
                    GroundTruth {
                        device: DeviceType::Mobile,
                        platform: Platform::Ios,
                        is_browser: false,
                    },
                )
            }
            // iOS app with explicit device token.
            1 => {
                let ios = *pick(rng, &["12.4", "13.1", "11.4"]);
                let ua = format!("{app}/{major}.{minor} (iPhone; iOS {ios}; Scale/2.00)");
                (
                    Some(ua),
                    GroundTruth {
                        device: DeviceType::Mobile,
                        platform: Platform::Ios,
                        is_browser: false,
                    },
                )
            }
            // Android app over okhttp — app token first keeps family intact.
            _ => {
                let ua = if rng.gen_bool(0.5) {
                    format!(
                        "{app}/{major}.{minor} (Android {}; SM-G960F) okhttp/3.12.1",
                        rng.gen_range(8..11)
                    )
                } else {
                    "okhttp/3.12.1".to_owned()
                };
                (
                    Some(ua),
                    GroundTruth {
                        device: DeviceType::Mobile,
                        platform: Platform::Android,
                        is_browser: false,
                    },
                )
            }
        }
    }

    fn desktop_browser<R: Rng + ?Sized>(&self, rng: &mut R) -> (Option<String>, GroundTruth) {
        let (os_token, platform) = *pick(
            rng,
            &[
                ("Windows NT 10.0; Win64; x64", Platform::Windows),
                ("Windows NT 6.1; Win64; x64", Platform::Windows),
                ("Macintosh; Intel Mac OS X 10_14_5", Platform::MacOs),
                ("X11; Linux x86_64", Platform::Linux),
            ],
        );
        let ua = match rng.gen_range(0..3u8) {
            0 => format!(
                "Mozilla/5.0 ({os_token}) AppleWebKit/537.36 (KHTML, like Gecko) \
                 Chrome/74.0.3729.131 Safari/537.36"
            ),
            1 => format!("Mozilla/5.0 ({os_token}; rv:66.0) Gecko/20100101 Firefox/66.0"),
            _ => format!(
                "Mozilla/5.0 ({os_token}) AppleWebKit/537.36 (KHTML, like Gecko) \
                 Chrome/74.0.3729.131 Safari/537.36 Edg/74.1.96.24"
            ),
        };
        (
            Some(ua),
            GroundTruth {
                device: DeviceType::Desktop,
                platform,
                is_browser: true,
            },
        )
    }

    fn embedded<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        kind: EmbeddedKind,
    ) -> (Option<String>, GroundTruth) {
        // Firmware/app versions vary per device, so the distinct-UA-string
        // population has real embedded diversity (the paper: 17% of UA
        // strings are embedded).
        let fw_major = rng.gen_range(1..10);
        let fw_minor = rng.gen_range(0..60);
        let (ua, platform) = match kind {
            EmbeddedKind::Console => match rng.gen_range(0..4u8) {
                0 => (
                    format!(
                        "Mozilla/5.0 (PlayStation 4 {fw_major}.{fw_minor:02})                          AppleWebKit/605.1.15 (KHTML, like Gecko)"
                    ),
                    Platform::PlayStation,
                ),
                1 => (
                    format!("GameParty/{fw_major}.{fw_minor} (PlayStation 4; firmware 6.50)"),
                    Platform::PlayStation,
                ),
                2 => (
                    format!(
                        "Mozilla/5.0 (Windows NT 10.0; Win64; x64; Xbox; Xbox One; rv:{fw_major}{fw_minor}.0)"
                    ),
                    Platform::Xbox,
                ),
                _ => (
                    format!("ScoreSync/{fw_major}.{fw_minor} (Nintendo Switch; HAC-001)"),
                    Platform::Nintendo,
                ),
            },
            EmbeddedKind::Tv => match rng.gen_range(0..4u8) {
                0 => (
                    format!(
                        "Mozilla/5.0 (SMART-TV; Linux; Tizen {fw_major}.{fw_minor}) AppleWebKit/537.36"
                    ),
                    Platform::SmartTv,
                ),
                1 => (
                    format!("Roku/DVP-{fw_major}.{fw_minor} (5{fw_minor:02}.10E04111A)"),
                    Platform::SmartTv,
                ),
                2 => (
                    format!(
                        "Mozilla/5.0 (Web0S; Linux/SmartTV {fw_major}.{fw_minor}) AppleWebKit/537.36"
                    ),
                    Platform::SmartTv,
                ),
                _ => (
                    format!("StreamBox/{fw_major}.{fw_minor} AppleTV11,1/12.3"),
                    Platform::SmartTv,
                ),
            },
            EmbeddedKind::Watch => {
                if rng.gen_bool(0.5) {
                    (
                        format!("FitTrack/{fw_major}.{fw_minor} (Apple Watch; watchOS 5.2)"),
                        Platform::Watch,
                    )
                } else {
                    (
                        format!("HealthSync/{fw_major}.{fw_minor} (Wear OS 2.6; sawfish)"),
                        Platform::Watch,
                    )
                }
            }
            EmbeddedKind::Iot => {
                if rng.gen_bool(0.5) {
                    (
                        format!("TelemetryAgent/{fw_major}.{fw_minor} ESP32 esp-idf/3.2"),
                        Platform::Iot,
                    )
                } else {
                    (
                        format!("SmartThings/{fw_major}.{fw_minor} (hub; firmware 30.4)"),
                        Platform::Iot,
                    )
                }
            }
        };
        (
            Some(ua),
            GroundTruth {
                device: DeviceType::Embedded,
                platform,
                is_browser: false,
            },
        )
    }

    fn script<R: Rng + ?Sized>(&self, rng: &mut R) -> (Option<String>, GroundTruth) {
        let ua = *pick(
            rng,
            &[
                "curl/7.64.0",
                "python-requests/2.21.0",
                "Go-http-client/1.1",
                "Java/1.8.0_202",
                "Apache-HttpClient/4.5.8 (Java/1.8.0_202)",
                "Wget/1.20.1 (linux-gnu)",
            ],
        );
        (
            Some(ua.to_owned()),
            GroundTruth {
                device: DeviceType::Unknown,
                platform: Platform::ScriptRuntime,
                is_browser: false,
            },
        )
    }

    fn garbage<R: Rng + ?Sized>(&self, rng: &mut R) -> (Option<String>, GroundTruth) {
        let ua = *pick(
            rng,
            &[
                "-",
                "Mozilla/5.0 (compatible; custom-internal)",
                "x",
                "UA unavailable",
                "0000000000",
            ],
        );
        (
            Some(ua.to_owned()),
            GroundTruth {
                device: DeviceType::Unknown,
                platform: Platform::Unknown,
                is_browser: false,
            },
        )
    }
}

fn pick<'a, R: Rng + ?Sized, T>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// The central contract: the classifier recovers the generator's ground
    /// truth for every identifiable spec.
    #[test]
    fn classifier_recovers_ground_truth() {
        let gen = UaGenerator::new();
        let mut rng = rng();
        let specs = [
            UaSpec::MobileBrowser,
            UaSpec::MobileApp("NewsApp"),
            UaSpec::MobileApp("ChatNow"),
            UaSpec::DesktopBrowser,
            UaSpec::Embedded(EmbeddedKind::Console),
            UaSpec::Embedded(EmbeddedKind::Tv),
            UaSpec::Embedded(EmbeddedKind::Watch),
            UaSpec::Embedded(EmbeddedKind::Iot),
            UaSpec::Script,
            UaSpec::Missing,
            UaSpec::Garbage,
        ];
        for spec in specs {
            for _ in 0..200 {
                let (ua, truth) = gen.generate(&mut rng, spec);
                let c = classify(ua.as_deref());
                assert_eq!(
                    c.device, truth.device,
                    "device mismatch for {spec:?}: {ua:?}"
                );
                assert_eq!(
                    c.is_browser, truth.is_browser,
                    "browser flag mismatch for {spec:?}: {ua:?}"
                );
            }
        }
    }

    #[test]
    fn app_family_is_preserved_for_named_apps() {
        let gen = UaGenerator::new();
        let mut rng = rng();
        let mut named = 0;
        for _ in 0..300 {
            let (ua, _) = gen.generate(&mut rng, UaSpec::MobileApp("SportsScores"));
            let c = classify(ua.as_deref());
            if c.app_family.as_deref() == Some("SportsScores") {
                named += 1;
            }
        }
        // A fraction of Android variants are bare okhttp (by design — real
        // apps often hide behind the library token), but most carry the app.
        assert!(named > 200, "only {named}/300 UAs carried the app token");
    }

    #[test]
    fn missing_spec_has_no_header() {
        let gen = UaGenerator::new();
        let (ua, truth) = gen.generate(&mut rng(), UaSpec::Missing);
        assert!(ua.is_none());
        assert_eq!(truth.device, DeviceType::Unknown);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = UaGenerator::new();
        let a: Vec<_> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..50)
                .map(|_| gen.generate(&mut r, UaSpec::MobileBrowser).0)
                .collect()
        };
        let b: Vec<_> = {
            let mut r = StdRng::seed_from_u64(9);
            (0..50)
                .map(|_| gen.generate(&mut r, UaSpec::MobileBrowser).0)
                .collect()
        };
        assert_eq!(a, b);
    }
}
