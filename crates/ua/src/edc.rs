//! Device-characteristics database (EDC stand-in).
//!
//! The paper reduces UA misclassification with Akamai's *Edge Device
//! Characteristics* database \[2\]: a lookup from device identifiers
//! embedded in UA strings to hardware attributes. That database is
//! proprietary; [`EdcDatabase`] plays the same role with a curated table of
//! model-token patterns (extensible at runtime), and is consulted as a
//! second stage when token heuristics alone leave the platform ambiguous.

use crate::types::{DeviceType, Platform};

/// One device record: a substring pattern and the hardware it identifies.
#[derive(Clone, Debug)]
pub struct DeviceRecord {
    /// Substring matched (case-sensitively) against the UA.
    pub pattern: &'static str,
    /// Platform implied by the match.
    pub platform: Platform,
    /// Device type implied by the match (usually `platform.device_type()`,
    /// but e.g. Android-based TVs override it).
    pub device: DeviceType,
    /// Human-readable hardware label.
    pub label: &'static str,
}

/// The device-characteristics lookup table.
#[derive(Clone, Debug, Default)]
pub struct EdcDatabase {
    records: Vec<DeviceRecord>,
}

impl EdcDatabase {
    /// An empty database (no second-stage refinement).
    pub fn empty() -> Self {
        EdcDatabase::default()
    }

    /// The built-in table of well-known device identifiers.
    pub fn builtin() -> Self {
        const RECORDS: &[DeviceRecord] = &[
            // Samsung Galaxy phones.
            DeviceRecord {
                pattern: "SM-G",
                platform: Platform::Android,
                device: DeviceType::Mobile,
                label: "Samsung Galaxy S-series",
            },
            DeviceRecord {
                pattern: "SM-A",
                platform: Platform::Android,
                device: DeviceType::Mobile,
                label: "Samsung Galaxy A-series",
            },
            DeviceRecord {
                pattern: "Pixel",
                platform: Platform::Android,
                device: DeviceType::Mobile,
                label: "Google Pixel",
            },
            // Android TV boxes report Android but are embedded devices.
            DeviceRecord {
                pattern: "AFTB",
                platform: Platform::SmartTv,
                device: DeviceType::Embedded,
                label: "Amazon Fire TV",
            },
            DeviceRecord {
                pattern: "SHIELD Android TV",
                platform: Platform::SmartTv,
                device: DeviceType::Embedded,
                label: "NVIDIA Shield TV",
            },
            DeviceRecord {
                pattern: "BRAVIA",
                platform: Platform::SmartTv,
                device: DeviceType::Embedded,
                label: "Sony Bravia TV",
            },
            // Consoles.
            DeviceRecord {
                pattern: "PlayStation 4",
                platform: Platform::PlayStation,
                device: DeviceType::Embedded,
                label: "Sony PlayStation 4",
            },
            DeviceRecord {
                pattern: "PlayStation Vita",
                platform: Platform::PlayStation,
                device: DeviceType::Embedded,
                label: "Sony PlayStation Vita",
            },
            DeviceRecord {
                pattern: "Xbox One",
                platform: Platform::Xbox,
                device: DeviceType::Embedded,
                label: "Microsoft Xbox One",
            },
            DeviceRecord {
                pattern: "Nintendo Switch",
                platform: Platform::Nintendo,
                device: DeviceType::Embedded,
                label: "Nintendo Switch",
            },
            // Watches.
            DeviceRecord {
                pattern: "Watch OS",
                platform: Platform::Watch,
                device: DeviceType::Embedded,
                label: "Apple Watch",
            },
            DeviceRecord {
                pattern: "Apple Watch",
                platform: Platform::Watch,
                device: DeviceType::Embedded,
                label: "Apple Watch",
            },
            // TVs & streaming sticks.
            DeviceRecord {
                pattern: "Tizen",
                platform: Platform::SmartTv,
                device: DeviceType::Embedded,
                label: "Samsung Tizen TV",
            },
            DeviceRecord {
                pattern: "Web0S",
                platform: Platform::SmartTv,
                device: DeviceType::Embedded,
                label: "LG webOS TV",
            },
            DeviceRecord {
                pattern: "Roku/",
                platform: Platform::SmartTv,
                device: DeviceType::Embedded,
                label: "Roku",
            },
            DeviceRecord {
                pattern: "AppleTV",
                platform: Platform::SmartTv,
                device: DeviceType::Embedded,
                label: "Apple TV",
            },
            DeviceRecord {
                pattern: "CrKey",
                platform: Platform::SmartTv,
                device: DeviceType::Embedded,
                label: "Google Chromecast",
            },
            // IoT.
            DeviceRecord {
                pattern: "ESP32",
                platform: Platform::Iot,
                device: DeviceType::Embedded,
                label: "Espressif ESP32",
            },
            DeviceRecord {
                pattern: "SmartThings",
                platform: Platform::Iot,
                device: DeviceType::Embedded,
                label: "Samsung SmartThings hub",
            },
        ];
        EdcDatabase {
            records: RECORDS.to_vec(),
        }
    }

    /// Adds a custom record (consulted after the built-ins).
    pub fn add(&mut self, record: DeviceRecord) {
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the database has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up the first record whose pattern occurs in `ua`.
    pub fn lookup(&self, ua: &str) -> Option<&DeviceRecord> {
        self.records.iter().find(|r| ua.contains(r.pattern))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_consoles_and_tvs() {
        let db = EdcDatabase::builtin();
        let r = db
            .lookup("Mozilla/5.0 (PlayStation 4 6.50) AppleWebKit/605.1.15")
            .unwrap();
        assert_eq!(r.device, DeviceType::Embedded);
        assert_eq!(r.platform, Platform::PlayStation);

        let r = db.lookup("Roku/DVP-9.10 (519.10E04111A)").unwrap();
        assert_eq!(r.platform, Platform::SmartTv);
    }

    #[test]
    fn android_tv_overrides_mobile_classification() {
        let db = EdcDatabase::builtin();
        let r = db
            .lookup("Mozilla/5.0 (Linux; Android 7.1; AFTB Build/LVY48F)")
            .unwrap();
        assert_eq!(r.device, DeviceType::Embedded);
    }

    #[test]
    fn custom_records_are_consulted() {
        let mut db = EdcDatabase::empty();
        assert!(db.lookup("FridgeOS/1.0").is_none());
        db.add(DeviceRecord {
            pattern: "FridgeOS",
            platform: Platform::Iot,
            device: DeviceType::Embedded,
            label: "Smart fridge",
        });
        assert_eq!(db.lookup("FridgeOS/1.0").unwrap().label, "Smart fridge");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn no_match_returns_none() {
        let db = EdcDatabase::builtin();
        assert!(db.lookup("totally unknown agent").is_none());
        assert!(db.lookup("").is_none());
    }
}
