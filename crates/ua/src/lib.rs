//! # jcdn-ua — user-agent strings: generation and classification
//!
//! §3.2 of the paper identifies the *traffic source* of each request from
//! its `User-Agent` header: device type (mobile / desktop / embedded /
//! unknown), browser vs. non-browser, and application family. The paper uses
//! two auxiliary databases — Akamai's EDC device-characteristics database
//! and a public browser user-agent database — to reduce misclassification.
//!
//! This crate supplies both sides of that pipeline for the synthetic CDN:
//!
//! * [`classify`] — the analysis-side classifier: token matching over the
//!   UA string, refined by [`EdcDatabase`] (our stand-in for Akamai EDC,
//!   reference \[2\] in the paper) and [`browser_db`] (stand-in for
//!   useragentstring.com, reference \[11\]),
//! * [`gen::UaGenerator`] — the workload-side generator that produces
//!   realistic UA strings *with ground-truth labels*, so integration tests
//!   can measure classifier accuracy and the characterization pipeline can
//!   be validated against planted populations.
//!
//! ## Example
//!
//! ```
//! use jcdn_ua::{classify, DeviceType};
//!
//! let c = classify(Some("NewsApp/3.2.1 (iPhone; iOS 12.4; Scale/3.00)"));
//! assert_eq!(c.device, DeviceType::Mobile);
//! assert!(!c.is_browser);
//! assert_eq!(c.app_family.as_deref(), Some("NewsApp"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod browsers;
mod classify;
mod edc;
pub mod gen;
mod types;

pub use browsers::{browser_db, BrowserFamily};
pub use classify::{classify, classify_with, Classification};
pub use edc::{DeviceRecord, EdcDatabase};
pub use types::{DeviceType, Platform};
