//! Browser identification database.
//!
//! Stand-in for the public browser user-agent database the paper cites
//! (\[11\], useragentstring.com): "to separate between browser and
//! non-browser traffic, we use a database of browser user agents since
//! browsers use well-formed user-agent strings."

/// Major browser families recognized by the database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BrowserFamily {
    /// Google Chrome / Chromium.
    Chrome,
    /// Apple Safari (including iOS WebKit browsers).
    Safari,
    /// Mozilla Firefox.
    Firefox,
    /// Microsoft Edge.
    Edge,
    /// Opera.
    Opera,
    /// Samsung Internet.
    SamsungInternet,
    /// Android WebView (embedded browser inside a native app).
    AndroidWebView,
}

/// One rule in the browser database: `token` must appear, every entry of
/// `absent` must not. Order matters — first match wins — because browser UA
/// strings embed each other's tokens (every Chrome UA contains "Safari",
/// Edge contains "Chrome", etc.).
pub struct BrowserRule {
    /// Substring that identifies the family.
    pub token: &'static str,
    /// Substrings whose presence vetoes this rule.
    pub absent: &'static [&'static str],
    /// The family this rule detects.
    pub family: BrowserFamily,
}

/// The ordered browser rule set.
///
/// A UA is browser traffic iff some rule matches **and** it carries the
/// `Mozilla/` preamble that real browsers send; library HTTP stacks that
/// spoof single tokens ("okhttp", "CFNetwork") never carry the full
/// well-formed preamble.
pub fn browser_db() -> &'static [BrowserRule] {
    const DB: &[BrowserRule] = &[
        BrowserRule {
            token: "Edg/",
            absent: &[],
            family: BrowserFamily::Edge,
        },
        BrowserRule {
            token: "Edge/",
            absent: &[],
            family: BrowserFamily::Edge,
        },
        BrowserRule {
            token: "OPR/",
            absent: &[],
            family: BrowserFamily::Opera,
        },
        BrowserRule {
            token: "Opera",
            absent: &[],
            family: BrowserFamily::Opera,
        },
        BrowserRule {
            token: "SamsungBrowser/",
            absent: &[],
            family: BrowserFamily::SamsungInternet,
        },
        BrowserRule {
            token: "Firefox/",
            absent: &["Seamonkey/"],
            family: BrowserFamily::Firefox,
        },
        BrowserRule {
            token: "; wv)",
            absent: &[],
            family: BrowserFamily::AndroidWebView,
        },
        BrowserRule {
            token: "Chrome/",
            absent: &["Chromium/"],
            family: BrowserFamily::Chrome,
        },
        BrowserRule {
            token: "Chromium/",
            absent: &[],
            family: BrowserFamily::Chrome,
        },
        BrowserRule {
            token: "Safari/",
            absent: &["Chrome/", "Chromium/"],
            family: BrowserFamily::Safari,
        },
    ];
    DB
}

/// Looks up the browser family for a UA string, requiring the well-formed
/// `Mozilla/` preamble.
pub fn detect_browser(ua: &str) -> Option<BrowserFamily> {
    if !ua.starts_with("Mozilla/") {
        return None;
    }
    for rule in browser_db() {
        if ua.contains(rule.token) && rule.absent.iter().all(|a| !ua.contains(a)) {
            return Some(rule.family);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHROME_WIN: &str = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
         (KHTML, like Gecko) Chrome/74.0.3729.131 Safari/537.36";
    const SAFARI_IOS: &str = "Mozilla/5.0 (iPhone; CPU iPhone OS 12_4 like Mac OS X) \
         AppleWebKit/605.1.15 (KHTML, like Gecko) Version/12.1.2 Mobile/15E148 Safari/604.1";
    const EDGE_WIN: &str = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
         (KHTML, like Gecko) Chrome/74.0.3729.131 Safari/537.36 Edg/74.1.96.24";
    const FIREFOX_LINUX: &str =
        "Mozilla/5.0 (X11; Linux x86_64; rv:66.0) Gecko/20100101 Firefox/66.0";
    const WEBVIEW: &str =
        "Mozilla/5.0 (Linux; Android 9; SM-G960F Build/PPR1; wv) AppleWebKit/537.36 \
         (KHTML, like Gecko) Version/4.0 Chrome/74.0.3729.136 Mobile Safari/537.36";

    #[test]
    fn token_priority_resolves_embedded_tokens() {
        assert_eq!(detect_browser(CHROME_WIN), Some(BrowserFamily::Chrome));
        assert_eq!(detect_browser(SAFARI_IOS), Some(BrowserFamily::Safari));
        assert_eq!(detect_browser(EDGE_WIN), Some(BrowserFamily::Edge));
        assert_eq!(detect_browser(FIREFOX_LINUX), Some(BrowserFamily::Firefox));
        assert_eq!(detect_browser(WEBVIEW), Some(BrowserFamily::AndroidWebView));
    }

    #[test]
    fn non_browser_stacks_are_rejected() {
        assert_eq!(detect_browser("okhttp/3.12.1"), None);
        assert_eq!(detect_browser("NewsApp/3.2.1 (iPhone; iOS 12.4)"), None);
        assert_eq!(detect_browser("python-requests/2.21.0"), None);
        assert_eq!(detect_browser("curl/7.64.0"), None);
        assert_eq!(detect_browser(""), None);
    }

    #[test]
    fn spoofed_token_without_preamble_is_rejected() {
        assert_eq!(detect_browser("MyBot Chrome/74.0"), None);
    }
}
