//! Core traffic-source vocabulary (Figure 2 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Device category of the request initiator.
///
/// Matches the paper's Figure 3 breakdown: *mobiles, desktops/laptops, and
/// embedded devices*, where embedded is "non-mobile, non-desktop devices,
/// such as game consoles, IoTs, smart TVs, etc.", plus *Unknown* for missing
/// or unidentifiable user agents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceType {
    /// Smartphones and tablets.
    Mobile,
    /// Desktops and laptops.
    Desktop,
    /// Game consoles, smart TVs, watches, IoT, set-top boxes.
    Embedded,
    /// Missing or unidentifiable user agent.
    Unknown,
}

impl DeviceType {
    /// All variants, in the order the paper reports them.
    pub const ALL: [DeviceType; 4] = [
        DeviceType::Mobile,
        DeviceType::Desktop,
        DeviceType::Embedded,
        DeviceType::Unknown,
    ];
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeviceType::Mobile => "Mobile",
            DeviceType::Desktop => "Desktop",
            DeviceType::Embedded => "Embedded",
            DeviceType::Unknown => "Unknown",
        })
    }
}

/// Operating platform extracted from system identifiers in the UA string
/// ("we group by system identifiers in the user-agent field, such as
/// 'Android', 'iPhone', 'Windows', etc." — §3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Android phones/tablets.
    Android,
    /// iPhones/iPads (iOS, iPadOS).
    Ios,
    /// Microsoft Windows desktops.
    Windows,
    /// Apple macOS desktops.
    MacOs,
    /// Linux desktops.
    Linux,
    /// Sony PlayStation consoles.
    PlayStation,
    /// Microsoft Xbox consoles.
    Xbox,
    /// Nintendo consoles.
    Nintendo,
    /// Smart TVs (Tizen, webOS, Roku, tvOS, …).
    SmartTv,
    /// Watches (watchOS, Wear OS).
    Watch,
    /// Other IoT and embedded systems.
    Iot,
    /// Recognized as a script/library runtime rather than a device.
    ScriptRuntime,
    /// Could not be determined.
    Unknown,
}

impl Platform {
    /// The device type this platform implies.
    pub fn device_type(self) -> DeviceType {
        match self {
            Platform::Android | Platform::Ios => DeviceType::Mobile,
            Platform::Windows | Platform::MacOs | Platform::Linux => DeviceType::Desktop,
            Platform::PlayStation
            | Platform::Xbox
            | Platform::Nintendo
            | Platform::SmartTv
            | Platform::Watch
            | Platform::Iot => DeviceType::Embedded,
            // A bare script runtime (curl on a CI box, python on a server)
            // reveals no device; the paper buckets these as Unknown.
            Platform::ScriptRuntime | Platform::Unknown => DeviceType::Unknown,
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Platform::Android => "Android",
            Platform::Ios => "iOS",
            Platform::Windows => "Windows",
            Platform::MacOs => "macOS",
            Platform::Linux => "Linux",
            Platform::PlayStation => "PlayStation",
            Platform::Xbox => "Xbox",
            Platform::Nintendo => "Nintendo",
            Platform::SmartTv => "SmartTV",
            Platform::Watch => "Watch",
            Platform::Iot => "IoT",
            Platform::ScriptRuntime => "ScriptRuntime",
            Platform::Unknown => "Unknown",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_implies_device_type() {
        assert_eq!(Platform::Android.device_type(), DeviceType::Mobile);
        assert_eq!(Platform::Ios.device_type(), DeviceType::Mobile);
        assert_eq!(Platform::Windows.device_type(), DeviceType::Desktop);
        assert_eq!(Platform::PlayStation.device_type(), DeviceType::Embedded);
        assert_eq!(Platform::Watch.device_type(), DeviceType::Embedded);
        assert_eq!(Platform::ScriptRuntime.device_type(), DeviceType::Unknown);
    }

    #[test]
    fn display_labels() {
        assert_eq!(DeviceType::Mobile.to_string(), "Mobile");
        assert_eq!(Platform::SmartTv.to_string(), "SmartTV");
    }
}
