//! The UA classifier (analysis side).

use crate::browsers::{detect_browser, BrowserFamily};
use crate::edc::EdcDatabase;
use crate::types::{DeviceType, Platform};

/// The traffic-source attributes extracted from one UA string.
#[derive(Clone, Debug, PartialEq)]
pub struct Classification {
    /// Device category (Figure 3 of the paper).
    pub device: DeviceType,
    /// Operating platform.
    pub platform: Platform,
    /// True when the request came from a web browser.
    pub is_browser: bool,
    /// Browser family, when `is_browser`.
    pub browser: Option<BrowserFamily>,
    /// Leading product token for native apps/libraries (`NewsApp` from
    /// `NewsApp/3.2.1 (…)`), used to group traffic by application.
    pub app_family: Option<String>,
}

impl Classification {
    fn unknown() -> Self {
        Classification {
            device: DeviceType::Unknown,
            platform: Platform::Unknown,
            is_browser: false,
            browser: None,
            app_family: None,
        }
    }
}

/// Classifies a UA header using the built-in EDC database.
///
/// `None` models a request with no `User-Agent` header — per §4 of the
/// paper most *Unknown* traffic "does not contain a user agent".
pub fn classify(ua: Option<&str>) -> Classification {
    // The builtin EDC table is a static constant copied into a Vec; build it
    // once.
    thread_local! {
        static EDC: EdcDatabase = EdcDatabase::builtin();
    }
    EDC.with(|edc| classify_with(ua, edc))
}

/// Classifies with a caller-provided device database.
pub fn classify_with(ua: Option<&str>, edc: &EdcDatabase) -> Classification {
    let Some(ua) = ua else {
        return Classification::unknown();
    };
    let ua = ua.trim();
    if ua.is_empty() {
        return Classification::unknown();
    }

    // Stage 1: EDC lookup. Device-model tokens are the most specific signal
    // and override system-token heuristics (an Android TV says "Android"
    // but is an embedded device).
    let edc_hit = edc.lookup(ua);

    // Stage 2: system identifier tokens, mirroring §3.2's grouping.
    let platform = edc_hit
        .map(|r| r.platform)
        .unwrap_or_else(|| platform_from_tokens(ua));
    let device = edc_hit
        .map(|r| r.device)
        .unwrap_or_else(|| platform.device_type());

    // Stage 3: browser detection via the browser UA database.
    let browser = detect_browser(ua);

    // Stage 4: app family for non-browser product-token UAs.
    let app_family = if browser.is_none() {
        leading_product_token(ua)
    } else {
        None
    };

    Classification {
        device,
        platform,
        is_browser: browser.is_some(),
        browser,
        app_family,
    }
}

fn platform_from_tokens(ua: &str) -> Platform {
    // Ordered from most to least specific; embedded identifiers first since
    // they often embed the desktop/mobile tokens they are derived from.
    if ua.contains("PlayStation") {
        return Platform::PlayStation;
    }
    if ua.contains("Xbox") {
        return Platform::Xbox;
    }
    if ua.contains("Nintendo") {
        return Platform::Nintendo;
    }
    if ua.contains("SmartTV")
        || ua.contains("SMART-TV")
        || ua.contains("GoogleTV")
        || ua.contains("HbbTV")
        || ua.contains("tvOS")
    {
        return Platform::SmartTv;
    }
    if ua.contains("watchOS") || ua.contains("Wear OS") {
        return Platform::Watch;
    }
    if ua.contains("iPhone") || ua.contains("iPad") || ua.contains("iPod") {
        return Platform::Ios;
    }
    // iOS apps using Apple's HTTP stack identify via CFNetwork/Darwin.
    if ua.contains("CFNetwork") && ua.contains("Darwin") {
        return Platform::Ios;
    }
    if ua.contains("Android") {
        return Platform::Android;
    }
    // okhttp is the dominant Android-native HTTP client.
    if ua.starts_with("okhttp/") {
        return Platform::Android;
    }
    if ua.contains("Windows Phone") {
        return Platform::Android; // grouped with mobile; extinct platform
    }
    if ua.contains("Windows NT") || ua.contains("Windows") {
        return Platform::Windows;
    }
    if ua.contains("Macintosh") || ua.contains("Mac OS X") {
        return Platform::MacOs;
    }
    if ua.contains("X11; Linux") || ua.contains("Ubuntu") {
        return Platform::Linux;
    }
    if is_script_runtime(ua) {
        return Platform::ScriptRuntime;
    }
    Platform::Unknown
}

fn is_script_runtime(ua: &str) -> bool {
    const SCRIPTS: &[&str] = &[
        "curl/",
        "Wget/",
        "python-requests/",
        "Python-urllib/",
        "Go-http-client/",
        "Java/",
        "Apache-HttpClient/",
        "node-fetch/",
        "axios/",
        "libwww-perl/",
        "Ruby",
    ];
    SCRIPTS.iter().any(|s| ua.starts_with(s))
}

/// Extracts `Name` from a `Name/version …` product token when it looks like
/// an application identifier (alphanumeric, reasonable length).
fn leading_product_token(ua: &str) -> Option<String> {
    let first = ua.split_whitespace().next()?;
    let (name, _version) = first.split_once('/')?;
    let ok = !name.is_empty()
        && name.len() <= 40
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.');
    // Mozilla/x.0 is a preamble, not an app; its presence without a browser
    // match means a spoofing client we cannot name.
    (ok && name != "Mozilla").then(|| name.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_or_empty_ua_is_unknown() {
        assert_eq!(classify(None), Classification::unknown());
        assert_eq!(classify(Some("")), Classification::unknown());
        assert_eq!(classify(Some("   ")), Classification::unknown());
    }

    #[test]
    fn mobile_browser() {
        let c = classify(Some(
            "Mozilla/5.0 (iPhone; CPU iPhone OS 12_4 like Mac OS X) AppleWebKit/605.1.15 \
             (KHTML, like Gecko) Version/12.1.2 Mobile/15E148 Safari/604.1",
        ));
        assert_eq!(c.device, DeviceType::Mobile);
        assert_eq!(c.platform, Platform::Ios);
        assert!(c.is_browser);
        assert_eq!(c.browser, Some(BrowserFamily::Safari));
        assert!(c.app_family.is_none());
    }

    #[test]
    fn mobile_native_apps() {
        let c = classify(Some("NewsApp/3.2.1 (iPhone; iOS 12.4; Scale/3.00)"));
        assert_eq!(c.device, DeviceType::Mobile);
        assert!(!c.is_browser);
        assert_eq!(c.app_family.as_deref(), Some("NewsApp"));

        let c = classify(Some("okhttp/3.12.1"));
        assert_eq!(c.device, DeviceType::Mobile);
        assert_eq!(c.platform, Platform::Android);
        assert_eq!(c.app_family.as_deref(), Some("okhttp"));

        let c = classify(Some("SportsScores/12.1 CFNetwork/978.0.7 Darwin/18.6.0"));
        assert_eq!(c.device, DeviceType::Mobile);
        assert_eq!(c.platform, Platform::Ios);
        assert_eq!(c.app_family.as_deref(), Some("SportsScores"));
    }

    #[test]
    fn desktop_browser() {
        let c = classify(Some(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
             (KHTML, like Gecko) Chrome/74.0.3729.131 Safari/537.36",
        ));
        assert_eq!(c.device, DeviceType::Desktop);
        assert_eq!(c.platform, Platform::Windows);
        assert!(c.is_browser);
    }

    #[test]
    fn embedded_devices_never_classify_as_browser_traffic_in_our_workload() {
        // Consoles do ship browsers, but the paper observed none in JSON
        // traffic; the classifier must still label the device correctly.
        let c = classify(Some(
            "Mozilla/5.0 (PlayStation 4 6.50) AppleWebKit/605.1.15",
        ));
        assert_eq!(c.device, DeviceType::Embedded);
        assert_eq!(c.platform, Platform::PlayStation);

        let c = classify(Some("Roku/DVP-9.10 (519.10E04111A)"));
        assert_eq!(c.device, DeviceType::Embedded);
        assert_eq!(c.platform, Platform::SmartTv);

        let c = classify(Some("GameHub/2.4 (Nintendo Switch; HAC-001)"));
        assert_eq!(c.device, DeviceType::Embedded);
        assert_eq!(c.app_family.as_deref(), Some("GameHub"));
    }

    #[test]
    fn android_tv_edc_override() {
        let c = classify(Some(
            "Mozilla/5.0 (Linux; Android 7.1; AFTB Build/LVY48F) AppleWebKit/537.36",
        ));
        // Token heuristics say Android/mobile; EDC corrects to embedded.
        assert_eq!(c.device, DeviceType::Embedded);
        assert_eq!(c.platform, Platform::SmartTv);
    }

    #[test]
    fn scripts_are_unknown_device() {
        for ua in [
            "curl/7.64.0",
            "python-requests/2.21.0",
            "Go-http-client/1.1",
        ] {
            let c = classify(Some(ua));
            assert_eq!(c.device, DeviceType::Unknown, "{ua}");
            assert_eq!(c.platform, Platform::ScriptRuntime, "{ua}");
            assert!(!c.is_browser);
        }
    }

    #[test]
    fn gibberish_is_unknown_without_app_family() {
        let c = classify(Some("!!weird agent@@"));
        assert_eq!(c.device, DeviceType::Unknown);
        assert!(c.app_family.is_none());
    }

    #[test]
    fn mozilla_preamble_without_browser_tokens_is_not_an_app() {
        let c = classify(Some("Mozilla/5.0 (compatible; custom-internal)"));
        assert!(!c.is_browser);
        assert!(c.app_family.is_none());
    }
}
