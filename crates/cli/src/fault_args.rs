//! Parsing of the fault-injection and resilience flags.
//!
//! Fault windows are given as colon-separated specs, several per flag
//! separated by commas:
//!
//! * `--outage DOMAIN:START:END` — origin hard-down over `[START, END)`
//!   seconds; `DOMAIN` is a host name (`sports-1.example`) or a numeric
//!   domain index.
//! * `--degrade DOMAIN:START:END:FACTOR` — origin latency multiplied by
//!   `FACTOR`; responses slower than `--origin-timeout` become 504s.
//! * `--flap EDGE:START:END` — edge server `EDGE` drops out of routing.
//! * `--error-burst QUIET:BURST:ENTER:EXIT` — two-state Markov error
//!   process replacing the i.i.d. error fraction.
//!
//! Resilience knobs: `--retries`, `--stale-grace`, `--negative-ttl`,
//! `--origin-timeout` (all but retries in seconds), and `--resilience
//! on|off` which toggles every client/edge countermeasure at once.

use jcdn_cdnsim::{
    EdgeFlap, ErrorBursts, FaultPlan, OriginDegradation, OriginOutage, ResilienceConfig,
    SimDuration, Window,
};
use jcdn_workload::Workload;

use crate::args::Args;

/// The flag names this module consumes; include them in `Args::parse`.
pub const FAULT_FLAGS: &[&str] = &[
    "outage",
    "degrade",
    "flap",
    "error-burst",
    "retries",
    "stale-grace",
    "negative-ttl",
    "origin-timeout",
    "resilience",
];

/// Builds the fault plan from the parsed flags, resolving domain names
/// against the workload.
pub fn fault_plan(args: &Args, workload: &Workload) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default();
    for spec in specs(args.get_or("outage", "")) {
        let [domain, start, end] = fields::<3>("outage", spec)?;
        plan.outages.push(OriginOutage {
            domain: resolve_domain(workload, domain)?,
            window: window("outage", start, end)?,
        });
    }
    for spec in specs(args.get_or("degrade", "")) {
        let [domain, start, end, factor] = fields::<4>("degrade", spec)?;
        let factor: f64 = factor
            .parse()
            .map_err(|_| format!("--degrade: bad factor {factor:?}"))?;
        if !(factor >= 1.0 && factor.is_finite()) {
            return Err("--degrade: factor must be >= 1".into());
        }
        plan.degradations.push(OriginDegradation {
            domain: resolve_domain(workload, domain)?,
            window: window("degrade", start, end)?,
            latency_factor: factor,
        });
    }
    for spec in specs(args.get_or("flap", "")) {
        let [edge, start, end] = fields::<3>("flap", spec)?;
        let edge: usize = edge
            .parse()
            .map_err(|_| format!("--flap: bad edge index {edge:?}"))?;
        plan.flaps.push(EdgeFlap {
            edge,
            window: window("flap", start, end)?,
        });
    }
    if let Some(spec) = specs(args.get_or("error-burst", "")).next() {
        let [quiet, burst, enter, exit] = fields::<4>("error-burst", spec)?;
        let parse = |name: &str, raw: &str| -> Result<f64, String> {
            let v: f64 = raw
                .parse()
                .map_err(|_| format!("--error-burst: bad {name} {raw:?}"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("--error-burst: {name} must be in [0, 1]"));
            }
            Ok(v)
        };
        plan.errors = Some(ErrorBursts {
            quiet_error_fraction: parse("quiet fraction", quiet)?,
            burst_error_fraction: parse("burst fraction", burst)?,
            enter_burst: parse("enter probability", enter)?,
            exit_burst: parse("exit probability", exit)?,
        });
    }
    Ok(plan)
}

/// Builds the resilience configuration from the parsed flags.
pub fn resilience(args: &Args) -> Result<ResilienceConfig, String> {
    let mut r = match args.get_or("resilience", "on") {
        "on" => ResilienceConfig::default(),
        "off" => ResilienceConfig::disabled(),
        other => return Err(format!("--resilience must be on|off, got {other:?}")),
    };
    r.retry_budget = args.number("retries", r.retry_budget)?;
    if let Some(secs) = optional_secs(args, "stale-grace")? {
        r.stale_grace = secs;
    }
    if let Some(secs) = optional_secs(args, "negative-ttl")? {
        r.negative_ttl = secs;
    }
    if let Some(secs) = optional_secs(args, "origin-timeout")? {
        r.origin_timeout = secs;
    }
    Ok(r)
}

fn optional_secs(args: &Args, name: &str) -> Result<Option<SimDuration>, String> {
    match args.get_or(name, "") {
        "" => Ok(None),
        raw => {
            let secs: f64 = raw.parse().map_err(|_| format!("--{name}: bad {raw:?}"))?;
            if !(secs >= 0.0 && secs.is_finite()) {
                return Err(format!("--{name} must be non-negative"));
            }
            Ok(Some(SimDuration::from_micros((secs * 1e6) as u64)))
        }
    }
}

fn specs(raw: &str) -> impl Iterator<Item = &str> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty())
}

fn fields<'a, const N: usize>(flag: &str, spec: &'a str) -> Result<[&'a str; N], String> {
    let parts: Vec<&str> = spec.split(':').collect();
    parts
        .try_into()
        .map_err(|_| format!("--{flag}: expected {N} colon-separated fields in {spec:?}"))
}

fn window(flag: &str, start: &str, end: &str) -> Result<Window, String> {
    let start: u64 = start
        .parse()
        .map_err(|_| format!("--{flag}: bad start second {start:?}"))?;
    let end: u64 = end
        .parse()
        .map_err(|_| format!("--{flag}: bad end second {end:?}"))?;
    if end <= start {
        return Err(format!("--{flag}: window must end after it starts"));
    }
    Ok(Window::from_secs(start, end))
}

fn resolve_domain(workload: &Workload, token: &str) -> Result<u32, String> {
    if let Ok(index) = token.parse::<u32>() {
        if (index as usize) < workload.domains.len() {
            return Ok(index);
        }
        return Err(format!(
            "domain index {index} out of range (workload has {})",
            workload.domains.len()
        ));
    }
    workload
        .domain_index(token)
        .ok_or_else(|| format!("unknown domain {token:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_workload::{build, WorkloadConfig};

    fn parse(argv: &[&str]) -> Args {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        Args::parse(&argv, FAULT_FLAGS).unwrap()
    }

    #[test]
    fn parses_outage_degrade_flap_and_bursts() {
        let w = build(&WorkloadConfig::tiny(1));
        let host = w.domains[0].host.clone();
        let args = parse(&[
            "--outage",
            &format!("{host}:60:120,1:0:30"),
            "--degrade",
            "1:10:20:8.5",
            "--flap",
            "2:100:200",
            "--error-burst",
            "0.001:0.3:0.02:0.2",
        ]);
        let plan = fault_plan(&args, &w).unwrap();
        assert_eq!(plan.outages.len(), 2);
        assert_eq!(plan.outages[0].domain, 0);
        assert_eq!(plan.outages[1].domain, 1);
        assert_eq!(plan.degradations.len(), 1);
        assert!((plan.degradations[0].latency_factor - 8.5).abs() < 1e-12);
        assert_eq!(plan.flaps[0].edge, 2);
        let bursts = plan.errors.unwrap();
        assert!((bursts.burst_error_fraction - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_specs() {
        let w = build(&WorkloadConfig::tiny(1));
        for argv in [
            ["--outage", "0:60"].as_slice(),        // missing field
            &["--outage", "nosuch.example:0:60"],   // unknown host
            &["--outage", "0:120:60"],              // inverted window
            &["--degrade", "0:0:60:0.5"],           // factor < 1
            &["--flap", "x:0:60"],                  // bad edge
            &["--error-burst", "0.1:2.0:0.01:0.2"], // fraction > 1
        ] {
            let args = parse(argv);
            assert!(fault_plan(&args, &w).is_err(), "should reject {argv:?}");
        }
    }

    #[test]
    fn resilience_flags_override_defaults() {
        let args = parse(&[
            "--retries",
            "5",
            "--stale-grace",
            "30",
            "--negative-ttl",
            "0",
            "--origin-timeout",
            "1.5",
        ]);
        let r = resilience(&args).unwrap();
        assert_eq!(r.retry_budget, 5);
        assert_eq!(r.stale_grace, SimDuration::from_secs(30));
        assert_eq!(r.negative_ttl, SimDuration::ZERO);
        assert_eq!(r.origin_timeout, SimDuration::from_micros(1_500_000));
        assert!(r.coalesce);

        let off = resilience(&parse(&["--resilience", "off"])).unwrap();
        assert_eq!(off.retry_budget, 0);
        assert!(!off.coalesce);

        assert!(resilience(&parse(&["--resilience", "maybe"])).is_err());
    }
}
