//! The subcommand implementations.

pub mod characterize;
pub mod export;
pub mod generate;
pub mod inspect;
pub mod merge;
pub mod obs;
pub mod periodicity;
pub mod predict;
pub mod trend;

use std::path::Path;

use jcdn_trace::codec::DecodeStats;
use jcdn_trace::Trace;

/// How a command finished. `Clean` maps to exit code 0; `Salvaged` maps
/// to exit code 3 — the command completed and printed a report, but part
/// of the input was lost (dropped frames/records, missing staged shards,
/// quarantined worker tasks), so the output covers only what survived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Output is complete.
    Clean,
    /// Output is the exact analysis of a salvaged subset.
    Salvaged,
}

/// Loads a binary trace file with a readable error, decoding shard
/// frames on up to `threads` workers.
pub fn load_trace(path: &str, threads: usize) -> Result<Trace, String> {
    jcdn_trace::codec::read_file_parallel(Path::new(path), threads)
        .map_err(|e| format!("{path}: {e}"))
}

/// Loads a binary trace file tolerantly: a damaged payload yields what
/// could be salvaged plus the drop tallies (see
/// [`jcdn_trace::codec::decode_sharded_tolerant`]).
pub fn load_trace_tolerant(path: &str, threads: usize) -> Result<(Trace, DecodeStats), String> {
    let (sharded, stats) =
        jcdn_trace::codec::read_file_sharded_tolerant_parallel(Path::new(path), threads)
            .map_err(|e| format!("{path}: {e}"))?;
    Ok((sharded.into_trace(), stats))
}

/// Parses the shared `--threads` flag (decode/encode fan-out width).
pub fn parse_threads(args: &crate::args::Args) -> Result<usize, String> {
    let threads: usize = args.number("threads", 1usize)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    Ok(threads)
}
