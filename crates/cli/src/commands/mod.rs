//! The subcommand implementations.

pub mod characterize;
pub mod export;
pub mod generate;
pub mod inspect;
pub mod merge;
pub mod periodicity;
pub mod predict;
pub mod trend;

use std::path::Path;

use jcdn_trace::codec::DecodeStats;
use jcdn_trace::Trace;

/// How a command finished. `Clean` maps to exit code 0; `Salvaged` maps
/// to exit code 3 — the command completed and printed a report, but part
/// of the input was lost (dropped frames/records, missing staged shards,
/// quarantined worker tasks), so the output covers only what survived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Output is complete.
    Clean,
    /// Output is the exact analysis of a salvaged subset.
    Salvaged,
}

/// Loads a binary trace file with a readable error.
pub fn load_trace(path: &str) -> Result<Trace, String> {
    jcdn_trace::codec::read_file(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

/// Loads a binary trace file tolerantly: a damaged payload yields what
/// could be salvaged plus the drop tallies (see
/// [`jcdn_trace::codec::decode_sharded_tolerant`]).
pub fn load_trace_tolerant(path: &str) -> Result<(Trace, DecodeStats), String> {
    let (sharded, stats) = jcdn_trace::codec::read_file_sharded_tolerant(Path::new(path))
        .map_err(|e| format!("{path}: {e}"))?;
    Ok((sharded.into_trace(), stats))
}
