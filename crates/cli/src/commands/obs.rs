//! `jcdn obs` — inspect and compare observability artifacts.
//!
//! Three inspection verbs over the JSON files the other commands emit:
//!
//! * `jcdn obs show <manifest.json>` — pretty-print a run manifest:
//!   params, deterministic counters, and a perf summary.
//! * `jcdn obs diff <a.json> <b.json>` — compare two manifests. The
//!   deterministic `counters` section must match exactly — any divergence
//!   is listed and the command exits 1 (that is the CI determinism gate).
//!   The `perf` section is reported as deltas, never gated.
//! * `jcdn obs bench-diff <baseline.json> [<current.json>]` — compare two
//!   `BENCH_*.json` files direction-aware (`*_us` and `peak_rss_kb`
//!   lower-is-better, `*_per_sec` higher-is-better). Warn-only by
//!   default; `--max-regress PCT` turns regressions beyond the threshold
//!   into exit 1.
//!
//! All parsing goes through `jcdn-json` — the workspace's own parser —
//! so the command adds no dependency.

use std::collections::BTreeMap;

use jcdn_json::{parse, Value};

use crate::args::Args;
use crate::commands::Outcome;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let Some((verb, rest)) = argv.split_first() else {
        return Err("usage: jcdn obs show|diff|bench-diff <files...>".into());
    };
    match verb.as_str() {
        "show" => show(rest),
        "diff" => diff(rest),
        "bench-diff" => bench_diff(rest),
        other => Err(format!("unknown obs verb {other:?} (show|diff|bench-diff)")),
    }
}

/// Loads and parses one JSON artifact.
fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// The string→u64 entries of an object field, sorted by key.
fn u64_section(value: &Value, section: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    if let Some(object) = value.get(section).and_then(Value::as_object) {
        for (key, entry) in object.iter() {
            if let Some(n) = entry.as_u64() {
                out.insert(key.to_string(), n);
            }
        }
    }
    out
}

fn show(argv: &[String]) -> Result<Outcome, String> {
    let args = Args::parse(argv, &[])?;
    let path = args.positional("manifest path")?;
    let manifest = load(path)?;

    let command = manifest
        .get("command")
        .and_then(Value::as_str)
        .unwrap_or("?");
    println!("manifest: {path}");
    println!("command:  {command}");
    if let Some(params) = manifest.get("params").and_then(Value::as_object) {
        for (key, value) in params.iter() {
            println!("  --{key} {}", value.as_str().unwrap_or("?"));
        }
    }
    let counters = u64_section(&manifest, "counters");
    println!("\ncounters ({}, deterministic):", counters.len());
    for (key, n) in &counters {
        println!("  {key:<40} {n}");
    }
    if let Some(perf) = manifest.get("perf") {
        println!("\nperf (wall-clock, not comparable across runs):");
        for key in ["wall_us", "peak_rss_kb", "spans_dropped", "pools_dropped"] {
            if let Some(n) = perf.get(key).and_then(Value::as_u64) {
                println!("  {key:<40} {n}");
            }
        }
        if let Some(phases) = perf.get("phases").and_then(Value::as_object) {
            for (phase, us) in phases.iter() {
                if let Some(us) = us.as_u64() {
                    println!("  phase {phase:<34} {us} us");
                }
            }
        }
    }
    Ok(Outcome::Clean)
}

fn diff(argv: &[String]) -> Result<Outcome, String> {
    let args = Args::parse(argv, &[])?;
    let [a_path, b_path] = args.positionals() else {
        return Err("usage: jcdn obs diff <a.json> <b.json>".into());
    };
    let (a, b) = (load(a_path)?, load(b_path)?);

    // The deterministic section: every key, both directions, exact match.
    let ca = u64_section(&a, "counters");
    let cb = u64_section(&b, "counters");
    let mut divergences = 0usize;
    let keys: BTreeMap<&String, ()> = ca.keys().chain(cb.keys()).map(|k| (k, ())).collect();
    for (key, ()) in keys {
        match (ca.get(key), cb.get(key)) {
            (Some(x), Some(y)) if x == y => {}
            (Some(x), Some(y)) => {
                println!("counter {key}: {x} != {y}");
                divergences += 1;
            }
            (Some(x), None) => {
                println!("counter {key}: {x} != (absent)");
                divergences += 1;
            }
            (None, Some(y)) => {
                println!("counter {key}: (absent) != {y}");
                divergences += 1;
            }
            (None, None) => {}
        }
    }

    // The perf section: informational deltas only.
    for key in ["wall_us", "peak_rss_kb"] {
        let x = a
            .get("perf")
            .and_then(|p| p.get(key))
            .and_then(Value::as_u64);
        let y = b
            .get("perf")
            .and_then(|p| p.get(key))
            .and_then(Value::as_u64);
        if let (Some(x), Some(y)) = (x, y) {
            let delta = y as i128 - x as i128;
            println!("perf {key}: {x} -> {y} ({delta:+})");
        }
    }

    if divergences > 0 {
        println!("DIVERGED: {divergences} deterministic counter(s) differ");
        return Err(format!(
            "{a_path} and {b_path} disagree on {divergences} deterministic counter(s)"
        ));
    }
    println!(
        "counters identical: {} key(s) match between {a_path} and {b_path}",
        ca.len()
    );
    Ok(Outcome::Clean)
}

/// Whether a benchmark metric is better when lower (`*_us` timings,
/// `peak_rss_kb`, `encoded_bytes`) or when higher (`*_per_sec` rates).
/// Non-metrics (seeds, shard counts, record counts) are compared for
/// context only.
fn direction(key: &str) -> Option<bool> {
    if key.ends_with("_us") || key == "peak_rss_kb" || key == "encoded_bytes" {
        Some(true) // lower is better
    } else if key.ends_with("_per_sec") {
        Some(false) // higher is better
    } else {
        None
    }
}

fn bench_diff(argv: &[String]) -> Result<Outcome, String> {
    let args = Args::parse(argv, &["max-regress"])?;
    let max_regress: Option<f64> = match args.maybe("max-regress") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--max-regress: cannot parse {raw:?}"))?,
        ),
        None => None,
    };
    let (base_path, cur_path) = match args.positionals() {
        [base] => (base.as_str(), None),
        [base, cur] => (base.as_str(), Some(cur.as_str())),
        _ => {
            return Err(
                "usage: jcdn obs bench-diff <baseline.json> [<current.json>] \
                 [--max-regress PCT]"
                    .into(),
            )
        }
    };
    let base = load(base_path)?;
    let base_metrics = top_level_u64(&base);

    let Some(cur_path) = cur_path else {
        // Single-file mode: print the baseline (the warn-only CI step runs
        // this when no fresh benchmark is available).
        println!("baseline: {base_path}");
        for (key, n) in &base_metrics {
            println!("  {key:<32} {n}");
        }
        return Ok(Outcome::Clean);
    };
    let cur = load(cur_path)?;
    let cur_metrics = top_level_u64(&cur);

    let mut worst_regress = 0.0f64;
    let mut regressions = 0usize;
    for (key, &base_value) in &base_metrics {
        let Some(&cur_value) = cur_metrics.get(key) else {
            continue;
        };
        let Some(lower_is_better) = direction(key) else {
            if base_value != cur_value {
                println!("context {key}: {base_value} -> {cur_value}");
            }
            continue;
        };
        if base_value == 0 {
            continue;
        }
        // jcdn-lint: allow(D4) -- display-only percentage, not merged state
        let change = (cur_value as f64 - base_value as f64) / base_value as f64 * 100.0;
        let regress = if lower_is_better { change } else { -change };
        let marker = if regress > 0.5 {
            regressions += 1;
            worst_regress = worst_regress.max(regress);
            " <-- regression"
        } else {
            ""
        };
        println!("{key:<32} {base_value:>12} -> {cur_value:>12} ({change:+.1}%){marker}");
    }
    if regressions > 0 {
        println!("{regressions} metric(s) regressed (worst {worst_regress:.1}%)");
    } else {
        println!("no regressions against {base_path}");
    }
    if let Some(limit) = max_regress {
        if worst_regress > limit {
            return Err(format!(
                "benchmark regression {worst_regress:.1}% exceeds --max-regress {limit}%"
            ));
        }
    }
    Ok(Outcome::Clean)
}

/// The numeric top-level fields of a benchmark JSON file.
fn top_level_u64(value: &Value) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    if let Some(object) = value.as_object() {
        for (key, entry) in object.iter() {
            if let Some(n) = entry.as_u64() {
                out.insert(key.to_string(), n);
            }
        }
    }
    out
}
