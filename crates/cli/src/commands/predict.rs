//! `jcdn predict` — the §5.2 Table 3 study over a trace file.

use jcdn_core::prediction::{run_study, PredictionStudyConfig};
use jcdn_core::report::TextTable;

use crate::args::Args;
use crate::commands::{load_trace, parse_threads, Outcome};
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let mut allowed = vec!["history", "k", "train-percent", "threads"];
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse(argv, &allowed)?;
    let mut obs = obs_args::begin("predict", &args)?;
    let path = args.positional("trace path")?;
    let threads = parse_threads(&args)?;
    let trace = load_trace(path, threads)?;
    obs.manifest.param("trace", path);

    let config = PredictionStudyConfig {
        history: args.number("history", 1usize)?,
        ks: args.number_list("k", &[1, 5, 10])?,
        train_percent: args.number("train-percent", 70u8)?,
        ..PredictionStudyConfig::default()
    };
    if config.history == 0 {
        return Err("--history must be at least 1".into());
    }
    eprintln!(
        "training the n-gram model (N = {}, {}% train split)...",
        config.history, config.train_percent
    );
    let report = run_study(&trace, &config);

    let mut table = TextTable::new(&["K", "Clustered URLs", "Actual URLs"]);
    for cell in &report.rows {
        table.row(&[
            cell.k.to_string(),
            format!("{:.3}", cell.clustered),
            format!("{:.3}", cell.actual),
        ]);
    }
    println!("{}", table.render());
    println!(
        "{} test transitions over {} held-out clients ({} trained)",
        report.test_transitions, report.test_clients, report.train_clients
    );
    obs.manifest
        .metrics
        .inc("predict.test_transitions", report.test_transitions as u64);
    obs.finish()?;
    Ok(Outcome::Clean)
}
