//! `jcdn merge` — combine several trace files into one.

use std::path::Path;

use crate::args::Args;
use crate::commands::load_trace;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["out"])?;
    let out = args.require("out")?;
    let inputs = args.positionals();
    if inputs.len() < 2 {
        return Err("merge needs at least two input traces".into());
    }
    let mut merged = load_trace(&inputs[0])?;
    for path in &inputs[1..] {
        let next = load_trace(path)?;
        merged.merge(&next);
    }
    merged.sort_canonical();
    jcdn_trace::codec::write_file(&merged, Path::new(out)).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "merged {} traces into {out} ({} records, {} URLs)",
        inputs.len(),
        merged.len(),
        merged.url_count()
    );
    Ok(())
}
