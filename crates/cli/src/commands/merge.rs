//! `jcdn merge` — combine several trace files into one.

use std::path::Path;

use crate::args::Args;
use crate::commands::{load_trace_tolerant, parse_threads, Outcome};
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let mut allowed = vec!["out", "threads"];
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse(argv, &allowed)?;
    let mut obs = obs_args::begin("merge", &args)?;
    let out = args.require("out")?;
    let threads = parse_threads(&args)?;
    let inputs = args.positionals();
    if inputs.len() < 2 {
        return Err("merge needs at least two input traces".into());
    }
    // Inputs load tolerantly: one damaged file costs its corrupt records,
    // not the whole merge — with the loss counted and reported below.
    // Stats are kept per input because `first_error_offset` is an offset
    // into that input's buffer; a minimum across files is meaningless.
    let mut decode_stats = jcdn_trace::codec::DecodeStats::default();
    let mut damaged: Vec<(&str, jcdn_trace::codec::DecodeStats)> = Vec::new();
    let mut merged = jcdn_trace::Trace::new();
    for path in inputs {
        let (next, stats) = load_trace_tolerant(path, threads)?;
        decode_stats.merge(&stats);
        if !stats.is_clean() {
            damaged.push((path, stats));
        }
        merged.merge(&next);
    }
    merged.sort_canonical();
    jcdn_trace::codec::write_file(&merged, Path::new(out)).map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "merged {} traces into {out} ({} records, {} URLs)",
        inputs.len(),
        merged.len(),
        merged.url_count()
    );
    if !decode_stats.is_clean() {
        eprintln!(
            "decode: dropped {} record(s) ({} CRC-failed, {} truncated, {} header-damaged \
             frame(s)) across the inputs ({} decoded)",
            decode_stats.records_dropped,
            decode_stats.frames_crc_failed,
            decode_stats.frames_truncated,
            decode_stats.frames_header_damaged,
            decode_stats.records_decoded
        );
        for (path, stats) in &damaged {
            match stats.first_error_offset {
                Some(at) => eprintln!(
                    "decode: {path}: first error at byte {at}, {} record(s) dropped",
                    stats.records_dropped
                ),
                None => eprintln!(
                    "decode: {path}: {} record(s) dropped",
                    stats.records_dropped
                ),
            }
        }
    }
    obs.manifest.param("out", out);
    obs.manifest.param("inputs", inputs.len());
    obs.manifest.param("threads", threads);
    obs.manifest.codec_version = jcdn_trace::codec::VERSION;
    obs.manifest
        .metrics
        .inc("codec.records.decoded", decode_stats.records_decoded);
    obs.manifest
        .metrics
        .inc("codec.records.dropped", decode_stats.records_dropped);
    obs.manifest
        .metrics
        .inc("codec.frames.crc_failed", decode_stats.frames_crc_failed);
    obs.manifest
        .metrics
        .inc("codec.frames.truncated", decode_stats.frames_truncated);
    obs.manifest.metrics.inc(
        "codec.frames.header_damaged",
        decode_stats.frames_header_damaged,
    );
    obs.manifest
        .metrics
        .inc("merge.records", merged.len() as u64);
    obs.finish()?;
    Ok(if decode_stats.is_clean() {
        Outcome::Clean
    } else {
        Outcome::Salvaged
    })
}
