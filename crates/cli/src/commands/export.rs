//! `jcdn export` — trace file → JSONL.

use std::io::Write as _;

use crate::args::Args;
use crate::commands::load_trace;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["jsonl"])?;
    let input = args.positional("trace path")?;
    let output = args.require("jsonl")?;
    let trace = load_trace(input)?;

    let file = std::fs::File::create(output).map_err(|e| format!("{output}: {e}"))?;
    let mut writer = std::io::BufWriter::new(file);
    for record in trace.records() {
        let line = jcdn_json::to_string(&jcdn_trace::codec::record_to_json(&trace, record));
        writeln!(writer, "{line}").map_err(|e| format!("{output}: {e}"))?;
    }
    writer.flush().map_err(|e| format!("{output}: {e}"))?;
    eprintln!("wrote {} JSONL records to {output}", trace.len());
    Ok(())
}
