//! `jcdn export` — trace file → JSONL.

use std::io::Write as _;

use crate::args::Args;
use crate::commands::{load_trace, parse_threads, Outcome};
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let mut allowed = vec!["jsonl", "threads"];
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse(argv, &allowed)?;
    let mut obs = obs_args::begin("export", &args)?;
    let input = args.positional("trace path")?;
    let output = args.require("jsonl")?;
    let threads = parse_threads(&args)?;
    let trace = load_trace(input, threads)?;
    obs.manifest.param("trace", input);
    obs.manifest.param("jsonl", output);
    obs.manifest
        .metrics
        .inc("export.records", trace.len() as u64);

    let file = std::fs::File::create(output).map_err(|e| format!("{output}: {e}"))?;
    let mut writer = std::io::BufWriter::new(file);
    for record in trace.records() {
        let line = jcdn_json::to_string(&jcdn_trace::codec::record_to_json(&trace, record));
        writeln!(writer, "{line}").map_err(|e| format!("{output}: {e}"))?;
    }
    writer.flush().map_err(|e| format!("{output}: {e}"))?;
    eprintln!("wrote {} JSONL records to {output}", trace.len());
    obs.finish()?;
    Ok(Outcome::Clean)
}
