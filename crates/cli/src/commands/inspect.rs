//! `jcdn inspect` — summarize a trace file.

use std::collections::BTreeMap;

use jcdn_core::report::{pct, TextTable};
use jcdn_trace::summary::DatasetSummary;
use jcdn_trace::MimeType;

use crate::args::Args;
use crate::commands::{load_trace, parse_threads, Outcome};
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let mut allowed = vec!["top", "threads"];
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse(argv, &allowed)?;
    let mut obs = obs_args::begin("inspect", &args)?;
    let path = args.positional("trace path")?;
    let top: usize = args.number("top", 10)?;
    let threads = parse_threads(&args)?;
    let trace = load_trace(path, threads)?;
    obs.manifest.param("trace", path);
    obs.manifest
        .metrics
        .inc("inspect.records", trace.len() as u64);

    let summary = DatasetSummary::compute(path, &trace);
    println!(
        "records: {}   duration: {}   domains: {}   clients: {}   objects: {}",
        summary.logs, summary.duration, summary.domains, summary.clients, summary.objects
    );

    // Content-type mix.
    let mut by_mime: BTreeMap<MimeType, u64> = BTreeMap::new();
    for r in trace.records() {
        *by_mime.entry(r.mime).or_default() += 1;
    }
    let mut mimes: Vec<(MimeType, u64)> = by_mime.into_iter().collect();
    mimes.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    let mut table = TextTable::new(&["Content type", "Requests", "Share"]);
    for (mime, count) in mimes {
        table.row(&[
            mime.to_string(),
            count.to_string(),
            pct(count as f64 / trace.len().max(1) as f64),
        ]);
    }
    println!("\n{}", table.render());

    // Busiest domains.
    let mut by_domain: BTreeMap<&str, u64> = BTreeMap::new();
    for r in trace.records() {
        *by_domain.entry(trace.host_of(r.url)).or_default() += 1;
    }
    let mut domains: Vec<(&str, u64)> = by_domain.into_iter().collect();
    domains.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut table = TextTable::new(&["Domain", "Requests"]);
    for (host, count) in domains.into_iter().take(top) {
        table.row(&[host.to_string(), count.to_string()]);
    }
    println!("top {top} domains:\n{}", table.render());
    obs.finish()?;
    Ok(Outcome::Clean)
}
