//! `jcdn generate` — build a workload, simulate the CDN, write the trace.

use std::path::Path;

use jcdn_cdnsim::SimConfig;
use jcdn_core::dataset::simulate_workload_parallel;
use jcdn_trace::ShardedTrace;
use jcdn_workload::{build_parallel, WorkloadConfig};

use crate::args::Args;
use crate::fault_args;
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut allowed = vec![
        "preset", "seed", "scale", "out", "edges", "shards", "threads",
    ];
    allowed.extend_from_slice(fault_args::FAULT_FLAGS);
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse(argv, &allowed)?;
    let mut obs = obs_args::begin("generate", &args)?;
    let seed: u64 = args.number("seed", 42)?;
    let scale: f64 = args.number("scale", 1.0)?;
    if !(scale > 0.0 && scale.is_finite()) {
        return Err("--scale must be positive".into());
    }
    let preset = args.get_or("preset", "tiny");
    let out = args.require("out")?;
    let shards: usize = args.number("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let threads: usize = args.number("threads", 1usize)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let config = match preset {
        "short" => WorkloadConfig::short_term(seed),
        "long" => WorkloadConfig::long_term(seed),
        "tiny" => WorkloadConfig::tiny(seed),
        other => return Err(format!("unknown preset {other:?} (short|long|tiny)")),
    }
    .scaled(scale);

    eprintln!(
        "generating `{}` (~{} events, {} clients, {} domains)...",
        config.name, config.target_events, config.clients, config.domains
    );
    // Fault windows may name domains, so the workload is built before the
    // simulator configuration is finalized. Thread count never changes the
    // output — generation and simulation are shard-invariant by design.
    let workload = build_parallel(&config, threads);
    let sim = SimConfig {
        edges: args.number("edges", 3usize)?,
        fault: fault_args::fault_plan(&args, &workload)?,
        resilience: fault_args::resilience(&args)?,
        ..SimConfig::default()
    };

    let edges = sim.edges;
    let data = simulate_workload_parallel(workload, &sim, threads);
    // Reproduction parameters + the simulator's deterministic counters.
    obs.manifest.param("preset", preset);
    obs.manifest.param("seed", seed);
    obs.manifest.param("scale", scale);
    obs.manifest.param("edges", edges);
    obs.manifest.param("shards", shards);
    obs.manifest.param("threads", threads);
    obs.manifest.param("out", out);
    obs.manifest.codec_version = jcdn_trace::codec::VERSION;
    if !sim.fault.is_empty() {
        obs.manifest.fault_digest = Some(format!(
            "{:016x}",
            jcdn_obs::manifest::fnv1a64(format!("{:?}", sim.fault).as_bytes())
        ));
    }
    obs.manifest.metrics.merge(&data.metrics);
    let (records, urls, uas) = (
        data.trace.len(),
        data.trace.url_count(),
        data.trace.ua_count(),
    );
    let summary_row = data.summary().table_row();
    if shards > 1 {
        let sharded = ShardedTrace::from_trace(data.trace, shards);
        jcdn_trace::codec::write_file_sharded(&sharded, Path::new(out))
            .map_err(|e| format!("{out}: {e}"))?;
        eprintln!(
            "wrote {records} records in {} shard frames ({urls} distinct URLs, {uas} UAs) to {out}",
            sharded.shard_count()
        );
    } else {
        jcdn_trace::codec::write_file(&data.trace, Path::new(out))
            .map_err(|e| format!("{out}: {e}"))?;
        eprintln!("wrote {records} records ({urls} distinct URLs, {uas} UAs) to {out}");
    }
    if !sim.fault.is_empty() {
        eprintln!(
            "faults: {} end-user failures ({} origin errors, {} retries, \
             {} stale serves)",
            data.stats.end_user_failures,
            data.stats.origin_errors,
            data.stats.retries_issued,
            data.stats.stale_serves
        );
    }
    println!("{summary_row}");
    obs.finish()
}
