//! `jcdn generate` — build a workload, simulate the CDN, write the trace.
//!
//! The trace reaches disk through the crash-safe store
//! ([`jcdn_trace::store`]): each shard frame is committed durably to a
//! staging area with a shard index before the final file is assembled by
//! concatenation. `--resume` reuses whatever a killed run already
//! committed (verified against the index, and only when the generation
//! parameters match) and recomputes the rest — producing a final file
//! byte-identical to an uninterrupted run's.

use std::path::Path;

use jcdn_cdnsim::SimConfig;
use jcdn_core::dataset::simulate_workload_parallel;
use jcdn_trace::store::StoreWriter;
use jcdn_trace::ShardedTrace;
use jcdn_workload::{build_parallel, WorkloadConfig};

use crate::args::Args;
use crate::cache_args;
use crate::commands::Outcome;
use crate::fault_args;
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let mut allowed = vec![
        "preset", "seed", "scale", "out", "edges", "shards", "threads",
    ];
    allowed.extend_from_slice(fault_args::FAULT_FLAGS);
    allowed.extend_from_slice(cache_args::CACHE_FLAGS);
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse_with_switches(argv, &allowed, &["resume"])?;
    let mut obs = obs_args::begin("generate", &args)?;
    let seed: u64 = args.number("seed", 42)?;
    let scale: f64 = args.number("scale", 1.0)?;
    if !(scale > 0.0 && scale.is_finite()) {
        return Err("--scale must be positive".into());
    }
    let preset = args.get_or("preset", "tiny");
    let out = args.require("out")?;
    let shards: usize = args.number("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let threads: usize = args.number("threads", 1usize)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let edges: usize = args.number("edges", 3usize)?;
    let resume = args.switch("resume");

    // The digest ties staged shards to the parameters that produced them,
    // so a resume never splices shards from a different run. Everything
    // that changes the trace bytes is in; --threads and --out are not.
    let digest = params_digest(&args, preset, seed, scale, edges, shards);
    let writer = StoreWriter::open(Path::new(out), shards, digest, resume, jcdn_chaos::handle())
        .map_err(|e| format!("{out}: {e}"))?;
    if writer.already_complete() {
        eprintln!("{out} is already complete for these parameters; nothing to do (--resume)");
        obs.manifest.param("out", out);
        obs.manifest.metrics.inc("store.resume_noop", 1);
        obs.finish()?;
        return Ok(Outcome::Clean);
    }
    let mut writer = writer;

    let config = match preset {
        "short" => WorkloadConfig::short_term(seed),
        "long" => WorkloadConfig::long_term(seed),
        "tiny" => WorkloadConfig::tiny(seed),
        other => return Err(format!("unknown preset {other:?} (short|long|tiny)")),
    }
    .scaled(scale);

    eprintln!(
        "generating `{}` (~{} events, {} clients, {} domains)...",
        config.name, config.target_events, config.clients, config.domains
    );
    // Fault windows may name domains, so the workload is built before the
    // simulator configuration is finalized. Thread count never changes the
    // output — generation and simulation are shard-invariant by design.
    let workload = build_parallel(&config, threads);
    let sim = SimConfig {
        edges,
        fault: fault_args::fault_plan(&args, &workload)?,
        resilience: fault_args::resilience(&args)?,
        hierarchy: cache_args::hierarchy(&args)?,
        window: obs.window,
        ..SimConfig::default()
    };

    // The workload's own event series (scheduled arrivals per window) is
    // captured before the workload moves into the simulator.
    let workload_series = obs.window.map(|spec| workload.event_series(spec));
    let data = simulate_workload_parallel(workload, &sim, threads);
    // Series streams in fixed order (workload, then sim) so the JSONL
    // file is deterministic. Window counts are deterministic counters.
    if let Some(series) = &workload_series {
        obs.manifest
            .metrics
            .inc("ts.windows.workload", series.rows().len() as u64);
        obs.push_series(&series.to_jsonl("workload"));
    }
    if let Some(series) = &data.series {
        obs.manifest
            .metrics
            .inc("ts.windows.sim", series.rows().len() as u64);
        obs.push_series(&series.to_jsonl("sim"));
    }
    if let Some(spec) = &obs.window {
        obs.manifest.param("window", spec);
    }
    // Reproduction parameters + the simulator's deterministic counters.
    obs.manifest.param("preset", preset);
    obs.manifest.param("seed", seed);
    obs.manifest.param("scale", scale);
    obs.manifest.param("edges", edges);
    obs.manifest.param("shards", shards);
    obs.manifest.param("threads", threads);
    obs.manifest.param("out", out);
    if let Some(h) = &sim.hierarchy {
        obs.manifest.param("cache", cache_args::describe(h));
    }
    obs.manifest.codec_version = jcdn_trace::codec::VERSION;
    if !sim.fault.is_empty() {
        obs.manifest.fault_digest = Some(format!(
            "{:016x}",
            jcdn_obs::manifest::fnv1a64(format!("{:?}", sim.fault).as_bytes())
        ));
    }
    obs.manifest.metrics.merge(&data.metrics);
    let (records, urls, uas) = (
        data.trace.len(),
        data.trace.url_count(),
        data.trace.ua_count(),
    );
    let summary_row = data.summary().table_row();
    if shards > 1 {
        let sharded = ShardedTrace::from_trace(data.trace, shards);
        writer
            .commit_interner(sharded.interner())
            .map_err(|e| format!("{out}: {e}"))?;
        let slices: Vec<&[jcdn_trace::LogRecord]> = (0..sharded.shard_count())
            .map(|i| sharded.shard_records(i))
            .collect();
        writer
            .write_shards(&slices, threads)
            .map_err(|e| format!("{out}: {e}"))?;
        eprintln!(
            "wrote {records} records in {} shard frames ({urls} distinct URLs, {uas} UAs) to {out}",
            sharded.shard_count()
        );
    } else {
        // One frame over the trace's own record order — byte-identical to
        // the non-store `codec::write_file` output.
        writer
            .commit_interner(data.trace.interner())
            .map_err(|e| format!("{out}: {e}"))?;
        writer
            .write_shards(&[data.trace.records()], threads)
            .map_err(|e| format!("{out}: {e}"))?;
        eprintln!("wrote {records} records ({urls} distinct URLs, {uas} UAs) to {out}");
    }
    obs.manifest
        .metrics
        .inc("store.shards_reused", writer.shards_reused());
    if writer.shards_reused() > 0 {
        eprintln!(
            "resume: reused {} committed shard(s) from the interrupted run",
            writer.shards_reused()
        );
    }
    writer.finalize().map_err(|e| format!("{out}: {e}"))?;
    if !sim.fault.is_empty() {
        eprintln!(
            "faults: {} end-user failures ({} origin errors, {} retries, \
             {} stale serves)",
            data.stats.end_user_failures,
            data.stats.origin_errors,
            data.stats.retries_issued,
            data.stats.stale_serves
        );
    }
    if let Some(h) = &sim.hierarchy {
        eprintln!("cache: {}", cache_args::describe(h));
        if let Some(tiers) = jcdn_core::report::tier_section(&data.stats) {
            eprint!("{tiers}");
        }
    }
    println!("{summary_row}");
    obs.finish()?;
    Ok(Outcome::Clean)
}

/// FNV-1a digest over everything that determines the trace bytes: codec
/// version, preset, seed, scale, edges, shard count, and any fault or
/// resilience flags. `--threads` and `--out` are deliberately excluded —
/// neither changes the output.
fn params_digest(
    args: &Args,
    preset: &str,
    seed: u64,
    scale: f64,
    edges: usize,
    shards: usize,
) -> u64 {
    let mut spec = format!(
        "v{};preset={preset};seed={seed};scale={scale};edges={edges};shards={shards}",
        jcdn_trace::codec::VERSION
    );
    for &flag in fault_args::FAULT_FLAGS {
        if let Some(value) = args.maybe(flag) {
            spec.push_str(&format!(";{flag}={value}"));
        }
    }
    // Cache topology changes latencies, statuses, and retries — i.e. the
    // trace bytes — so it is part of the digest too.
    for &flag in cache_args::CACHE_FLAGS {
        if let Some(value) = args.maybe(flag) {
            spec.push_str(&format!(";{flag}={value}"));
        }
    }
    jcdn_trace::fnv1a(spec.as_bytes())
}
