//! `jcdn generate` — build a workload, simulate the CDN, write the trace.

use std::path::Path;

use jcdn_cdnsim::SimConfig;
use jcdn_core::dataset::simulate_workload;
use jcdn_workload::{build, WorkloadConfig};

use crate::args::Args;
use crate::fault_args;

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut allowed = vec!["preset", "seed", "scale", "out", "edges"];
    allowed.extend_from_slice(fault_args::FAULT_FLAGS);
    let args = Args::parse(argv, &allowed)?;
    let seed: u64 = args.number("seed", 42)?;
    let scale: f64 = args.number("scale", 1.0)?;
    if !(scale > 0.0 && scale.is_finite()) {
        return Err("--scale must be positive".into());
    }
    let preset = args.get_or("preset", "tiny");
    let out = args.require("out")?;

    let config = match preset {
        "short" => WorkloadConfig::short_term(seed),
        "long" => WorkloadConfig::long_term(seed),
        "tiny" => WorkloadConfig::tiny(seed),
        other => return Err(format!("unknown preset {other:?} (short|long|tiny)")),
    }
    .scaled(scale);

    eprintln!(
        "generating `{}` (~{} events, {} clients, {} domains)...",
        config.name, config.target_events, config.clients, config.domains
    );
    // Fault windows may name domains, so the workload is built before the
    // simulator configuration is finalized.
    let workload = build(&config);
    let sim = SimConfig {
        edges: args.number("edges", 3usize)?,
        fault: fault_args::fault_plan(&args, &workload)?,
        resilience: fault_args::resilience(&args)?,
        ..SimConfig::default()
    };

    let data = simulate_workload(workload, &sim);
    jcdn_trace::codec::write_file(&data.trace, Path::new(out))
        .map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "wrote {} records ({} distinct URLs, {} UAs) to {out}",
        data.trace.len(),
        data.trace.url_count(),
        data.trace.ua_count()
    );
    if !sim.fault.is_empty() {
        eprintln!(
            "faults: {} end-user failures ({} origin errors, {} retries, \
             {} stale serves)",
            data.stats.end_user_failures,
            data.stats.origin_errors,
            data.stats.retries_issued,
            data.stats.stale_serves
        );
    }
    println!("{}", data.summary().table_row());
    Ok(())
}
