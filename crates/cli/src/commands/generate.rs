//! `jcdn generate` — build a workload, simulate the CDN, write the trace.

use std::path::Path;

use jcdn_cdnsim::SimConfig;
use jcdn_core::dataset::simulate_with;
use jcdn_workload::WorkloadConfig;

use crate::args::Args;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["preset", "seed", "scale", "out", "edges"])?;
    let seed: u64 = args.number("seed", 42)?;
    let scale: f64 = args.number("scale", 1.0)?;
    if !(scale > 0.0 && scale.is_finite()) {
        return Err("--scale must be positive".into());
    }
    let preset = args.get_or("preset", "tiny");
    let out = args.require("out")?;

    let config = match preset {
        "short" => WorkloadConfig::short_term(seed),
        "long" => WorkloadConfig::long_term(seed),
        "tiny" => WorkloadConfig::tiny(seed),
        other => return Err(format!("unknown preset {other:?} (short|long|tiny)")),
    }
    .scaled(scale);

    let sim = SimConfig {
        edges: args.number("edges", 3usize)?,
        ..SimConfig::default()
    };

    eprintln!(
        "generating `{}` (~{} events, {} clients, {} domains)...",
        config.name, config.target_events, config.clients, config.domains
    );
    let data = simulate_with(&config, &sim);
    jcdn_trace::codec::write_file(&data.trace, Path::new(out))
        .map_err(|e| format!("{out}: {e}"))?;
    eprintln!(
        "wrote {} records ({} distinct URLs, {} UAs) to {out}",
        data.trace.len(),
        data.trace.url_count(),
        data.trace.ua_count()
    );
    println!("{}", data.summary().table_row());
    Ok(())
}
