//! `jcdn periodicity` — the §5.1 study over a trace file.

use jcdn_core::periodicity::{run_study, PeriodicityStudyConfig};
use jcdn_core::report::pct;
use jcdn_signal::periodicity::PeriodicityConfig;

use crate::args::Args;
use crate::commands::{load_trace, parse_threads, Outcome};
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let mut allowed = vec![
        "permutations",
        "max-bins",
        "min-requests",
        "min-clients",
        "threads",
    ];
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse(argv, &allowed)?;
    let mut obs = obs_args::begin("periodicity", &args)?;
    let path = args.positional("trace path")?;
    let threads = parse_threads(&args)?;
    let trace = load_trace(path, threads)?;
    obs.manifest.param("trace", path);

    let config = PeriodicityStudyConfig {
        detector: PeriodicityConfig {
            permutations: args.number("permutations", 100usize)?,
            max_bins: args.number("max-bins", 1usize << 15)?,
            parallel: true,
            ..PeriodicityConfig::default()
        },
        min_requests: args.number("min-requests", 10usize)?,
        min_clients: args.number("min-clients", 10usize)?,
        ..PeriodicityStudyConfig::default()
    };
    eprintln!(
        "running the periodicity study (x = {}, filters >= {} req / >= {} clients)...",
        config.detector.permutations, config.min_requests, config.min_clients
    );
    let report = run_study(&trace, &config);

    println!(
        "periodic objects: {}   periodic flows: {}",
        report.object_periods.len(),
        report.periodic_flows.len()
    );
    println!(
        "periodic share of JSON requests: {} (paper: 6.3%)",
        pct(report.periodic_share())
    );
    println!(
        "periodic traffic: {} uncacheable (paper: 56.2%), {} uploads (paper: 78%)",
        pct(report.periodic_uncacheable_share()),
        pct(report.periodic_upload_share())
    );
    println!("\nhistogram of object periods (Figure 5):");
    print!("{}", report.period_histogram().render(40));
    println!("\nCDF of periodic-client share per object (Figure 6):");
    print!("{}", report.client_fraction_cdf().render(10, 40));
    println!(
        "objects with a periodic-client majority: {} (paper: ~20%)",
        pct(report.majority_periodic_object_share())
    );

    // The flows themselves, most requests first.
    let mut flows = report.periodic_flows.clone();
    flows.sort_by_key(|f| std::cmp::Reverse(f.requests));
    println!("\nbusiest periodic flows:");
    for flow in flows.iter().take(10) {
        println!(
            "  {:>6.1}s  {:>5} reqs  {}",
            flow.period_seconds,
            flow.requests,
            trace.url(flow.url)
        );
    }
    obs.manifest
        .metrics
        .inc("periodicity.flows", report.periodic_flows.len() as u64);
    obs.finish()?;
    Ok(Outcome::Clean)
}
