//! `jcdn characterize` — the §4 analyses over a trace file.
//!
//! Robustness contract: the read is tolerant (a damaged file analyzes
//! what survived), shard accumulation is panic-isolated (a shard whose
//! task panics twice is quarantined, not fatal), and `--resume` falls
//! back to the staged shards of an unfinished `generate` run when the
//! final file does not exist. Whenever any of that loses input, the
//! report is printed with an explicit footer and the command exits with
//! code 3 (completed with salvage) instead of 0.

use std::path::Path;

use jcdn_core::characterize::TokenCategoryProvider;
use jcdn_core::pipeline::{CharacterizationReport, ExecHealth};
use jcdn_core::report::{availability_section, pct, TextTable};
use jcdn_trace::codec::DecodeStats;
use jcdn_trace::ShardedTrace;
use jcdn_ua::DeviceType;
use jcdn_workload::IndustryCategory;

use crate::args::Args;
use crate::commands::Outcome;
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let mut allowed = vec!["shards", "threads"];
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse_with_switches(argv, &allowed, &["resume"])?;
    let mut obs = obs_args::begin("characterize", &args)?;
    let path = args.positional("trace path")?;
    let threads = crate::commands::parse_threads(&args)?;

    // The file's own shard frames are the default partitioning; --shards
    // re-partitions (e.g. a v1/v2 single-frame file analyzed on 8 threads).
    // The read is tolerant: a damaged file analyzes what survived, with
    // the loss counted and surfaced instead of silently aborting the run.
    let (mut sharded, decode_stats, shards_missing) =
        read_input(path, args.switch("resume"), threads)?;
    let shards: usize = args.number("shards", 0)?; // 0 = keep the file's framing
    if shards > 0 && shards != sharded.shard_count() {
        sharded = ShardedTrace::from_trace(sharded.into_trace(), shards);
    }
    obs.manifest.param("trace", path);
    obs.manifest.param("shards", sharded.shard_count());
    obs.manifest.param("threads", threads);
    obs.manifest.codec_version = jcdn_trace::codec::VERSION;
    obs.manifest
        .metrics
        .inc("codec.records.decoded", decode_stats.records_decoded);
    obs.manifest
        .metrics
        .inc("codec.records.dropped", decode_stats.records_dropped);
    obs.manifest
        .metrics
        .inc("codec.frames.crc_failed", decode_stats.frames_crc_failed);
    obs.manifest
        .metrics
        .inc("codec.frames.truncated", decode_stats.frames_truncated);
    obs.manifest
        .metrics
        .inc("store.shards_missing", shards_missing);
    let (report, health) =
        CharacterizationReport::compute_sharded_isolated(&sharded, &TokenCategoryProvider, threads);
    obs.manifest
        .metrics
        .inc("exec.task_panics", health.task_panics);
    obs.manifest
        .metrics
        .inc("exec.shards_quarantined", health.quarantined.len() as u64);

    let sources = &report.sources;
    let mut table = TextTable::new(&["Device", "Requests", "UA strings"]);
    for device in DeviceType::ALL {
        table.row(&[
            device.to_string(),
            pct(sources.request_share(device)),
            pct(sources.ua_share(device)),
        ]);
    }
    println!("traffic source (JSON requests):\n{}", table.render());
    println!("non-browser: {}\n", pct(sources.non_browser_share()));

    let requests = &report.requests;
    println!(
        "request type: GET {}   POST-of-rest {}",
        pct(requests.download_share()),
        pct(requests.upload_share_of_rest())
    );

    let mut responses = report.responses.clone();
    println!("uncacheable JSON: {}", pct(responses.uncacheable_share()));
    for q in [0.5, 0.75] {
        if let Some(gap) = responses.json_smaller_than_html_at(q) {
            println!(
                "JSON smaller than HTML at p{}: {}",
                (q * 100.0) as u32,
                pct(gap)
            );
        }
    }
    if let Some(ratio) = report.json_html_ratio() {
        println!("JSON:HTML request ratio: {ratio:.2}x");
    }

    let heatmap = &report.heatmap;
    let mut table = TextTable::new(&["Industry", "Never", "Always", "Mean cacheable"]);
    for category in IndustryCategory::ALL {
        let Some(row) = heatmap.rows.get(&category) else {
            continue;
        };
        let total: u64 = row.iter().sum();
        table.row(&[
            category.label().to_string(),
            pct(row[0] as f64 / total.max(1) as f64),
            pct(row[9] as f64 / total.max(1) as f64),
            heatmap.row_mean(category).map(pct).unwrap_or_default(),
        ]);
    }
    println!("\ncacheability by industry:\n{}", table.render());
    println!(
        "domains never cacheable: {}   always: {}   uncategorized: {}",
        pct(heatmap.never_cacheable_share()),
        pct(heatmap.always_cacheable_share()),
        heatmap.uncategorized
    );

    println!("\n{}", availability_section(&report.availability));
    let salvage = print_salvage_footer(&decode_stats, shards_missing, &health);
    obs.finish()?;
    Ok(if salvage {
        Outcome::Salvaged
    } else {
        Outcome::Clean
    })
}

/// Loads the input: the final trace file, or — with `--resume`, when the
/// final file is absent — whatever an unfinished `generate` run staged.
/// Returns the sharded trace, the decode tallies, and the count of shard
/// slots with no usable data.
fn read_input(
    path: &str,
    resume: bool,
    threads: usize,
) -> Result<(ShardedTrace, DecodeStats, u64), String> {
    let p = Path::new(path);
    if resume && !p.exists() {
        let (sharded, stats) = jcdn_trace::store::read_staged(p).map_err(|e| {
            format!("{path}: {e} (no final file, and the staging area is unusable)")
        })?;
        eprintln!(
            "resume: final file absent; analyzing {} of {} staged shard(s)",
            stats.shard_count as u64 - stats.shards_missing,
            stats.shard_count
        );
        return Ok((sharded, stats.decode, stats.shards_missing));
    }
    let (sharded, stats) = jcdn_trace::codec::read_file_sharded_tolerant_parallel(p, threads)
        .map_err(|e| format!("{path}: {e}"))?;
    Ok((sharded, stats, 0))
}

/// Prints the explicit partial-result footer when anything was lost on
/// the way to the report; returns whether the run salvaged.
fn print_salvage_footer(decode: &DecodeStats, shards_missing: u64, health: &ExecHealth) -> bool {
    let dirty = !decode.is_clean() || shards_missing > 0 || !health.is_complete();
    if !decode.is_clean() {
        let offset = decode
            .first_error_offset
            .map(|o| format!("; first error at byte {o}"))
            .unwrap_or_default();
        println!(
            "\ndecode: dropped {} record(s) ({} CRC-failed frame(s), {} truncated \
             frame(s){offset}; {} decoded)",
            decode.records_dropped,
            decode.frames_crc_failed,
            decode.frames_truncated,
            decode.records_decoded
        );
    }
    if shards_missing > 0 {
        println!(
            "store: {shards_missing} staged shard(s) missing or damaged, analyzed without them"
        );
    }
    if !health.is_complete() {
        let list: Vec<String> = health.quarantined.iter().map(usize::to_string).collect();
        println!(
            "exec: quarantined shard(s) [{}] after {} caught panic(s); report excludes them",
            list.join(", "),
            health.task_panics
        );
    }
    if dirty {
        println!("partial result: the numbers above cover exactly the surviving input");
    }
    dirty
}
