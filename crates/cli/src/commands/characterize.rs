//! `jcdn characterize` — the §4 analyses over a trace file.

use std::path::Path;

use jcdn_core::characterize::TokenCategoryProvider;
use jcdn_core::pipeline::CharacterizationReport;
use jcdn_core::report::{availability_section, pct, TextTable};
use jcdn_trace::ShardedTrace;
use jcdn_ua::DeviceType;
use jcdn_workload::IndustryCategory;

use crate::args::Args;
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<(), String> {
    let mut allowed = vec!["shards", "threads"];
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse(argv, &allowed)?;
    let mut obs = obs_args::begin("characterize", &args)?;
    let path = args.positional("trace path")?;
    let threads: usize = args.number("threads", 1usize)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    // The file's own shard frames are the default partitioning; --shards
    // re-partitions (e.g. a v1/v2 single-frame file analyzed on 8 threads).
    // The read is tolerant: a damaged file analyzes what survived, with
    // the loss counted and surfaced instead of silently aborting the run.
    let (mut sharded, decode_stats) =
        jcdn_trace::codec::read_file_sharded_tolerant(Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
    let shards: usize = args.number("shards", 0)?; // 0 = keep the file's framing
    if shards > 0 && shards != sharded.shard_count() {
        sharded = ShardedTrace::from_trace(sharded.into_trace(), shards);
    }
    obs.manifest.param("trace", path);
    obs.manifest.param("shards", sharded.shard_count());
    obs.manifest.param("threads", threads);
    obs.manifest.codec_version = jcdn_trace::codec::VERSION;
    obs.manifest
        .metrics
        .inc("codec.records.decoded", decode_stats.records_decoded);
    obs.manifest
        .metrics
        .inc("codec.records.dropped", decode_stats.records_dropped);
    obs.manifest
        .metrics
        .inc("codec.frames.dropped", decode_stats.frames_dropped);
    let report = CharacterizationReport::compute_sharded(&sharded, &TokenCategoryProvider, threads);

    let sources = &report.sources;
    let mut table = TextTable::new(&["Device", "Requests", "UA strings"]);
    for device in DeviceType::ALL {
        table.row(&[
            device.to_string(),
            pct(sources.request_share(device)),
            pct(sources.ua_share(device)),
        ]);
    }
    println!("traffic source (JSON requests):\n{}", table.render());
    println!("non-browser: {}\n", pct(sources.non_browser_share()));

    let requests = &report.requests;
    println!(
        "request type: GET {}   POST-of-rest {}",
        pct(requests.download_share()),
        pct(requests.upload_share_of_rest())
    );

    let mut responses = report.responses.clone();
    println!("uncacheable JSON: {}", pct(responses.uncacheable_share()));
    for q in [0.5, 0.75] {
        if let Some(gap) = responses.json_smaller_than_html_at(q) {
            println!(
                "JSON smaller than HTML at p{}: {}",
                (q * 100.0) as u32,
                pct(gap)
            );
        }
    }
    if let Some(ratio) = report.json_html_ratio() {
        println!("JSON:HTML request ratio: {ratio:.2}x");
    }

    let heatmap = &report.heatmap;
    let mut table = TextTable::new(&["Industry", "Never", "Always", "Mean cacheable"]);
    for category in IndustryCategory::ALL {
        let Some(row) = heatmap.rows.get(&category) else {
            continue;
        };
        let total: u64 = row.iter().sum();
        table.row(&[
            category.label().to_string(),
            pct(row[0] as f64 / total.max(1) as f64),
            pct(row[9] as f64 / total.max(1) as f64),
            heatmap.row_mean(category).map(pct).unwrap_or_default(),
        ]);
    }
    println!("\ncacheability by industry:\n{}", table.render());
    println!(
        "domains never cacheable: {}   always: {}   uncategorized: {}",
        pct(heatmap.never_cacheable_share()),
        pct(heatmap.always_cacheable_share()),
        heatmap.uncategorized
    );

    println!("\n{}", availability_section(&report.availability));
    if !decode_stats.is_clean() {
        println!(
            "\ndecode: dropped {} record(s) and {} shard frame(s) from a \
             damaged input ({} decoded)",
            decode_stats.records_dropped, decode_stats.frames_dropped, decode_stats.records_decoded
        );
    }
    obs.finish()
}
