//! `jcdn characterize` — the §4 analyses over a trace file.
//!
//! Robustness contract: the read is tolerant (a damaged file analyzes
//! what survived), shard accumulation is panic-isolated (a shard whose
//! task panics twice is quarantined, not fatal), and `--resume` falls
//! back to the staged shards of an unfinished `generate` run when the
//! final file does not exist. Whenever any of that loses input, the
//! report is printed with an explicit footer and the command exits with
//! code 3 (completed with salvage) instead of 0.

use std::path::Path;

use jcdn_core::characterize::TokenCategoryProvider;
use jcdn_core::pipeline::{CharacterizationReport, ExecHealth};
use jcdn_core::report::{availability_section, pct, TextTable};
use jcdn_trace::codec::DecodeStats;
use jcdn_trace::ShardedTrace;
use jcdn_ua::DeviceType;
use jcdn_workload::IndustryCategory;

use crate::args::Args;
use crate::cache_args;
use crate::commands::Outcome;
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let mut allowed = vec!["shards", "threads"];
    allowed.extend_from_slice(cache_args::CACHE_FLAGS);
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse_with_switches(argv, &allowed, &["resume"])?;
    let mut obs = obs_args::begin("characterize", &args)?;
    let path = args.positional("trace path")?;
    let threads = crate::commands::parse_threads(&args)?;

    // The file's own shard frames are the default partitioning; --shards
    // re-partitions (e.g. a v1/v2 single-frame file analyzed on 8 threads).
    // The read is tolerant: a damaged file analyzes what survived, with
    // the loss counted and surfaced instead of silently aborting the run.
    let (mut sharded, decode_stats, shards_missing) =
        read_input(path, args.switch("resume"), threads)?;
    let shards: usize = args.number("shards", 0)?; // 0 = keep the file's framing
    if shards > 0 && shards != sharded.shard_count() {
        sharded = ShardedTrace::from_trace(sharded.into_trace(), shards);
    }
    obs.manifest.param("trace", path);
    obs.manifest.param("shards", sharded.shard_count());
    obs.manifest.param("threads", threads);
    obs.manifest.codec_version = jcdn_trace::codec::VERSION;
    obs.manifest
        .metrics
        .inc("codec.records.decoded", decode_stats.records_decoded);
    obs.manifest
        .metrics
        .inc("codec.records.dropped", decode_stats.records_dropped);
    obs.manifest
        .metrics
        .inc("codec.frames.crc_failed", decode_stats.frames_crc_failed);
    obs.manifest
        .metrics
        .inc("codec.frames.truncated", decode_stats.frames_truncated);
    obs.manifest
        .metrics
        .inc("store.shards_missing", shards_missing);
    let (report, health) =
        CharacterizationReport::compute_sharded_isolated(&sharded, &TokenCategoryProvider, threads);
    obs.manifest
        .metrics
        .inc("exec.task_panics", health.task_panics);
    obs.manifest
        .metrics
        .inc("exec.shards_quarantined", health.quarantined.len() as u64);

    let sources = &report.sources;
    let mut table = TextTable::new(&["Device", "Requests", "UA strings"]);
    for device in DeviceType::ALL {
        table.row(&[
            device.to_string(),
            pct(sources.request_share(device)),
            pct(sources.ua_share(device)),
        ]);
    }
    println!("traffic source (JSON requests):\n{}", table.render());
    println!("non-browser: {}\n", pct(sources.non_browser_share()));

    let requests = &report.requests;
    println!(
        "request type: GET {}   POST-of-rest {}",
        pct(requests.download_share()),
        pct(requests.upload_share_of_rest())
    );

    let mut responses = report.responses.clone();
    println!("uncacheable JSON: {}", pct(responses.uncacheable_share()));
    for q in [0.5, 0.75] {
        if let Some(gap) = responses.json_smaller_than_html_at(q) {
            println!(
                "JSON smaller than HTML at p{}: {}",
                (q * 100.0) as u32,
                pct(gap)
            );
        }
    }
    if let Some(ratio) = report.json_html_ratio() {
        println!("JSON:HTML request ratio: {ratio:.2}x");
    }

    let heatmap = &report.heatmap;
    let mut table = TextTable::new(&["Industry", "Never", "Always", "Mean cacheable"]);
    for category in IndustryCategory::ALL {
        let Some(row) = heatmap.rows.get(&category) else {
            continue;
        };
        let total: u64 = row.iter().sum();
        table.row(&[
            category.label().to_string(),
            pct(row[0] as f64 / total.max(1) as f64),
            pct(row[9] as f64 / total.max(1) as f64),
            heatmap.row_mean(category).map(pct).unwrap_or_default(),
        ]);
    }
    println!("\ncacheability by industry:\n{}", table.render());
    println!(
        "domains never cacheable: {}   always: {}   uncategorized: {}",
        pct(heatmap.never_cacheable_share()),
        pct(heatmap.always_cacheable_share()),
        heatmap.uncategorized
    );

    // Windowed §4 series: per-window rates, mix, and top-URL churn over
    // the simulated timeline. Deterministic — the JSONL stream and the
    // ts.* counters are part of the manifest's counter section.
    if let Some(spec) = obs.window {
        use jcdn_core::series::{SeriesReport, DEFAULT_TOP_URLS};
        let series = SeriesReport::compute_sharded(&sharded, threads, spec, DEFAULT_TOP_URLS);
        obs.manifest.param("window", spec);
        obs.manifest
            .metrics
            .inc("ts.windows.section4", series.rows.len() as u64);
        println!(
            "\ntime series ({spec} windows): {} window(s)",
            series.rows.len()
        );
        if let Some(peak) = series.peak() {
            println!(
                "  peak window #{}: {} requests ({} req/s)",
                peak.window,
                peak.requests,
                peak.rate_per_sec()
            );
        }
        if let Some(churn) = series.mean_churn_pml() {
            println!("  mean top-URL churn: {}.{}%", churn / 10, churn % 10);
        }
        obs.push_series(&series.to_jsonl());
    }

    println!("\n{}", availability_section(&report.availability));
    // What-if cache replay: feed the recorded requests through a
    // hypothetical hierarchy and report where each one would have been
    // served. Extends the availability section with per-tier hit rates.
    if let Some(h) = cache_args::hierarchy(&args)? {
        obs.manifest.param("cache", cache_args::describe(&h));
        println!("what-if cache hierarchy: {}", cache_args::describe(&h));
        print!("{}", replay_hierarchy(&sharded, &h));
    }
    let salvage = print_salvage_footer(&decode_stats, shards_missing, &health);
    obs.finish()?;
    Ok(if salvage {
        Outcome::Salvaged
    } else {
        Outcome::Clean
    })
}

/// Replays the trace's cacheable requests through a hypothetical cache
/// hierarchy (a single logical edge in front of the shared tiers) and
/// renders where each request would have been served. The trace's shards
/// are contiguous time partitions, so walking them in order preserves
/// request order; the replay is fully deterministic (policy seeds are
/// fixed, no RNG streams are involved).
fn replay_hierarchy(sharded: &ShardedTrace, h: &jcdn_cdnsim::CacheHierarchy) -> String {
    use jcdn_cdnsim::cache::PolicyCache;
    use jcdn_cdnsim::Placement;
    use jcdn_core::report::TextTable;
    use jcdn_trace::{CacheStatus, SimDuration};

    // Recorded traces carry no TTLs, so entries live until evicted unless
    // a tier spec caps them.
    let ttl = SimDuration::from_secs(u64::MAX / 4_000_000);
    let mut caches: Vec<PolicyCache<u32>> = std::iter::once(&h.edge)
        .chain(&h.shared)
        .enumerate()
        .map(|(i, t)| PolicyCache::with_policy(t.capacity, t.policy, 0x007E_91A7 ^ i as u64))
        .collect();
    let levels = caches.len();
    let mut lookups = vec![0u64; levels];
    let mut hits = vec![0u64; levels];
    let mut origin = 0u64;
    let mut cacheable = 0u64;
    for shard in 0..sharded.shard_count() {
        for record in sharded.shard_records(shard) {
            if record.cache == CacheStatus::NotCacheable {
                continue;
            }
            cacheable += 1;
            let now = record.time;
            let object = record.url.0;
            let size = record.response_bytes.max(1);
            let served = (0..levels).find(|&level| {
                lookups[level] += 1;
                if caches[level].get(object, now) {
                    hits[level] += 1;
                    true
                } else {
                    false
                }
            });
            match served {
                Some(level) => {
                    // A hit copies toward the client per the placement rule.
                    let fill = match h.placement {
                        Placement::CopyEverywhere => 0..level,
                        Placement::CopyDown => level.saturating_sub(1)..level,
                    };
                    for up in fill {
                        insert(&mut caches[up], h, up, object, size, ttl, now);
                    }
                }
                None => {
                    origin += 1;
                    let fill = match h.placement {
                        Placement::CopyEverywhere => 0..levels,
                        Placement::CopyDown => levels - 1..levels,
                    };
                    for level in fill {
                        insert(&mut caches[level], h, level, object, size, ttl, now);
                    }
                }
            }
        }
    }

    fn insert(
        cache: &mut jcdn_cdnsim::cache::PolicyCache<u32>,
        h: &jcdn_cdnsim::CacheHierarchy,
        level: usize,
        object: u32,
        size: u64,
        ttl: jcdn_trace::SimDuration,
        now: jcdn_trace::SimTime,
    ) {
        let spec = match level {
            0 => &h.edge,
            n => &h.shared[n - 1],
        };
        if size <= spec.capacity {
            cache.insert(object, size, spec.effective_ttl(ttl), now, false);
        }
    }

    let mut table = TextTable::new(&["Level", "Policy", "Lookups", "Hits", "Hit rate"]);
    for (level, cache) in caches.iter().enumerate() {
        let name = match level {
            0 => h.edge.name.as_str(),
            n => h.shared[n - 1].name.as_str(),
        };
        let rate = match lookups[level] {
            0 => "-".to_string(),
            n => pct(hits[level] as f64 / n as f64),
        };
        table.row(&[
            name.to_string(),
            cache.policy_name().to_string(),
            lookups[level].to_string(),
            hits[level].to_string(),
            rate,
        ]);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "origin fetches: {origin} of {cacheable} cacheable requests ({})\n",
        match cacheable {
            0 => "-".to_string(),
            n => pct(origin as f64 / n as f64),
        }
    ));
    out
}

/// Loads the input: the final trace file, or — with `--resume`, when the
/// final file is absent — whatever an unfinished `generate` run staged.
/// Returns the sharded trace, the decode tallies, and the count of shard
/// slots with no usable data.
fn read_input(
    path: &str,
    resume: bool,
    threads: usize,
) -> Result<(ShardedTrace, DecodeStats, u64), String> {
    let p = Path::new(path);
    if resume && !p.exists() {
        let (sharded, stats) = jcdn_trace::store::read_staged(p).map_err(|e| {
            format!("{path}: {e} (no final file, and the staging area is unusable)")
        })?;
        eprintln!(
            "resume: final file absent; analyzing {} of {} staged shard(s)",
            stats.shard_count as u64 - stats.shards_missing,
            stats.shard_count
        );
        return Ok((sharded, stats.decode, stats.shards_missing));
    }
    let (sharded, stats) = jcdn_trace::codec::read_file_sharded_tolerant_parallel(p, threads)
        .map_err(|e| format!("{path}: {e}"))?;
    Ok((sharded, stats, 0))
}

/// Prints the explicit partial-result footer when anything was lost on
/// the way to the report; returns whether the run salvaged.
fn print_salvage_footer(decode: &DecodeStats, shards_missing: u64, health: &ExecHealth) -> bool {
    let dirty = !decode.is_clean() || shards_missing > 0 || !health.is_complete();
    if !decode.is_clean() {
        let offset = decode
            .first_error_offset
            .map(|o| format!("; first error at byte {o}"))
            .unwrap_or_default();
        println!(
            "\ndecode: dropped {} record(s) ({} CRC-failed frame(s), {} truncated \
             frame(s){offset}; {} decoded)",
            decode.records_dropped,
            decode.frames_crc_failed,
            decode.frames_truncated,
            decode.records_decoded
        );
    }
    if shards_missing > 0 {
        println!(
            "store: {shards_missing} staged shard(s) missing or damaged, analyzed without them"
        );
    }
    if !health.is_complete() {
        let list: Vec<String> = health.quarantined.iter().map(usize::to_string).collect();
        println!(
            "exec: quarantined shard(s) [{}] after {} caught panic(s); report excludes them",
            list.join(", "),
            health.task_panics
        );
    }
    if dirty {
        println!("partial result: the numbers above cover exactly the surviving input");
    }
    dirty
}
