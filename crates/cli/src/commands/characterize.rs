//! `jcdn characterize` — the §4 analyses over a trace file.

use jcdn_core::characterize::{
    json_html_ratio, AvailabilityBreakdown, CacheabilityHeatmap, RequestTypeBreakdown,
    ResponseTypeBreakdown, TokenCategoryProvider, TrafficSourceBreakdown,
};
use jcdn_core::report::{availability_section, pct, TextTable};
use jcdn_ua::DeviceType;
use jcdn_workload::IndustryCategory;

use crate::args::Args;
use crate::commands::load_trace;

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let trace = load_trace(args.positional("trace path")?)?;

    let sources = TrafficSourceBreakdown::compute(&trace);
    let mut table = TextTable::new(&["Device", "Requests", "UA strings"]);
    for device in DeviceType::ALL {
        table.row(&[
            device.to_string(),
            pct(sources.request_share(device)),
            pct(sources.ua_share(device)),
        ]);
    }
    println!("traffic source (JSON requests):\n{}", table.render());
    println!("non-browser: {}\n", pct(sources.non_browser_share()));

    let requests = RequestTypeBreakdown::compute(&trace);
    println!(
        "request type: GET {}   POST-of-rest {}",
        pct(requests.download_share()),
        pct(requests.upload_share_of_rest())
    );

    let mut responses = ResponseTypeBreakdown::compute(&trace);
    println!("uncacheable JSON: {}", pct(responses.uncacheable_share()));
    for q in [0.5, 0.75] {
        if let Some(gap) = responses.json_smaller_than_html_at(q) {
            println!(
                "JSON smaller than HTML at p{}: {}",
                (q * 100.0) as u32,
                pct(gap)
            );
        }
    }
    if let Some(ratio) = json_html_ratio(&trace) {
        println!("JSON:HTML request ratio: {ratio:.2}x");
    }

    let heatmap = CacheabilityHeatmap::compute(&trace, &TokenCategoryProvider, 10);
    let mut table = TextTable::new(&["Industry", "Never", "Always", "Mean cacheable"]);
    for category in IndustryCategory::ALL {
        let Some(row) = heatmap.rows.get(&category) else {
            continue;
        };
        let total: u64 = row.iter().sum();
        table.row(&[
            category.label().to_string(),
            pct(row[0] as f64 / total.max(1) as f64),
            pct(row[9] as f64 / total.max(1) as f64),
            heatmap.row_mean(category).map(pct).unwrap_or_default(),
        ]);
    }
    println!("\ncacheability by industry:\n{}", table.render());
    println!(
        "domains never cacheable: {}   always: {}   uncategorized: {}",
        pct(heatmap.never_cacheable_share()),
        pct(heatmap.always_cacheable_share()),
        heatmap.uncategorized
    );

    let availability = AvailabilityBreakdown::compute(&trace, &TokenCategoryProvider);
    println!("\n{}", availability_section(&availability));
    Ok(())
}
