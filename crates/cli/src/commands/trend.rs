//! `jcdn trend` — the Figure 1 monthly series as CSV.

use jcdn_workload::trend::TrendModel;

use crate::args::Args;
use crate::commands::Outcome;
use crate::obs_args;

pub fn run(argv: &[String]) -> Result<Outcome, String> {
    let mut allowed = vec!["months", "seed"];
    allowed.extend_from_slice(obs_args::OBS_FLAGS);
    let args = Args::parse(argv, &allowed)?;
    let mut obs = obs_args::begin("trend", &args)?;
    let model = TrendModel {
        months: args.number("months", 42usize)?,
        seed: args.number("seed", 2016u64)?,
        ..TrendModel::default()
    };
    if model.months < 2 {
        return Err("--months must be at least 2".into());
    }
    println!("month,json_requests,html_requests,ratio,json_mean_size");
    for point in model.generate() {
        println!(
            "{},{:.0},{:.0},{:.4},{:.1}",
            point.label(),
            point.json_requests,
            point.html_requests,
            point.ratio(),
            point.json_mean_size
        );
    }
    obs.manifest.param("months", model.months);
    obs.manifest.param("seed", model.seed);
    obs.manifest
        .metrics
        .inc("trend.months", model.months as u64);
    obs.finish()?;
    Ok(Outcome::Clean)
}
