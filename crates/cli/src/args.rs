//! Tiny flag parser shared by the subcommands.
//!
//! Deliberately minimal (the workspace adds no CLI dependency): flags are
//! `--name value` pairs (plus valueless `--name` switches such as
//! `--resume`) and positional arguments, with typed accessors and an
//! unknown-flag check.

use std::collections::{HashMap, HashSet};

/// The top-level usage text.
pub const USAGE: &str = "\
jcdn — synthetic CDN traces and the IMC'19 JSON-traffic analyses

usage: jcdn <command> [options]

commands:
  generate      build a workload, simulate the CDN, write a binary trace
                  --preset short|long|tiny   (default tiny)
                  --seed N                   (default 42)
                  --scale F                  (default 1.0)
                  --out PATH                 (required)
                  --shards N                 codec-v3 shard frames (default 1)
                  --threads N                worker pool width; output is
                                             identical for any value (default 1)
                  --resume                   reuse shards a killed run already
                                             committed (same params only); the
                                             finished file is byte-identical to
                                             an uninterrupted run's
                fault injection (comma-separate multiple windows):
                  --outage DOMAIN:START:END          origin hard-down [s]
                  --degrade DOMAIN:START:END:FACTOR  slow origin (xFACTOR)
                  --flap EDGE:START:END              edge leaves rotation
                  --error-burst QUIET:BURST:ENTER:EXIT  bursty 5xx process
                resilience (defaults in parentheses):
                  --retries N                client retry budget (2)
                  --stale-grace SECS         serve-stale window (600)
                  --negative-ttl SECS        negative-cache TTL (2)
                  --origin-timeout SECS      degraded-origin timeout (3)
                  --resilience on|off        all countermeasures (on)
  inspect       summarize a trace file
                  <trace>                    positional path
  characterize  run the §4 analyses on a trace, incl. availability
                  <trace> [--shards N] [--threads N] [--resume]
                  (per-shard partial statistics merge exactly, so every
                   shard/thread combination prints the same report;
                   --resume falls back to the staged shards of an
                   unfinished generate run when the final file is absent)
  periodicity   run the §5.1 periodicity study
                  <trace> [--permutations N] [--max-bins N]
  predict       run the §5.2 prediction study (Table 3)
                  <trace> [--history N] [--k 1,5,10] [--train-percent P]
  export        convert a trace to JSONL
                  <trace> --jsonl PATH
  merge         combine several traces into one
                  <trace> <trace> [...] --out PATH
  trend         print the Figure 1 monthly series as CSV
                  [--months N] [--seed N]
  obs           inspect and compare observability artifacts
                  show <manifest.json>          pretty-print a run manifest
                  diff <a.json> <b.json>        compare manifests; any
                                                deterministic-counter
                                                divergence exits 1, perf is
                                                reported as deltas only
                  bench-diff <base> [<current>] compare BENCH_*.json files
                                                direction-aware; warn-only
                                                unless --max-regress PCT

observability (every command):
  --obs off|summary|full     stderr run summary (default off)
  --obs-out PATH             write the JSON run manifest; its \"counters\"
                             section is deterministic (byte-identical for
                             any shard/thread count), \"perf\" is wall-clock
  --window SPEC              time-series window shape over the simulated
                             clock: \"60s\", \"5m\", or sliding \"5m/1m\"
  --obs-series PATH          write the windowed counters as a JSONL stream
                             (deterministic; defaults --window to 60s)
  --obs-prom PATH            write a Prometheus text-exposition snapshot
  --obs-trace PATH           write a chrome-trace (Perfetto) span dump

exit codes:
  0  success, output is complete
  1  error (bad input, I/O failure, internal panic)
  2  usage error
  3  completed with salvage: the command finished and printed a report,
     but part of the input was lost (dropped frames/records, missing
     staged shards, or quarantined worker tasks) — the output is the
     exact analysis of what survived
";

/// Parsed arguments: flags, valueless switches, and positionals.
pub struct Args {
    flags: HashMap<String, String>,
    switches: HashSet<String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses `argv`, accepting only the given flag names.
    pub fn parse(argv: &[String], allowed: &[&str]) -> Result<Args, String> {
        Args::parse_with_switches(argv, allowed, &[])
    }

    /// Parses `argv`, accepting `allowed` as `--name value` flags and
    /// `switch_names` as valueless `--name` switches.
    pub fn parse_with_switches(
        argv: &[String],
        allowed: &[&str],
        switch_names: &[&str],
    ) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut switches = HashSet::new();
        let mut positional = Vec::new();
        let mut iter = argv.iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if switch_names.contains(&name) {
                    switches.insert(name.to_owned());
                    continue;
                }
                if !allowed.contains(&name) {
                    return Err(format!("unknown flag --{name}"));
                }
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_owned(), value.clone());
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args {
            flags,
            switches,
            positional,
        })
    }

    /// Whether a valueless switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// All positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positional
    }

    /// The sole positional argument, required.
    pub fn positional(&self, what: &str) -> Result<&str, String> {
        match self.positional.as_slice() {
            [one] => Ok(one),
            [] => Err(format!("missing {what}")),
            _ => Err(format!("expected exactly one {what}")),
        }
    }

    /// A string flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }

    /// An optional string flag.
    pub fn maybe(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("--{name} is required"))
    }

    /// A parsed numeric flag with a default.
    pub fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {raw:?}")),
        }
    }

    /// A comma-separated list of numbers with a default.
    pub fn number_list(&self, name: &str, default: &[usize]) -> Result<Vec<usize>, String> {
        match self.flags.get(name) {
            None => Ok(default.to_vec()),
            Some(raw) => raw
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse()
                        .map_err(|_| format!("--{name}: cannot parse {part:?}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(
            &argv(&["trace.jcdn", "--seed", "7", "--k", "1,5,10"]),
            &["seed", "k"],
        )
        .unwrap();
        assert_eq!(a.positional("trace").unwrap(), "trace.jcdn");
        assert_eq!(a.number::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.number_list("k", &[1]).unwrap(), vec![1, 5, 10]);
        assert_eq!(a.get_or("missing", "x"), "x");
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(Args::parse(&argv(&["--nope", "1"]), &["seed"]).is_err());
        assert!(Args::parse(&argv(&["--seed"]), &["seed"]).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let a = Args::parse_with_switches(
            &argv(&["t.jcdn", "--resume", "--seed", "7"]),
            &["seed"],
            &["resume"],
        )
        .unwrap();
        assert!(a.switch("resume"));
        assert!(!a.switch("force"));
        assert_eq!(a.number::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(a.positional("trace").unwrap(), "t.jcdn");
        // A switch name is not silently accepted as a value flag.
        assert!(Args::parse(&argv(&["--resume"]), &["seed"]).is_err());
    }

    #[test]
    fn positional_arity_errors() {
        let none = Args::parse(&argv(&[]), &[]).unwrap();
        assert!(none.positional("trace").is_err());
        let two = Args::parse(&argv(&["a", "b"]), &[]).unwrap();
        assert!(two.positional("trace").is_err());
    }

    #[test]
    fn bad_numbers_error() {
        let a = Args::parse(&argv(&["--seed", "zzz"]), &["seed"]).unwrap();
        assert!(a.number::<u64>("seed", 0).is_err());
        let a = Args::parse(&argv(&["--k", "1,x"]), &["k"]).unwrap();
        assert!(a.number_list("k", &[1]).is_err());
    }
}
