//! # jcdn — the command-line interface
//!
//! Drives the whole reproduction from a shell: generate synthetic CDN
//! traces, inspect them, run the paper's analyses, and export to JSONL.
//!
//! ```text
//! jcdn generate --preset short --seed 42 --out trace.jcdn
//! jcdn inspect trace.jcdn
//! jcdn characterize trace.jcdn
//! jcdn periodicity trace.jcdn --permutations 100
//! jcdn predict trace.jcdn --history 1 --k 1,5,10
//! jcdn export trace.jcdn --jsonl trace.jsonl
//! jcdn merge a.jcdn b.jcdn --out all.jcdn
//! jcdn trend --months 42
//! ```
//!
//! Traces written by `generate` use `jcdn-trace`'s versioned binary format
//! and can be re-analyzed without re-simulating.

#![forbid(unsafe_code)]

mod args;
mod commands;
mod fault_args;
mod obs_args;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", args::USAGE);
        return ExitCode::from(2);
    };
    // Piping into `head` closes stdout early; treat the resulting broken
    // pipe as a normal exit instead of a panic (the usual CLI convention).
    let run = || match command.as_str() {
        "generate" => commands::generate::run(rest),
        "inspect" => commands::inspect::run(rest),
        "characterize" => commands::characterize::run(rest),
        "periodicity" => commands::periodicity::run(rest),
        "predict" => commands::predict::run(rest),
        "export" => commands::export::run(rest),
        "merge" => commands::merge::run(rest),
        "trend" => commands::trend::run(rest),
        "--help" | "-h" | "help" => {
            println!("{}", args::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{}", args::USAGE)),
    };
    let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if message.contains("Broken pipe") {
                return ExitCode::SUCCESS;
            }
            std::panic::resume_unwind(payload);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
