//! # jcdn — the command-line interface
//!
//! Drives the whole reproduction from a shell: generate synthetic CDN
//! traces, inspect them, run the paper's analyses, and export to JSONL.
//!
//! ```text
//! jcdn generate --preset short --seed 42 --out trace.jcdn
//! jcdn inspect trace.jcdn
//! jcdn characterize trace.jcdn
//! jcdn periodicity trace.jcdn --permutations 100
//! jcdn predict trace.jcdn --history 1 --k 1,5,10
//! jcdn export trace.jcdn --jsonl trace.jsonl
//! jcdn merge a.jcdn b.jcdn --out all.jcdn
//! jcdn trend --months 42
//! ```
//!
//! Traces written by `generate` use `jcdn-trace`'s versioned binary format
//! and can be re-analyzed without re-simulating.

#![forbid(unsafe_code)]

mod args;
mod cache_args;
mod commands;
mod fault_args;
mod obs_args;

use std::process::ExitCode;

use commands::Outcome;

/// Exit code for a command that completed on a salvaged subset of its
/// input (see the usage text's exit-code table).
const EXIT_SALVAGED: u8 = 3;

fn main() -> ExitCode {
    // Deterministic fault injection for the chaos test suite: a plan in
    // JCDN_CHAOS (e.g. "seed=7; write-error:4; panic:characterize.shards:0")
    // installs fail points that the store and worker pool consult. Unset —
    // the production case — this is a no-op.
    if let Ok(spec) = std::env::var("JCDN_CHAOS") {
        match jcdn_chaos::FailPlan::parse(&spec) {
            Ok(plan) => {
                jcdn_chaos::install(plan);
            }
            Err(e) => {
                eprintln!("JCDN_CHAOS: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // Panics are reported through the catch_unwind boundaries below (the
    // exec pool's quarantine path, or the last-resort trap here) — the
    // default hook's raw backtrace would only duplicate that as noise,
    // and a benign broken pipe from `jcdn inspect | head` should print
    // nothing at all.
    std::panic::set_hook(Box::new(|_| {}));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", args::USAGE);
        return ExitCode::from(2);
    };
    let run = || match command.as_str() {
        "generate" => commands::generate::run(rest),
        "inspect" => commands::inspect::run(rest),
        "characterize" => commands::characterize::run(rest),
        "periodicity" => commands::periodicity::run(rest),
        "predict" => commands::predict::run(rest),
        "export" => commands::export::run(rest),
        "merge" => commands::merge::run(rest),
        "obs" => commands::obs::run(rest),
        "trend" => commands::trend::run(rest),
        "--help" | "-h" | "help" => {
            println!("{}", args::USAGE);
            Ok(Outcome::Clean)
        }
        other => Err(format!("unknown command {other:?}\n\n{}", args::USAGE)),
    };
    let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            // Piping into `head` closes stdout early; treat the resulting
            // broken pipe as a normal exit (the usual CLI convention).
            if message.contains("Broken pipe") {
                return ExitCode::SUCCESS;
            }
            // Anything else that escaped the library layers is still a
            // controlled failure: report it and exit 1 instead of aborting
            // with a raw panic trace.
            eprintln!("error: internal panic: {message}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(Outcome::Clean) => ExitCode::SUCCESS,
        Ok(Outcome::Salvaged) => ExitCode::from(EXIT_SALVAGED),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
