//! The observability flags shared by every subcommand.
//!
//! Each command opens an [`Obs`] with [`begin`] before doing any work and
//! calls [`Obs::finish`] as its last step. In between, instrumented crates
//! file spans and pool reports into the `jcdn-obs` globals, and the
//! command merges its deterministic counters into `obs.manifest.metrics`.
//! At `finish`, the manifest captures the perf side, prints the stderr
//! summary (`--obs summary|full`), and writes the requested artifacts:
//!
//! * `--obs-out <path>` — the JSON run manifest,
//! * `--obs-series <path>` — the JSONL time-series stream (windowed
//!   counters pushed by the command via [`Obs::push_series`]; requires or
//!   defaults `--window`),
//! * `--obs-prom <path>` — a Prometheus text-exposition snapshot of the
//!   manifest metrics,
//! * `--obs-trace <path>` — a chrome-trace (`chrome://tracing` /
//!   Perfetto) dump of the span ring.
//!
//! `--window <spec>` selects the window shape (`60s`, `5m`, `5m/1m` for
//! sliding). The series file is deterministic — byte-identical for any
//! shard or thread count — while the Prometheus and chrome-trace files
//! include perf gauges and wall-clock timings and are not.

use std::path::PathBuf;

use jcdn_obs::timeseries::WindowSpec;
use jcdn_obs::{ObsLevel, RunManifest};

use crate::args::Args;

/// The flag names added to every subcommand's allowlist.
pub const OBS_FLAGS: &[&str] = &[
    "obs",
    "obs-out",
    "obs-series",
    "obs-prom",
    "obs-trace",
    "window",
];

/// The window shape used when `--obs-series` is given without `--window`.
pub const DEFAULT_WINDOW: &str = "60s";

/// One command's observability session.
pub struct Obs {
    /// How much to print on stderr at the end.
    pub level: ObsLevel,
    /// Where to write the JSON manifest, when requested.
    pub out: Option<PathBuf>,
    /// Where to write the JSONL time-series stream, when requested.
    pub series_out: Option<PathBuf>,
    /// Where to write the Prometheus snapshot, when requested.
    pub prom_out: Option<PathBuf>,
    /// Where to write the chrome-trace span dump, when requested.
    pub trace_out: Option<PathBuf>,
    /// The window shape, when `--window` (or `--obs-series`) asked for one.
    pub window: Option<WindowSpec>,
    /// The manifest under construction.
    pub manifest: RunManifest,
    /// Accumulated JSONL series lines (written at finish).
    series_lines: String,
}

/// Parses the obs flags and starts the run manifest (which resets the
/// span ring and pool sink so this command's perf data is its own).
pub fn begin(command: &str, args: &Args) -> Result<Obs, String> {
    let level: ObsLevel = args.get_or("obs", "off").parse()?;
    let out = args.maybe("obs-out").map(PathBuf::from);
    let series_out = args.maybe("obs-series").map(PathBuf::from);
    let prom_out = args.maybe("obs-prom").map(PathBuf::from);
    let trace_out = args.maybe("obs-trace").map(PathBuf::from);
    let window = match args.maybe("window") {
        Some(spec) => Some(
            spec.parse::<WindowSpec>()
                .map_err(|e| format!("--window {spec}: {e}"))?,
        ),
        // A series file without an explicit window gets the default shape.
        None if series_out.is_some() => Some(
            DEFAULT_WINDOW
                .parse::<WindowSpec>()
                .map_err(|e| format!("--window {DEFAULT_WINDOW}: {e}"))?,
        ),
        None => None,
    };
    // Pool fan-outs log their one-line summaries live at summary/full.
    jcdn_obs::pool::set_logging(level != ObsLevel::Off);
    Ok(Obs {
        level,
        out,
        series_out,
        prom_out,
        trace_out,
        window,
        manifest: RunManifest::start(command),
        series_lines: String::new(),
    })
}

impl Obs {
    /// Appends one block of JSONL series lines (newline-terminated) to the
    /// stream written at finish. Order of pushes is the file order, so
    /// commands push streams in a fixed sequence to keep the file
    /// deterministic.
    pub fn push_series(&mut self, jsonl: &str) {
        self.series_lines.push_str(jsonl);
    }

    /// Finalizes the manifest: captures perf data, prints the stderr
    /// summary, and writes every requested artifact.
    pub fn finish(mut self) -> Result<(), String> {
        self.manifest.finish();
        jcdn_obs::pool::set_logging(false);
        if self.level != ObsLevel::Off {
            eprintln!("{}", self.manifest.summary_text(self.level));
        }
        if let Some(path) = &self.out {
            self.manifest
                .write(path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("wrote run manifest to {}", path.display());
        }
        if let Some(path) = &self.series_out {
            std::fs::write(path, self.series_lines.as_bytes())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("wrote time-series stream to {}", path.display());
        }
        if let Some(path) = &self.prom_out {
            std::fs::write(path, self.manifest.prometheus_text().as_bytes())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("wrote Prometheus snapshot to {}", path.display());
        }
        if let Some(path) = &self.trace_out {
            std::fs::write(path, self.manifest.chrome_trace_json().as_bytes())
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("wrote chrome trace to {}", path.display());
        }
        Ok(())
    }
}
