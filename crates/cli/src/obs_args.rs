//! The `--obs` / `--obs-out` flags shared by every subcommand.
//!
//! Each command opens an [`Obs`] with [`begin`] before doing any work and
//! calls [`Obs::finish`] as its last step. In between, instrumented crates
//! file spans and pool reports into the `jcdn-obs` globals, and the
//! command merges its deterministic counters into `obs.manifest.metrics`.
//! At `finish`, the manifest captures the perf side, prints the stderr
//! summary (`--obs summary|full`), and writes the JSON artifact
//! (`--obs-out <path>`).

use std::path::PathBuf;

use jcdn_obs::{ObsLevel, RunManifest};

use crate::args::Args;

/// The flag names added to every subcommand's allowlist.
pub const OBS_FLAGS: &[&str] = &["obs", "obs-out"];

/// One command's observability session.
pub struct Obs {
    /// How much to print on stderr at the end.
    pub level: ObsLevel,
    /// Where to write the JSON manifest, when requested.
    pub out: Option<PathBuf>,
    /// The manifest under construction.
    pub manifest: RunManifest,
}

/// Parses the obs flags and starts the run manifest (which resets the
/// span ring and pool sink so this command's perf data is its own).
pub fn begin(command: &str, args: &Args) -> Result<Obs, String> {
    let level: ObsLevel = args.get_or("obs", "off").parse()?;
    let out = args.maybe("obs-out").map(PathBuf::from);
    // Pool fan-outs log their one-line summaries live at summary/full.
    jcdn_obs::pool::set_logging(level != ObsLevel::Off);
    Ok(Obs {
        level,
        out,
        manifest: RunManifest::start(command),
    })
}

impl Obs {
    /// Finalizes the manifest: captures perf data, prints the stderr
    /// summary, and writes the JSON artifact.
    pub fn finish(mut self) -> Result<(), String> {
        self.manifest.finish();
        jcdn_obs::pool::set_logging(false);
        if self.level != ObsLevel::Off {
            eprintln!("{}", self.manifest.summary_text(self.level));
        }
        if let Some(path) = &self.out {
            self.manifest
                .write(path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            eprintln!("wrote run manifest to {}", path.display());
        }
        Ok(())
    }
}
