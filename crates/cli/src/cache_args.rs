//! Parsing of the cache-hierarchy flags shared by `generate` and
//! `characterize`.
//!
//! * `--cache-tier NAME:CAPACITY[,NAME:CAPACITY...]` — the tier stack,
//!   nearest first: the first entry is the per-edge tier, the rest are
//!   shared tiers in edge → origin order (`regional`, `shield`, …).
//!   Capacities take binary suffixes: `64M`, `1G`, `512K`, or plain bytes.
//! * `--cache-policy POLICY` — one eviction policy for every tier
//!   (`lru`, `lfu`, `slru`, `tinylfu`, `s3fifo`), or a comma list of
//!   `NAME:POLICY` pairs naming tiers from `--cache-tier`.
//! * `--cache-placement everywhere|copy-down` — where a fetched object is
//!   copied on the way back (leave-copy-everywhere vs. copy one level
//!   down per hit).
//! * `--cache-sync SECS` — the shared-tier synchronization epoch (see
//!   DESIGN.md §14); defaults to 1 simulated second.

use jcdn_cdnsim::{CacheHierarchy, Placement, PolicyKind, SimConfig, SimDuration, TierSpec};

use crate::args::Args;

/// The flag names this module consumes; include them in `Args::parse`.
pub const CACHE_FLAGS: &[&str] = &[
    "cache-tier",
    "cache-policy",
    "cache-placement",
    "cache-sync",
];

/// Builds the cache hierarchy from the parsed flags. Returns `Ok(None)`
/// when no cache flag was given — the simulator keeps its default
/// single-tier LRU edge.
pub fn hierarchy(args: &Args) -> Result<Option<CacheHierarchy>, String> {
    let tier_spec = args.get_or("cache-tier", "");
    let policy_spec = args.get_or("cache-policy", "");
    let placement_spec = args.get_or("cache-placement", "");
    let sync_spec = args.get_or("cache-sync", "");
    if tier_spec.is_empty()
        && policy_spec.is_empty()
        && placement_spec.is_empty()
        && sync_spec.is_empty()
    {
        return Ok(None);
    }

    let mut tiers: Vec<TierSpec> = Vec::new();
    for spec in specs(tier_spec) {
        let parts: Vec<&str> = spec.split(':').collect();
        let [name, capacity] = parts[..] else {
            return Err(format!("--cache-tier: expected NAME:CAPACITY in {spec:?}"));
        };
        if name.is_empty() {
            return Err("--cache-tier: tier name must not be empty".into());
        }
        if tiers.iter().any(|t| t.name == name) {
            return Err(format!("--cache-tier: duplicate tier name {name:?}"));
        }
        tiers.push(TierSpec::lru(name, parse_capacity(capacity)?));
    }
    if tiers.is_empty() {
        // Policy/placement flags without --cache-tier reshape the default
        // single edge tier.
        tiers.push(TierSpec::lru("edge", SimConfig::default().cache_capacity));
    }

    // One bare policy applies everywhere; NAME:POLICY pairs target tiers.
    for spec in specs(policy_spec) {
        match spec.split_once(':') {
            None => {
                let policy = parse_policy(spec)?;
                for tier in &mut tiers {
                    tier.policy = policy;
                }
            }
            Some((name, policy)) => {
                let policy = parse_policy(policy)?;
                let tier = tiers
                    .iter_mut()
                    .find(|t| t.name == name)
                    .ok_or_else(|| format!("--cache-policy: no tier named {name:?}"))?;
                tier.policy = policy;
            }
        }
    }

    let mut tiers = tiers.into_iter();
    let edge = match tiers.next() {
        Some(t) => t,
        None => TierSpec::lru("edge", SimConfig::default().cache_capacity),
    };
    let mut h = CacheHierarchy {
        edge,
        shared: tiers.collect(),
        placement: Placement::CopyEverywhere,
        sync_interval: CacheHierarchy::DEFAULT_SYNC_INTERVAL,
    };
    if !placement_spec.is_empty() {
        h.placement =
            Placement::parse(placement_spec).map_err(|e| format!("--cache-placement: {e}"))?;
    }
    if !sync_spec.is_empty() {
        let secs: f64 = sync_spec
            .parse()
            .map_err(|_| format!("--cache-sync: bad seconds {sync_spec:?}"))?;
        if !(secs > 0.0 && secs.is_finite()) {
            return Err("--cache-sync must be positive".into());
        }
        h.sync_interval = SimDuration::from_micros((secs * 1e6) as u64);
    }
    h.validate().map_err(|e| format!("--cache-tier: {e}"))?;
    Ok(Some(h))
}

/// One line summarizing the configured hierarchy for run footers.
pub fn describe(h: &CacheHierarchy) -> String {
    let mut parts = vec![format!(
        "{}={} ({})",
        h.edge.name,
        fmt_capacity(h.edge.capacity),
        h.edge.policy.label()
    )];
    for tier in &h.shared {
        parts.push(format!(
            "{}={} ({})",
            tier.name,
            fmt_capacity(tier.capacity),
            tier.policy.label()
        ));
    }
    format!("{} · placement {}", parts.join(" → "), h.placement.label())
}

fn parse_policy(token: &str) -> Result<PolicyKind, String> {
    PolicyKind::parse(token).map_err(|e| format!("--cache-policy: {e}"))
}

/// Parses `64M`-style capacities: plain bytes, or a binary K/M/G suffix.
fn parse_capacity(token: &str) -> Result<u64, String> {
    let token = token.trim();
    let (digits, shift) = match token.chars().last() {
        Some('K') | Some('k') => (&token[..token.len() - 1], 10),
        Some('M') | Some('m') => (&token[..token.len() - 1], 20),
        Some('G') | Some('g') => (&token[..token.len() - 1], 30),
        _ => (token, 0),
    };
    let base: u64 = digits
        .parse()
        .map_err(|_| format!("--cache-tier: bad capacity {token:?}"))?;
    base.checked_shl(shift)
        .filter(|&v| v > 0)
        .ok_or_else(|| format!("--cache-tier: capacity {token:?} out of range"))
}

fn fmt_capacity(bytes: u64) -> String {
    for (shift, suffix) in [(30, "G"), (20, "M"), (10, "K")] {
        if bytes >= 1 << shift && bytes.is_multiple_of(1 << shift) {
            return format!("{}{suffix}", bytes >> shift);
        }
    }
    format!("{bytes}B")
}

fn specs(raw: &str) -> impl Iterator<Item = &str> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        Args::parse(&argv, CACHE_FLAGS).unwrap()
    }

    #[test]
    fn no_flags_means_no_hierarchy() {
        assert!(hierarchy(&parse(&[])).unwrap().is_none());
    }

    #[test]
    fn parses_a_three_tier_stack_with_mixed_policies() {
        let args = parse(&[
            "--cache-tier",
            "edge:64M,regional:256M,shield:1G",
            "--cache-policy",
            "slru,shield:s3fifo",
            "--cache-placement",
            "copy-down",
            "--cache-sync",
            "0.5",
        ]);
        let h = hierarchy(&args).unwrap().unwrap();
        assert_eq!(h.edge.capacity, 64 << 20);
        assert_eq!(h.edge.policy, PolicyKind::Slru);
        assert_eq!(h.shared.len(), 2);
        assert_eq!(h.shared[0].name, "regional");
        assert_eq!(h.shared[0].policy, PolicyKind::Slru);
        assert_eq!(h.shared[1].capacity, 1 << 30);
        assert_eq!(h.shared[1].policy, PolicyKind::S3Fifo);
        assert_eq!(h.placement, Placement::CopyDown);
        assert_eq!(h.sync_interval, SimDuration::from_micros(500_000));
        let line = describe(&h);
        assert!(line.contains("edge=64M (slru)"), "{line}");
        assert!(line.contains("copy-down"), "{line}");
    }

    #[test]
    fn bare_policy_without_tiers_reshapes_the_default_edge() {
        let h = hierarchy(&parse(&["--cache-policy", "tinylfu"]))
            .unwrap()
            .unwrap();
        assert_eq!(h.edge.capacity, SimConfig::default().cache_capacity);
        assert_eq!(h.edge.policy, PolicyKind::TinyLfu);
        assert!(h.shared.is_empty());
    }

    #[test]
    fn rejects_malformed_flags() {
        for argv in [
            ["--cache-tier", "edge"].as_slice(),  // missing capacity
            &["--cache-tier", "edge:64Q"],        // bad suffix
            &["--cache-tier", "edge:0"],          // zero capacity
            &["--cache-tier", "edge:1M,edge:2M"], // duplicate name
            &["--cache-policy", "mru"],           // unknown policy
            &["--cache-policy", "shield:lru"],    // unknown tier
            &["--cache-tier", "edge:1M", "--cache-sync", "0"], // zero epoch
            &["--cache-placement", "sideways"],   // unknown placement
        ] {
            let args = parse(argv);
            assert!(hierarchy(&args).is_err(), "should reject {argv:?}");
        }
    }
}
