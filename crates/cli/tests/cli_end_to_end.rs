//! End-to-end tests of the `jcdn` binary: generate → inspect →
//! characterize → predict → export → merge, all against real subprocess
//! invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn jcdn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jcdn"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jcdn-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn generate_inspect_characterize_round_trip() {
    let dir = tempdir("gen");
    let trace = dir.join("t.jcdn");
    let trace_str = trace.to_str().unwrap();

    let out = jcdn(&[
        "generate", "--preset", "tiny", "--seed", "11", "--scale", "0.2", "--out", trace_str,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = jcdn(&["inspect", trace_str]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("records:"), "{stdout}");
    assert!(stdout.contains("application/json"), "{stdout}");

    let out = jcdn(&["characterize", trace_str]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Mobile"), "{stdout}");
    assert!(stdout.contains("uncacheable JSON"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_export_and_merge() {
    let dir = tempdir("pem");
    let a = dir.join("a.jcdn");
    let b = dir.join("b.jcdn");
    let merged = dir.join("ab.jcdn");
    let jsonl = dir.join("a.jsonl");
    for (path, seed) in [(&a, "21"), (&b, "22")] {
        let out = jcdn(&[
            "generate",
            "--preset",
            "tiny",
            "--seed",
            seed,
            "--scale",
            "0.2",
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(out.status.success());
    }

    let out = jcdn(&["predict", a.to_str().unwrap(), "--k", "1,5"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Clustered URLs"), "{stdout}");

    let out = jcdn(&[
        "export",
        a.to_str().unwrap(),
        "--jsonl",
        jsonl.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let first_line = std::fs::read_to_string(&jsonl)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_owned();
    assert!(first_line.starts_with('{') && first_line.contains("\"url\""));

    let out = jcdn(&[
        "merge",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--out",
        merged.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The merged trace must contain both inputs' records.
    let ta = jcdn_trace::codec::read_file(&a).unwrap();
    let tb = jcdn_trace::codec::read_file(&b).unwrap();
    let tm = jcdn_trace::codec::read_file(&merged).unwrap();
    assert_eq!(tm.len(), ta.len() + tb.len());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trend_emits_csv() {
    let out = jcdn(&["trend", "--months", "6"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 7, "header + 6 months");
    assert!(lines[0].starts_with("month,json_requests"));
    assert!(lines[1].starts_with("2016-01,"));
}

#[test]
fn errors_are_reported_not_panicked() {
    let out = jcdn(&["inspect", "/nonexistent/trace.jcdn"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "{stderr}");

    let out = jcdn(&["frobnicate"]);
    assert!(!out.status.success());

    let out = jcdn(&["generate", "--preset", "nope", "--out", "/tmp/x.jcdn"]);
    assert!(!out.status.success());

    let out = jcdn(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
}
