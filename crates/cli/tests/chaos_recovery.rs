//! Chaos-recovery suite: the `jcdn` binary under injected faults.
//!
//! Each test drives a real subprocess with a `JCDN_CHAOS` fail-point plan
//! (see `jcdn-chaos`) and asserts the crash-safety contract from DESIGN
//! §13: injected write errors, torn writes, bit flips, and worker panics
//! never abort the process; `--resume` after a mid-generate failure
//! produces output byte-identical to an uninterrupted run; and anything
//! that loses input downgrades the exit code to 3 (completed with
//! salvage) with an explicit footer.
//!
//! `JCDN_TEST_SHARDS` sets the shard count (default 4; CI runs 1 and 8).
//! When `JCDN_CHAOS_ARTIFACTS` names a directory, every invocation also
//! writes its obs run manifest there for upload.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn shards() -> usize {
    std::env::var("JCDN_TEST_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// Durable-write ordinal of shard `i` in a fresh (non-resumed) generate:
/// open writes the index (1), the table prologue costs two writes (2, 3),
/// and each shard costs two more (frame, then index).
fn shard_write_ordinal(i: usize) -> usize {
    2 * i + 4
}

/// Durable-write ordinal of the final-file write in a fresh generate.
fn final_write_ordinal(n_shards: usize) -> usize {
    2 * n_shards + 4
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jcdn-chaos-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Runs the binary with an optional chaos plan; when
/// `JCDN_CHAOS_ARTIFACTS` is set, the run's obs manifest lands there
/// under `<tag>.json`.
fn jcdn(tag: &str, args: &[&str], chaos: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_jcdn"));
    cmd.args(args);
    cmd.env_remove("JCDN_CHAOS");
    if let Some(spec) = chaos {
        cmd.env("JCDN_CHAOS", spec);
    }
    let artifact;
    if let Ok(dir) = std::env::var("JCDN_CHAOS_ARTIFACTS") {
        std::fs::create_dir_all(&dir).expect("artifact dir");
        artifact = format!("{dir}/{tag}-shards{}.json", shards());
        cmd.args(["--obs-out", &artifact]);
    }
    cmd.output().expect("binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// No injected fault may escalate to a process abort: a caught panic is
/// reported through the salvage path, never through the CLI's
/// last-resort panic trap.
fn assert_no_abort(out: &Output) {
    let err = stderr_of(out);
    assert!(!err.contains("internal panic"), "process aborted: {err}");
}

fn generate_args<'a>(out: &'a str, n_shards: &'a str, extra: &[&'a str]) -> Vec<&'a str> {
    let mut args = vec![
        "generate", "--preset", "tiny", "--seed", "5", "--scale", "0.2", "--shards", n_shards,
        "--out", out,
    ];
    args.extend_from_slice(extra);
    args
}

/// Clean baseline run in `dir`: returns the trace bytes and the
/// characterize stdout every recovery path must reproduce exactly.
fn baseline(tag: &str, dir: &Path) -> (Vec<u8>, String) {
    let trace = dir.join("clean.jcdn");
    let trace_str = trace.to_str().unwrap();
    let n = shards().to_string();
    let out = jcdn(
        &format!("{tag}-baseline-gen"),
        &generate_args(trace_str, &n, &[]),
        None,
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    let bytes = std::fs::read(&trace).expect("baseline trace");
    let out = jcdn(
        &format!("{tag}-baseline-char"),
        &["characterize", trace_str],
        None,
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    (bytes, stdout_of(&out))
}

#[test]
fn write_error_mid_generate_then_resume_is_byte_identical() {
    let dir = tempdir("werr");
    let (clean_bytes, clean_report) = baseline("werr", &dir);
    let trace = dir.join("t.jcdn");
    let trace_str = trace.to_str().unwrap();
    let n = shards().to_string();

    // Fail the middle shard's durable write: the run dies with the
    // earlier shards committed and verified in the staging area.
    let failed_shard = shards() / 2;
    let spec = format!("write-error:{}", shard_write_ordinal(failed_shard));
    let out = jcdn("werr-kill", &generate_args(trace_str, &n, &[]), Some(&spec));
    assert!(
        !out.status.success(),
        "injected write error must fail the run"
    );
    assert_no_abort(&out);
    assert!(
        !trace.exists(),
        "no final file may appear from a failed run"
    );

    // Resume recomputes only what is missing and reuses the rest.
    let out = jcdn(
        "werr-resume",
        &generate_args(trace_str, &n, &["--resume"]),
        None,
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    if failed_shard > 0 {
        assert!(
            stderr_of(&out).contains(&format!("resume: reused {failed_shard} committed shard(s)")),
            "{}",
            stderr_of(&out)
        );
    }
    assert_eq!(
        std::fs::read(&trace).expect("resumed trace"),
        clean_bytes,
        "resumed output must be byte-identical to an uninterrupted run"
    );
    let out = jcdn("werr-char", &["characterize", trace_str], None);
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert_eq!(stdout_of(&out), clean_report);

    // A second --resume sees the completed index and leaves the
    // published file untouched.
    let out = jcdn(
        "werr-noop",
        &generate_args(trace_str, &n, &["--resume"]),
        None,
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("already complete"),
        "{}",
        stderr_of(&out)
    );
    assert_eq!(std::fs::read(&trace).expect("trace"), clean_bytes);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_shard_write_is_caught_at_finalize_and_resume_heals() {
    let dir = tempdir("torn");
    let (clean_bytes, _) = baseline("torn", &dir);
    let trace = dir.join("t.jcdn");
    let trace_str = trace.to_str().unwrap();
    let n = shards().to_string();

    // Shard 0's frame lands truncated but *reports success* — a torn
    // write. The CRC check at finalize must refuse to publish it.
    let spec = format!("seed=3;truncate:{}:*", shard_write_ordinal(0));
    let out = jcdn("torn-kill", &generate_args(trace_str, &n, &[]), Some(&spec));
    assert!(
        !out.status.success(),
        "torn staged shard must fail finalize"
    );
    assert_no_abort(&out);
    assert!(
        stderr_of(&out).contains("missing or damaged"),
        "{}",
        stderr_of(&out)
    );
    assert!(!trace.exists());

    let out = jcdn(
        "torn-resume",
        &generate_args(trace_str, &n, &["--resume"]),
        None,
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert_eq!(std::fs::read(&trace).expect("resumed trace"), clean_bytes);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_shard_write_is_caught_at_finalize_and_resume_heals() {
    let dir = tempdir("flip");
    let (clean_bytes, _) = baseline("flip", &dir);
    let trace = dir.join("t.jcdn");
    let trace_str = trace.to_str().unwrap();
    let n = shards().to_string();

    // Silent single-bit media corruption of a committed shard: the write
    // succeeds, the bytes are wrong, the index CRC catches it.
    let last = shards() - 1;
    let spec = format!("seed=9;bitflip:{}:*", shard_write_ordinal(last));
    let out = jcdn("flip-kill", &generate_args(trace_str, &n, &[]), Some(&spec));
    assert!(
        !out.status.success(),
        "bit-flipped staged shard must fail finalize"
    );
    assert_no_abort(&out);
    assert!(!trace.exists());

    let out = jcdn(
        "flip-resume",
        &generate_args(trace_str, &n, &["--resume"]),
        None,
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert_eq!(std::fs::read(&trace).expect("resumed trace"), clean_bytes);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn characterize_resume_analyzes_staging_when_final_write_failed() {
    let dir = tempdir("stag");
    let (_, clean_report) = baseline("stag", &dir);
    let trace = dir.join("t.jcdn");
    let trace_str = trace.to_str().unwrap();
    let n = shards().to_string();

    // Every shard commits; the final-file write itself fails. The staged
    // shards carry the complete trace.
    let spec = format!("write-error:{}", final_write_ordinal(shards()));
    let out = jcdn("stag-kill", &generate_args(trace_str, &n, &[]), Some(&spec));
    assert!(!out.status.success());
    assert_no_abort(&out);
    assert!(!trace.exists());

    let out = jcdn("stag-char", &["characterize", trace_str, "--resume"], None);
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("resume: final file absent"),
        "{}",
        stderr_of(&out)
    );
    assert_eq!(
        stdout_of(&out),
        clean_report,
        "staged shards must characterize identically to the final file"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_final_file_salvages_with_exit_code_3() {
    let dir = tempdir("corr");
    let (clean_bytes, _) = baseline("corr", &dir);

    // Bit flip inside the last frame: the tolerant decode drops exactly
    // that frame, reports the loss, and exits 3 — never 0, never a crash.
    let flipped = dir.join("flipped.jcdn");
    let mut bytes = clean_bytes.clone();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&flipped, &bytes).expect("write corrupted copy");
    let out = jcdn(
        "corr-flip",
        &["characterize", flipped.to_str().unwrap()],
        None,
    );
    assert_eq!(out.status.code(), Some(3), "{}", stderr_of(&out));
    assert_no_abort(&out);
    let report = stdout_of(&out);
    assert!(report.contains("decode: dropped"), "{report}");
    assert!(report.contains("CRC-failed frame(s)"), "{report}");
    assert!(report.contains("first error at byte"), "{report}");
    assert!(report.contains("partial result:"), "{report}");

    // Truncation mid-frame: same contract, counted as a truncated frame.
    let cut = dir.join("cut.jcdn");
    std::fs::write(&cut, &clean_bytes[..clean_bytes.len() - 7]).expect("write truncated copy");
    let out = jcdn("corr-cut", &["characterize", cut.to_str().unwrap()], None);
    assert_eq!(out.status.code(), Some(3), "{}", stderr_of(&out));
    assert_no_abort(&out);
    let report = stdout_of(&out);
    assert!(report.contains("truncated frame(s)"), "{report}");
    assert!(report.contains("partial result:"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_worker_panic_recovers_with_identical_report() {
    let dir = tempdir("ponce");
    let (_, clean_report) = baseline("ponce", &dir);
    let trace = dir.join("clean.jcdn");
    let trace_str = trace.to_str().unwrap();

    // The first attempt at shard 0 panics; the pool's sequential retry
    // succeeds. The run must exit 0 with a byte-identical report — the
    // recovery is invisible apart from the exec counters.
    let out = jcdn(
        "ponce-char",
        &["characterize", trace_str, "--threads", "2"],
        Some("panic:characterize.shards:0"),
    );
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert_no_abort(&out);
    assert_eq!(
        stdout_of(&out),
        clean_report,
        "a recovered transient panic must not change the report"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistent_worker_panic_quarantines_with_exit_code_3() {
    let dir = tempdir("palw");
    let (_, _) = baseline("palw", &dir);
    let trace = dir.join("clean.jcdn");
    let trace_str = trace.to_str().unwrap();

    // Shard 0 panics on the first attempt *and* on the retry: it is
    // quarantined, the surviving shards still report, and the footer
    // names the exclusion.
    let out = jcdn(
        "palw-char",
        &["characterize", trace_str, "--threads", "2"],
        Some("panic-always:characterize.shards:0"),
    );
    assert_eq!(out.status.code(), Some(3), "{}", stderr_of(&out));
    assert_no_abort(&out);
    let report = stdout_of(&out);
    assert!(
        report.contains("exec: quarantined shard(s) [0]"),
        "{report}"
    );
    assert!(report.contains("partial result:"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_chaos_spec_is_a_usage_error() {
    let out = jcdn("badspec", &["inspect", "nope.jcdn"], Some("explode:1"));
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(
        stderr_of(&out).contains("unknown chaos point kind"),
        "{}",
        stderr_of(&out)
    );
}
