//! End-to-end tests of the observability artifacts: `jcdn generate`'s
//! JSONL time-series stream and Prometheus snapshot, the determinism of
//! the series across shard/thread counts, and the `jcdn obs` inspection
//! verbs (show / diff / bench-diff) with their exit-code contract.

use std::path::PathBuf;
use std::process::{Command, Output};

fn jcdn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jcdn"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jcdn-obs-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn generate_emits_valid_series_and_prometheus_snapshot() {
    let dir = tempdir("series");
    let trace = dir.join("t.jcdn");
    let series = dir.join("series.jsonl");
    let prom = dir.join("prom.txt");
    let chrome = dir.join("trace.json");

    let out = jcdn(&[
        "generate",
        "--preset",
        "tiny",
        "--seed",
        "31",
        "--scale",
        "0.2",
        "--out",
        trace.to_str().unwrap(),
        "--window",
        "60s",
        "--obs-series",
        series.to_str().unwrap(),
        "--obs-prom",
        prom.to_str().unwrap(),
        "--obs-trace",
        chrome.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The JSONL stream: every line parses as one JSON object carrying the
    // stream tag, the window bounds, and a counters object; the workload
    // stream precedes the sim stream.
    let jsonl = read(&series);
    let mut streams_seen = Vec::new();
    for line in jsonl.lines() {
        let row = jcdn_json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let stream = row
            .get("stream")
            .and_then(jcdn_json::Value::as_str)
            .expect("stream tag")
            .to_string();
        let start = row.get("start_us").and_then(jcdn_json::Value::as_u64);
        let end = row.get("end_us").and_then(jcdn_json::Value::as_u64);
        assert!(start.is_some() && end > start, "window bounds in {line}");
        assert!(
            row.get("counters")
                .and_then(jcdn_json::Value::as_object)
                .is_some_and(|c| !c.is_empty()),
            "non-empty counters in {line}"
        );
        if streams_seen.last() != Some(&stream) {
            streams_seen.push(stream);
        }
    }
    assert_eq!(
        streams_seen,
        ["workload", "sim"],
        "fixed stream order in the file"
    );

    // The Prometheus snapshot: typed families, jcdn_-prefixed names, and
    // the windowed counter totals present as counters.
    let prom_text = read(&prom);
    assert!(
        prom_text.contains("# TYPE jcdn_sim_requests counter"),
        "{prom_text}"
    );
    assert!(
        prom_text.contains("jcdn_sim_requests{edge=\"0\"}"),
        "{prom_text}"
    );
    assert!(
        prom_text.contains("# TYPE jcdn_ts_windows_sim counter"),
        "{prom_text}"
    );
    for line in prom_text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("name value");
        assert!(value.parse::<u64>().is_ok(), "numeric sample: {line}");
    }

    // The chrome trace: a JSON object with traceEvents and the
    // spans_dropped footer.
    let trace_json = jcdn_json::parse(&read(&chrome)).expect("chrome trace parses");
    assert!(trace_json
        .get("traceEvents")
        .and_then(jcdn_json::Value::as_array)
        .is_some_and(|events| !events.is_empty()));
    assert!(trace_json.pointer("/otherData/spans_dropped").is_some());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn series_stream_is_identical_across_shard_and_thread_counts() {
    let dir = tempdir("invariance");
    let mut rendered = Vec::new();
    for (shards, threads) in [("1", "1"), ("8", "4")] {
        let trace = dir.join(format!("t{shards}x{threads}.jcdn"));
        let series = dir.join(format!("s{shards}x{threads}.jsonl"));
        let out = jcdn(&[
            "generate",
            "--preset",
            "tiny",
            "--seed",
            "31",
            "--scale",
            "0.2",
            "--shards",
            shards,
            "--threads",
            threads,
            "--out",
            trace.to_str().unwrap(),
            "--window",
            "60s",
            "--obs-series",
            series.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        rendered.push(read(&series));

        // The §4 stream from characterize, re-partitioned the same way.
        let s4 = dir.join(format!("s4-{shards}x{threads}.jsonl"));
        let out = jcdn(&[
            "characterize",
            trace.to_str().unwrap(),
            "--shards",
            shards,
            "--threads",
            threads,
            "--window",
            "60s",
            "--obs-series",
            s4.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        rendered.push(read(&s4));
    }
    assert_eq!(rendered[0], rendered[2], "generate series diverged");
    assert_eq!(rendered[1], rendered[3], "section4 series diverged");
    assert!(rendered[1].contains("\"stream\":\"section4\""));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_diff_exit_codes_follow_the_determinism_contract() {
    let dir = tempdir("diff");
    let mut manifests = Vec::new();
    for (tag, seed) in [("a", "31"), ("b", "31"), ("c", "32")] {
        let trace = dir.join(format!("{tag}.jcdn"));
        let manifest = dir.join(format!("{tag}.json"));
        let out = jcdn(&[
            "generate",
            "--preset",
            "tiny",
            "--seed",
            seed,
            "--scale",
            "0.2",
            "--out",
            trace.to_str().unwrap(),
            "--obs-out",
            manifest.to_str().unwrap(),
        ]);
        assert!(out.status.success());
        manifests.push(manifest);
    }

    // Same seed ⇒ identical counters ⇒ exit 0, perf reported as deltas.
    let out = jcdn(&[
        "obs",
        "diff",
        manifests[0].to_str().unwrap(),
        manifests[1].to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("counters identical"), "{stdout}");
    assert!(stdout.contains("perf wall_us"), "{stdout}");

    // Different seed ⇒ counter divergence ⇒ exit 1 with the keys listed.
    let out = jcdn(&[
        "obs",
        "diff",
        manifests[0].to_str().unwrap(),
        manifests[2].to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("DIVERGED"), "{stdout}");
    assert!(stdout.contains("counter sim."), "{stdout}");

    // show pretty-prints the manifest.
    let out = jcdn(&["obs", "show", manifests[0].to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("command:  generate"), "{stdout}");
    assert!(stdout.contains("deterministic"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_bench_diff_flags_direction_aware_regressions() {
    let dir = tempdir("bench");
    let base = dir.join("base.json");
    let slower = dir.join("slower.json");
    let faster = dir.join("faster.json");
    std::fs::write(
        &base,
        r#"{"benchmark":"x","seed":1,"characterize_us":100000,"characterize_records_per_sec":2000,"peak_rss_kb":1000}"#,
    )
    .expect("write");
    // Slower: timing up, rate down, RSS up — all three directions regress.
    std::fs::write(
        &slower,
        r#"{"benchmark":"x","seed":1,"characterize_us":150000,"characterize_records_per_sec":1500,"peak_rss_kb":1400}"#,
    )
    .expect("write");
    // Faster on every axis: improvements are never regressions.
    std::fs::write(
        &faster,
        r#"{"benchmark":"x","seed":1,"characterize_us":50000,"characterize_records_per_sec":4000,"peak_rss_kb":900}"#,
    )
    .expect("write");

    // Warn-only by default, even with regressions.
    let out = jcdn(&[
        "obs",
        "bench-diff",
        base.to_str().unwrap(),
        slower.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3 metric(s) regressed"), "{stdout}");

    // --max-regress turns the same comparison into a gate.
    let out = jcdn(&[
        "obs",
        "bench-diff",
        base.to_str().unwrap(),
        slower.to_str().unwrap(),
        "--max-regress",
        "10",
    ]);
    assert_eq!(out.status.code(), Some(1));

    // Improvements pass even under a tight gate.
    let out = jcdn(&[
        "obs",
        "bench-diff",
        base.to_str().unwrap(),
        faster.to_str().unwrap(),
        "--max-regress",
        "1",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no regressions"), "{stdout}");

    // Single-file mode prints the baseline and exits 0 (the warn-only CI
    // step with no fresh benchmark to compare).
    let out = jcdn(&["obs", "bench-diff", base.to_str().unwrap()]);
    assert!(out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}
