//! Model-based property tests for the edge cache: the LRU must agree with
//! a naive reference implementation on every operation sequence.

use jcdn_cdnsim::cache::{Lookup, LruCache};
use jcdn_cdnsim::{SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Get(u8),
    Insert(u8, u16),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(Op::Get),
        (0u8..16, 1u16..400).prop_map(|(k, s)| Op::Insert(k, s)),
        (0u8..16).prop_map(Op::Remove),
    ]
}

/// Naive reference: a vector in recency order (front = most recent).
#[derive(Default)]
struct Reference {
    entries: Vec<(u8, u64)>, // (key, size), front = MRU
    capacity: u64,
}

impl Reference {
    fn used(&self) -> u64 {
        self.entries.iter().map(|&(_, s)| s).sum()
    }

    fn get(&mut self, key: u8) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: u8, size: u64) -> bool {
        if size > self.capacity {
            return false;
        }
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (key, size));
        while self.used() > self.capacity {
            self.entries.pop();
        }
        true
    }

    fn remove(&mut self, key: u8) -> bool {
        match self.entries.iter().position(|&(k, _)| k == key) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }
}

proptest! {
    #[test]
    fn lru_agrees_with_reference(
        ops in prop::collection::vec(arb_op(), 0..200),
        capacity in 100u64..2000,
    ) {
        // Long TTL so expiry never interferes; time advances per op so
        // recency updates are observable.
        let ttl = SimDuration::from_secs(1 << 30);
        let mut lru: LruCache<u8> = LruCache::new(capacity);
        let mut reference = Reference { capacity, ..Reference::default() };
        for (i, op) in ops.iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            match *op {
                Op::Get(k) => {
                    prop_assert_eq!(lru.get(k, now), reference.get(k), "get({}) at step {}", k, i);
                }
                Op::Insert(k, s) => {
                    prop_assert_eq!(
                        lru.insert(k, u64::from(s), ttl, now, false),
                        reference.insert(k, u64::from(s)),
                        "insert({}, {}) at step {}", k, s, i
                    );
                }
                Op::Remove(k) => {
                    prop_assert_eq!(lru.remove(k), reference.remove(k), "remove({}) at step {}", k, i);
                }
            }
            // Invariants after every op.
            prop_assert_eq!(lru.len(), reference.entries.len());
            prop_assert_eq!(lru.used_bytes(), reference.used());
            prop_assert!(lru.used_bytes() <= capacity);
            for &(k, _) in &reference.entries {
                prop_assert!(lru.peek(k, SimTime::from_secs(i as u64)));
            }
        }
    }

    #[test]
    fn expired_entries_never_hit(
        ttl_secs in 1u64..100,
        probe_offset in 0u64..200,
    ) {
        let mut lru: LruCache<u8> = LruCache::new(1000);
        lru.insert(1, 10, SimDuration::from_secs(ttl_secs), SimTime::ZERO, false);
        let hit = lru.get(1, SimTime::from_secs(probe_offset));
        prop_assert_eq!(hit, probe_offset < ttl_secs);
    }

    // The grace-aware lookup partitions time into exactly three regimes:
    // `Fresh` before the TTL, `Stale` from TTL to TTL+grace (entry stays
    // resident), and `Miss` past the grace window (entry is dropped, and
    // every later lookup misses too — even one back inside the window).
    #[test]
    fn grace_lookup_matches_the_three_regimes(
        ttl_secs in 1u64..50,
        grace_secs in 0u64..50,
        probe_offset in 0u64..200,
    ) {
        let ttl = SimDuration::from_secs(ttl_secs);
        let grace = SimDuration::from_secs(grace_secs);
        let mut lru: LruCache<u8> = LruCache::new(1000);
        lru.insert(1, 10, ttl, SimTime::ZERO, false);
        let now = SimTime::from_secs(probe_offset);
        let expected = if probe_offset < ttl_secs {
            Lookup::Fresh
        } else if probe_offset < ttl_secs + grace_secs {
            Lookup::Stale
        } else {
            Lookup::Miss
        };
        prop_assert_eq!(lru.get_with_grace(1, now, grace), expected);
        match expected {
            // Fresh and stale entries stay resident and keep answering the
            // same way at the same instant.
            Lookup::Fresh | Lookup::Stale => {
                prop_assert_eq!(lru.len(), 1);
                prop_assert_eq!(lru.get_with_grace(1, now, grace), expected);
            }
            // A miss past the window evicts: the entry is gone for good,
            // even for a probe back inside the grace window.
            Lookup::Miss => {
                prop_assert_eq!(lru.len(), 0);
                prop_assert_eq!(
                    lru.get_with_grace(1, SimTime::from_secs(ttl_secs), grace),
                    Lookup::Miss
                );
            }
        }
    }

    // With mixed entry sizes, eviction strictly follows recency order:
    // inserting one oversized object evicts exactly the least-recent
    // entries needed to fit it, never a recently touched one.
    #[test]
    fn mixed_size_evictions_follow_recency_order(
        sizes in prop::collection::vec(1u64..120, 4..12),
        touched in prop::collection::vec(any::<prop::sample::Index>(), 1..4),
    ) {
        let ttl = SimDuration::from_secs(1 << 30);
        let capacity: u64 = sizes.iter().sum();
        let mut lru: LruCache<u8> = LruCache::new(capacity);
        for (i, &s) in sizes.iter().enumerate() {
            lru.insert(i as u8, s, ttl, SimTime::from_secs(i as u64), false);
        }
        // Touch a few entries to scramble recency away from insert order.
        let t0 = sizes.len() as u64;
        let mut order: Vec<u8> = (0..sizes.len() as u8).collect(); // LRU → MRU
        for (j, idx) in touched.iter().enumerate() {
            let k = idx.index(sizes.len()) as u8;
            lru.get(k, SimTime::from_secs(t0 + j as u64));
            order.retain(|&o| o != k);
            order.push(k);
        }
        // Insert a new object that needs `need` bytes freed; the reference
        // says exactly the least-recent prefix of `order` must go.
        let need = capacity / 2 + 1;
        let now = SimTime::from_secs(t0 + touched.len() as u64);
        lru.insert(99, need, ttl, now, false);
        let mut freed = 0u64;
        let mut evicted = Vec::new();
        for &k in &order {
            if freed >= need {
                break;
            }
            freed += sizes[k as usize];
            evicted.push(k);
        }
        for &k in &order {
            let expect_resident = !evicted.contains(&k);
            prop_assert_eq!(
                lru.peek(k, now),
                expect_resident,
                "key {} (evicted prefix {:?}, recency {:?})", k, evicted, order
            );
        }
        prop_assert!(lru.peek(99, now));
        prop_assert!(lru.used_bytes() <= capacity);
    }

    // A prefetched entry counts toward `prefetch_hits` exactly once — on
    // its first demand hit — no matter how many more hits follow; demand
    // inserts never count.
    #[test]
    fn prefetched_flag_clears_on_first_demand_hit(
        prefetched in any::<bool>(),
        extra_hits in 0usize..5,
    ) {
        let ttl = SimDuration::from_secs(1 << 30);
        let mut lru: LruCache<u8> = LruCache::new(1000);
        lru.insert(1, 10, ttl, SimTime::ZERO, prefetched);
        for i in 0..=extra_hits {
            prop_assert!(lru.get(1, SimTime::from_secs(1 + i as u64)));
        }
        prop_assert_eq!(lru.stats().prefetch_hits, u64::from(prefetched));
        prop_assert_eq!(lru.stats().hits, 1 + extra_hits as u64);
        // Re-inserting (refresh) re-arms the flag only if the refresh is
        // itself a prefetch.
        lru.insert(1, 10, ttl, SimTime::from_secs(100), true);
        lru.get(1, SimTime::from_secs(101));
        prop_assert_eq!(lru.stats().prefetch_hits, u64::from(prefetched) + 1);
    }
}
