//! Model-based property tests for the edge cache: the LRU must agree with
//! a naive reference implementation on every operation sequence.

use jcdn_cdnsim::cache::LruCache;
use jcdn_cdnsim::{SimDuration, SimTime};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Get(u8),
    Insert(u8, u16),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(Op::Get),
        (0u8..16, 1u16..400).prop_map(|(k, s)| Op::Insert(k, s)),
        (0u8..16).prop_map(Op::Remove),
    ]
}

/// Naive reference: a vector in recency order (front = most recent).
#[derive(Default)]
struct Reference {
    entries: Vec<(u8, u64)>, // (key, size), front = MRU
    capacity: u64,
}

impl Reference {
    fn used(&self) -> u64 {
        self.entries.iter().map(|&(_, s)| s).sum()
    }

    fn get(&mut self, key: u8) -> bool {
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            let e = self.entries.remove(pos);
            self.entries.insert(0, e);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: u8, size: u64) -> bool {
        if size > self.capacity {
            return false;
        }
        if let Some(pos) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(pos);
        }
        self.entries.insert(0, (key, size));
        while self.used() > self.capacity {
            self.entries.pop();
        }
        true
    }

    fn remove(&mut self, key: u8) -> bool {
        match self.entries.iter().position(|&(k, _)| k == key) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }
}

proptest! {
    #[test]
    fn lru_agrees_with_reference(
        ops in prop::collection::vec(arb_op(), 0..200),
        capacity in 100u64..2000,
    ) {
        // Long TTL so expiry never interferes; time advances per op so
        // recency updates are observable.
        let ttl = SimDuration::from_secs(1 << 30);
        let mut lru: LruCache<u8> = LruCache::new(capacity);
        let mut reference = Reference { capacity, ..Reference::default() };
        for (i, op) in ops.iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            match *op {
                Op::Get(k) => {
                    prop_assert_eq!(lru.get(k, now), reference.get(k), "get({}) at step {}", k, i);
                }
                Op::Insert(k, s) => {
                    prop_assert_eq!(
                        lru.insert(k, u64::from(s), ttl, now, false),
                        reference.insert(k, u64::from(s)),
                        "insert({}, {}) at step {}", k, s, i
                    );
                }
                Op::Remove(k) => {
                    prop_assert_eq!(lru.remove(k), reference.remove(k), "remove({}) at step {}", k, i);
                }
            }
            // Invariants after every op.
            prop_assert_eq!(lru.len(), reference.entries.len());
            prop_assert_eq!(lru.used_bytes(), reference.used());
            prop_assert!(lru.used_bytes() <= capacity);
            for &(k, _) in &reference.entries {
                prop_assert!(lru.peek(k, SimTime::from_secs(i as u64)));
            }
        }
    }

    #[test]
    fn expired_entries_never_hit(
        ttl_secs in 1u64..100,
        probe_offset in 0u64..200,
    ) {
        let mut lru: LruCache<u8> = LruCache::new(1000);
        lru.insert(1, 10, SimDuration::from_secs(ttl_secs), SimTime::ZERO, false);
        let hit = lru.get(1, SimTime::from_secs(probe_offset));
        prop_assert_eq!(hit, probe_offset < ttl_secs);
    }
}
