//! Property tests over the simulator: conservation laws that must hold for
//! any seed and any topology.

use jcdn_cdnsim::{
    run_default, ErrorBursts, FaultPlan, OriginOutage, ResilienceConfig, SimConfig, SimDuration,
    Window,
};
use jcdn_trace::codec::encode;
use jcdn_trace::{CacheStatus, RecordFlags};
use jcdn_workload::{build, WorkloadConfig};
use proptest::prelude::*;

/// A plan that knocks out domain 0's origin for the whole run and makes
/// errors bursty — exercises every resilience path at once.
fn stress_plan() -> FaultPlan {
    FaultPlan {
        outages: vec![OriginOutage {
            domain: 0,
            window: Window::from_secs(0, 100_000),
        }],
        errors: Some(ErrorBursts {
            quiet_error_fraction: 0.002,
            burst_error_fraction: 0.25,
            enter_burst: 0.01,
            exit_burst: 0.2,
        }),
        ..FaultPlan::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn conservation_laws_hold(seed in any::<u64>(), edges in 1usize..6, parent in any::<bool>()) {
        let workload = build(&WorkloadConfig::tiny(seed).scaled(0.2));
        let config = SimConfig {
            edges,
            parent_cache: parent.then_some(1 << 28),
            ..SimConfig::default()
        };
        let out = run_default(&workload, &config);
        let stats = &out.stats;

        // Every attempt becomes exactly one log record: the workload events
        // plus the retries that failed attempts re-queued.
        prop_assert_eq!(
            out.trace.len() as u64,
            workload.events.len() as u64 + stats.retries_issued
        );
        prop_assert_eq!(stats.requests, workload.events.len() as u64 + stats.retries_issued);
        prop_assert_eq!(stats.logical_requests() as usize, workload.events.len());

        // The three dispositions partition the requests.
        prop_assert_eq!(stats.hits + stats.misses + stats.not_cacheable, stats.requests);

        // JSON counters are consistent subsets.
        prop_assert!(stats.json_requests <= stats.requests);
        prop_assert_eq!(
            stats.json_hits + stats.json_misses + stats.json_not_cacheable,
            stats.json_requests
        );

        // Parent-tier counters only exist with a parent, and partition the
        // edge misses.
        if parent {
            prop_assert_eq!(stats.parent_hits() + stats.parent_misses(), stats.misses);
        } else {
            prop_assert_eq!(stats.parent_hits(), 0);
            prop_assert_eq!(stats.parent_misses(), 0);
        }

        // Latency summaries cover every request.
        prop_assert_eq!(
            stats.latency_normal.count() + stats.latency_depri.count(),
            stats.requests
        );

        // The trace's cache statuses tally with the stats.
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut nostore = 0u64;
        for r in out.trace.records() {
            match r.cache {
                CacheStatus::Hit => hits += 1,
                CacheStatus::Miss => misses += 1,
                CacheStatus::NotCacheable => nostore += 1,
            }
        }
        prop_assert_eq!(hits, stats.hits);
        prop_assert_eq!(misses, stats.misses);
        prop_assert_eq!(nostore, stats.not_cacheable);
    }

    #[test]
    fn edge_count_never_loses_requests(seed in any::<u64>()) {
        let workload = build(&WorkloadConfig::tiny(seed).scaled(0.1));
        for edges in [1usize, 3, 7] {
            let out = run_default(
                &workload,
                &SimConfig {
                    edges,
                    ..SimConfig::default()
                },
            );
            prop_assert_eq!(out.stats.logical_requests() as usize, workload.events.len());
        }
    }

    #[test]
    fn retry_counts_never_exceed_the_budget(seed in any::<u64>(), budget in 0u8..4) {
        let workload = build(&WorkloadConfig::tiny(seed).scaled(0.2));
        let config = SimConfig {
            fault: stress_plan(),
            resilience: ResilienceConfig {
                retry_budget: budget,
                ..ResilienceConfig::default()
            },
            ..SimConfig::default()
        };
        let out = run_default(&workload, &config);
        for r in out.trace.records() {
            prop_assert!(r.retries <= budget, "record retries {} > budget {budget}", r.retries);
            // Any non-final attempt carries the RETRIED marker and failed.
            if r.flags.contains(RecordFlags::RETRIED) {
                prop_assert!(r.status >= 500);
            }
        }
        let max_seen = out.trace.records().iter().map(|r| r.retries).max().unwrap_or(0);
        prop_assert!(u64::from(max_seen) <= out.stats.retries_issued);
    }

    #[test]
    fn identical_seed_and_fault_plan_give_byte_identical_traces(seed in any::<u64>()) {
        let workload = build(&WorkloadConfig::tiny(seed).scaled(0.2));
        let config = SimConfig {
            fault: stress_plan(),
            ..SimConfig::default()
        };
        let a = run_default(&workload, &config);
        let b = run_default(&workload, &config);
        prop_assert_eq!(encode(&a.trace), encode(&b.trace));
        prop_assert_eq!(a.stats.requests, b.stats.requests);
        prop_assert_eq!(a.stats.end_user_failures, b.stats.end_user_failures);
        prop_assert_eq!(a.stats.stale_serves, b.stats.stale_serves);
    }

    #[test]
    fn serve_stale_requires_a_grace_window(seed in any::<u64>()) {
        let workload = build(&WorkloadConfig::tiny(seed).scaled(0.2));
        // Zero grace: stale rescue is impossible, no record may carry the flag.
        let no_grace = run_default(
            &workload,
            &SimConfig {
                fault: stress_plan(),
                resilience: ResilienceConfig {
                    stale_grace: SimDuration::ZERO,
                    ..ResilienceConfig::default()
                },
                ..SimConfig::default()
            },
        );
        prop_assert_eq!(no_grace.stats.stale_serves, 0);
        for r in no_grace.trace.records() {
            prop_assert!(!r.flags.contains(RecordFlags::SERVED_STALE));
        }

        // With a grace window, every stale serve is a 200 logged as a hit.
        let graced = run_default(
            &workload,
            &SimConfig {
                fault: stress_plan(),
                ..SimConfig::default()
            },
        );
        let mut stale_records = 0u64;
        for r in graced.trace.records() {
            if r.flags.contains(RecordFlags::SERVED_STALE) {
                stale_records += 1;
                prop_assert_eq!(r.status, 200);
                prop_assert_eq!(r.cache, CacheStatus::Hit);
            }
        }
        prop_assert_eq!(stale_records, graced.stats.stale_serves);
    }
}
