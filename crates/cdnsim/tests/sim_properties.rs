//! Property tests over the simulator: conservation laws that must hold for
//! any seed and any topology.

use jcdn_cdnsim::{run_default, SimConfig};
use jcdn_trace::CacheStatus;
use jcdn_workload::{build, WorkloadConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn conservation_laws_hold(seed in any::<u64>(), edges in 1usize..6, parent in any::<bool>()) {
        let workload = build(&WorkloadConfig::tiny(seed).scaled(0.2));
        let config = SimConfig {
            edges,
            parent_cache: parent.then_some(1 << 28),
            ..SimConfig::default()
        };
        let out = run_default(&workload, &config);
        let stats = &out.stats;

        // Every workload event becomes exactly one log record and one
        // served request.
        prop_assert_eq!(out.trace.len(), workload.events.len());
        prop_assert_eq!(stats.requests as usize, workload.events.len());

        // The three dispositions partition the requests.
        prop_assert_eq!(stats.hits + stats.misses + stats.not_cacheable, stats.requests);

        // JSON counters are consistent subsets.
        prop_assert!(stats.json_requests <= stats.requests);
        prop_assert_eq!(
            stats.json_hits + stats.json_misses + stats.json_not_cacheable,
            stats.json_requests
        );

        // Parent-tier counters only exist with a parent, and partition the
        // edge misses.
        if parent {
            prop_assert_eq!(stats.parent_hits + stats.parent_misses, stats.misses);
        } else {
            prop_assert_eq!(stats.parent_hits, 0);
            prop_assert_eq!(stats.parent_misses, 0);
        }

        // Latency summaries cover every request.
        prop_assert_eq!(
            stats.latency_normal.count() + stats.latency_depri.count(),
            stats.requests
        );

        // The trace's cache statuses tally with the stats.
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut nostore = 0u64;
        for r in out.trace.records() {
            match r.cache {
                CacheStatus::Hit => hits += 1,
                CacheStatus::Miss => misses += 1,
                CacheStatus::NotCacheable => nostore += 1,
            }
        }
        prop_assert_eq!(hits, stats.hits);
        prop_assert_eq!(misses, stats.misses);
        prop_assert_eq!(nostore, stats.not_cacheable);
    }

    #[test]
    fn edge_count_never_loses_requests(seed in any::<u64>()) {
        let workload = build(&WorkloadConfig::tiny(seed).scaled(0.1));
        for edges in [1usize, 3, 7] {
            let out = run_default(
                &workload,
                &SimConfig {
                    edges,
                    ..SimConfig::default()
                },
            );
            prop_assert_eq!(out.stats.requests as usize, workload.events.len());
        }
    }
}
