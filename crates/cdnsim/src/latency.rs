//! Network latency model.

use jcdn_trace::SimDuration;
use rand::Rng;

/// Delays between the three tiers of the CDN path.
///
/// Values are means; each sample applies multiplicative jitter drawn from
/// `[1−jitter, 1+jitter]`, which is enough structure for the latency
/// comparisons the prefetch/deprioritization experiments make (absolute
/// calibration against Akamai's network is out of scope — see DESIGN.md).
#[derive(Clone, Copy, Debug)]
pub struct LatencyModel {
    /// Mean client↔edge round trip (the CDN's whole point is that this is
    /// small).
    pub client_edge_rtt: SimDuration,
    /// Mean edge↔origin round trip (the cost a miss or uncacheable request
    /// pays).
    pub edge_origin_rtt: SimDuration,
    /// Mean edge↔parent-tier round trip (a parent cache hit avoids the
    /// origin leg entirely).
    pub edge_parent_rtt: SimDuration,
    /// Transfer time per kilobyte of response body.
    pub per_kb: SimDuration,
    /// Multiplicative jitter amplitude in `[0, 1)`.
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            client_edge_rtt: SimDuration::from_millis(20),
            edge_origin_rtt: SimDuration::from_millis(80),
            edge_parent_rtt: SimDuration::from_millis(25),
            per_kb: SimDuration::from_micros(80),
            jitter: 0.3,
        }
    }
}

impl LatencyModel {
    fn jittered<R: Rng + ?Sized>(&self, base: SimDuration, rng: &mut R) -> SimDuration {
        if self.jitter <= 0.0 {
            return base;
        }
        let factor = 1.0 + rng.gen_range(-self.jitter..self.jitter);
        SimDuration::from_secs_f64(base.as_secs_f64() * factor)
    }

    /// Latency of a response served from edge cache.
    pub fn hit_latency<R: Rng + ?Sized>(&self, bytes: u64, rng: &mut R) -> SimDuration {
        self.jittered(self.client_edge_rtt + self.transfer(bytes), rng)
    }

    /// Latency of a response that had to visit the origin.
    pub fn miss_latency<R: Rng + ?Sized>(&self, bytes: u64, rng: &mut R) -> SimDuration {
        self.jittered(
            self.client_edge_rtt + self.edge_origin_rtt + self.transfer(bytes),
            rng,
        )
    }

    /// One-way edge→origin fetch time (for scheduling prefetch completion).
    pub fn origin_fetch<R: Rng + ?Sized>(&self, bytes: u64, rng: &mut R) -> SimDuration {
        self.jittered(self.edge_origin_rtt + self.transfer(bytes), rng)
    }

    /// Latency of a response served from the parent tier.
    pub fn parent_hit_latency<R: Rng + ?Sized>(&self, bytes: u64, rng: &mut R) -> SimDuration {
        self.jittered(
            self.client_edge_rtt + self.edge_parent_rtt + self.transfer(bytes),
            rng,
        )
    }

    /// Latency of a response served from shared hierarchy tier `tier`
    /// (0-based, 0 = the tier closest to the edge). Each deeper tier adds
    /// one parent round trip, capped at the origin round trip — a shield
    /// hit can't cost more than going to the origin. Tier 0 is identical
    /// to [`LatencyModel::parent_hit_latency`].
    pub fn tier_hit_latency<R: Rng + ?Sized>(
        &self,
        tier: usize,
        bytes: u64,
        rng: &mut R,
    ) -> SimDuration {
        let hops = self.edge_parent_rtt.as_micros() * (tier as u64 + 1);
        let upstream = SimDuration::from_micros(hops.min(self.edge_origin_rtt.as_micros()));
        self.jittered(self.client_edge_rtt + upstream + self.transfer(bytes), rng)
    }

    fn transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_micros(self.per_kb.as_micros() * bytes.div_ceil(1024))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn misses_cost_more_than_hits() {
        let m = LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let hit = m.hit_latency(1024, &mut rng);
        let miss = m.miss_latency(1024, &mut rng);
        assert!(miss > hit);
        assert_eq!(miss - hit, m.edge_origin_rtt);
    }

    #[test]
    fn bigger_bodies_take_longer() {
        let m = LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        assert!(m.hit_latency(100_000, &mut rng) > m.hit_latency(100, &mut rng));
    }

    #[test]
    fn tier_zero_matches_parent_hit_and_deep_tiers_cap_at_origin() {
        let m = LatencyModel {
            jitter: 0.0,
            ..LatencyModel::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            m.tier_hit_latency(0, 2048, &mut rng),
            m.parent_hit_latency(2048, &mut rng)
        );
        let deep = m.tier_hit_latency(7, 2048, &mut rng);
        assert_eq!(deep, m.miss_latency(2048, &mut rng), "capped at origin");
        assert!(m.tier_hit_latency(1, 2048, &mut rng) > m.tier_hit_latency(0, 2048, &mut rng));
    }

    #[test]
    fn jitter_varies_but_stays_bounded() {
        let m = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let base = LatencyModel { jitter: 0.0, ..m }
            .hit_latency(1024, &mut rng)
            .as_secs_f64();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            let sample = m.hit_latency(1024, &mut rng).as_secs_f64();
            assert!(sample > base * 0.65 && sample < base * 1.35);
            distinct.insert((sample * 1e9) as u64);
        }
        assert!(distinct.len() > 50, "jitter must actually vary");
    }
}
