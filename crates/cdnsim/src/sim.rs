//! The event-driven simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use jcdn_obs::metrics::{key, MetricsSnapshot};
use jcdn_stats::Summary;
use jcdn_trace::{
    CacheStatus, ClientId, LogRecord, MimeType, RecordFlags, SimDuration, SimTime, Trace, UaId,
    UrlId,
};
use jcdn_workload::{ClientInfo, ObjectInfo, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::collections::HashMap;

use crate::cache::{Lookup, LruCache};
use crate::fault::{FaultPlan, FaultState, ResilienceConfig};
use crate::latency::LatencyModel;

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of edge servers (the paper's long-term dataset covers three
    /// vantage points).
    pub edges: usize,
    /// Per-edge cache capacity in bytes.
    pub cache_capacity: u64,
    /// Optional parent-tier cache capacity (bytes). When set, cacheable
    /// edge misses consult a shared regional parent before the origin —
    /// the "through the CDN to origin content servers" path of §4, with
    /// one intermediate tier.
    pub parent_cache: Option<u64>,
    /// Network delays.
    pub latency: LatencyModel,
    /// Fixed CPU cost of handling one request at the edge.
    pub service_base: SimDuration,
    /// Additional CPU cost per KiB of response ("a large chunk of the total
    /// request cost is tied to CPU request processing", §4).
    pub service_per_kb: SimDuration,
    /// Fraction of requests that fail with a 5xx, drawn independently per
    /// attempt. Superseded by [`FaultPlan::errors`] when that is set.
    pub error_fraction: f64,
    /// Injected faults: outages, degradations, edge flaps, error bursts.
    pub fault: FaultPlan,
    /// Client retry policy and edge graceful degradation.
    pub resilience: ResilienceConfig,
    /// RNG seed (response sizes, latency jitter, errors).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            edges: 3,
            cache_capacity: 256 << 20,
            parent_cache: None,
            latency: LatencyModel::default(),
            service_base: SimDuration::from_micros(200),
            service_per_kb: SimDuration::from_micros(20),
            error_fraction: 0.004,
            fault: FaultPlan::default(),
            resilience: ResilienceConfig::default(),
            seed: 0x5eed,
        }
    }
}

/// Scheduling priority of a request at the edge.
///
/// §5.1/§7 of the paper propose deprioritizing machine-to-machine traffic
/// "since a human is not waiting for the response"; the service queue
/// serves all `Normal` requests before any `Deprioritized` one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Human-facing traffic (served first).
    #[default]
    Normal,
    /// Machine-to-machine traffic (served when no normal work waits).
    Deprioritized,
}

/// What a [`Policy`] decides about one request.
#[derive(Clone, Debug, Default)]
pub struct PolicyOutcome {
    /// Objects to prefetch into this edge's cache.
    pub prefetch: Vec<u32>,
    /// The request's scheduling priority.
    pub priority: Priority,
}

/// Everything a policy can see about one arriving request.
#[derive(Debug)]
pub struct RequestCtx<'a> {
    /// Arrival time.
    pub time: SimTime,
    /// Client index.
    pub client: u32,
    /// Requested object index.
    pub object: u32,
    /// Edge the request was routed to.
    pub edge: usize,
    /// The object universe.
    pub objects: &'a [ObjectInfo],
    /// The client population.
    pub clients: &'a [ClientInfo],
    /// Whether the object is already resident in this edge's cache.
    pub cache_resident: bool,
}

/// A per-request hook: prefetching, deprioritization, anomaly scoring.
pub trait Policy {
    /// Called for every arriving request, before cache lookup.
    fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome;
}

/// The default policy: no prefetch, everything `Normal`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopPolicy;

impl Policy for NoopPolicy {
    fn on_request(&mut self, _ctx: &RequestCtx<'_>) -> PolicyOutcome {
        PolicyOutcome::default()
    }
}

/// Aggregate simulation statistics.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Requests served.
    pub requests: u64,
    /// Cacheable requests served from edge cache.
    pub hits: u64,
    /// Cacheable requests fetched from origin.
    pub misses: u64,
    /// Requests for uncacheable objects (tunneled to origin).
    pub not_cacheable: u64,
    /// Total origin round trips (misses + uncacheable + prefetches).
    pub origin_fetches: u64,
    /// Cacheable edge misses served by the parent tier.
    pub parent_hits: u64,
    /// Cacheable edge misses that fell through the parent to the origin.
    pub parent_misses: u64,
    /// Prefetches issued by the policy.
    pub prefetch_issued: u64,
    /// Prefetches that completed and were inserted.
    pub prefetch_completed: u64,
    /// Demand hits on prefetched entries (usefulness numerator).
    pub prefetch_useful: u64,
    /// Response bytes served from cache.
    pub bytes_cache: u64,
    /// Response bytes fetched from origin (incl. prefetch).
    pub bytes_origin: u64,
    /// JSON-only counters (the paper's cacheability numbers are JSON-only).
    pub json_requests: u64,
    /// JSON requests served from cache.
    pub json_hits: u64,
    /// JSON cacheable requests that missed.
    pub json_misses: u64,
    /// JSON uncacheable requests.
    pub json_not_cacheable: u64,
    /// End-to-end latency of `Normal` requests (seconds).
    pub latency_normal: Summary,
    /// End-to-end latency of `Deprioritized` requests (seconds).
    pub latency_depri: Summary,
    /// Retries scheduled by failed attempts (each adds one log record).
    pub retries_issued: u64,
    /// 5xx responses with no retry after them — failures the end user saw.
    pub end_user_failures: u64,
    /// Responses answered with an expired entry inside the stale-if-error
    /// grace window because the origin was unavailable.
    pub stale_serves: u64,
    /// Lookups answered by the negative cache (fast 5xx or stale serve)
    /// without re-contacting a known-bad origin.
    pub neg_cache_serves: u64,
    /// Cache hits that had to wait for an in-flight origin fetch of the
    /// same object (request coalescing).
    pub coalesced_waits: u64,
    /// Origin attempts that failed: hard outage (503), degradation tripping
    /// the origin timeout (504), or a stochastic error (500).
    pub origin_errors: u64,
}

impl SimStats {
    /// Hit ratio over cacheable traffic.
    pub fn cacheable_hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Hit ratio over all traffic (uncacheable requests count as misses —
    /// the operator's view of origin offload).
    pub fn overall_hit_ratio(&self) -> Option<f64> {
        (self.requests > 0).then(|| self.hits as f64 / self.requests as f64)
    }

    /// JSON-only uncacheable share (paper: ~55%).
    pub fn json_uncacheable_share(&self) -> Option<f64> {
        (self.json_requests > 0).then(|| self.json_not_cacheable as f64 / self.json_requests as f64)
    }

    /// Logical requests: attempts minus the retries that re-entered the
    /// queue (i.e. the number of workload events served).
    pub fn logical_requests(&self) -> u64 {
        self.requests.saturating_sub(self.retries_issued)
    }

    /// Share of logical requests whose final answer was a 5xx.
    pub fn end_user_error_rate(&self) -> Option<f64> {
        let logical = self.logical_requests();
        (logical > 0).then(|| self.end_user_failures as f64 / logical as f64)
    }

    /// Attempts per logical request (1.0 = no retrying).
    pub fn retry_amplification(&self) -> Option<f64> {
        let logical = self.logical_requests();
        (logical > 0).then(|| self.requests as f64 / logical as f64)
    }

    /// Adds `other`'s counters and latency summaries into `self`. Every
    /// integer counter merges exactly; the latency [`Summary`]s combine
    /// via their own merge (counts exact, moments to float precision).
    pub fn merge(&mut self, other: &SimStats) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.misses += other.misses;
        self.not_cacheable += other.not_cacheable;
        self.origin_fetches += other.origin_fetches;
        self.parent_hits += other.parent_hits;
        self.parent_misses += other.parent_misses;
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_completed += other.prefetch_completed;
        self.prefetch_useful += other.prefetch_useful;
        self.bytes_cache += other.bytes_cache;
        self.bytes_origin += other.bytes_origin;
        self.json_requests += other.json_requests;
        self.json_hits += other.json_hits;
        self.json_misses += other.json_misses;
        self.json_not_cacheable += other.json_not_cacheable;
        self.latency_normal.merge(&other.latency_normal);
        self.latency_depri.merge(&other.latency_depri);
        self.retries_issued += other.retries_issued;
        self.end_user_failures += other.end_user_failures;
        self.stale_serves += other.stale_serves;
        self.neg_cache_serves += other.neg_cache_serves;
        self.coalesced_waits += other.coalesced_waits;
        self.origin_errors += other.origin_errors;
    }
}

/// The simulator's output: the edge logs and the aggregate stats.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Request logs in arrival order (§3.1 schema).
    pub trace: Trace,
    /// Aggregate counters and latency summaries.
    pub stats: SimStats,
    /// Per-edge observability counters (`sim.hits{edge=0}`, …), keyed for
    /// the run manifest. Deterministic: every stream behind them is
    /// per-edge seeded, so the snapshot is identical for any shard or
    /// thread count (`merge` across per-edge runs equals the combined
    /// run's snapshot).
    pub metrics: MetricsSnapshot,
}

/// Per-edge counter deltas captured around one request completion, so the
/// counters mirror `SimStats` exactly without re-instrumenting every
/// branch of `complete_request`.
#[derive(Clone, Copy, Default)]
struct StatsMark {
    hits: u64,
    misses: u64,
    not_cacheable: u64,
    stale_serves: u64,
    neg_cache_serves: u64,
    coalesced_waits: u64,
    retries_issued: u64,
    origin_errors: u64,
    end_user_failures: u64,
}

impl StatsMark {
    fn capture(stats: &SimStats) -> StatsMark {
        StatsMark {
            hits: stats.hits,
            misses: stats.misses,
            not_cacheable: stats.not_cacheable,
            stale_serves: stats.stale_serves,
            neg_cache_serves: stats.neg_cache_serves,
            coalesced_waits: stats.coalesced_waits,
            retries_issued: stats.retries_issued,
            origin_errors: stats.origin_errors,
            end_user_failures: stats.end_user_failures,
        }
    }

    /// Adds `stats - self` into `edge`'s counter tallies.
    fn attribute(&self, stats: &SimStats, edge: &mut EdgeCounters) {
        edge.requests += 1;
        edge.hits += stats.hits - self.hits;
        edge.misses += stats.misses - self.misses;
        edge.not_cacheable += stats.not_cacheable - self.not_cacheable;
        edge.stale_serves += stats.stale_serves - self.stale_serves;
        edge.neg_cache_serves += stats.neg_cache_serves - self.neg_cache_serves;
        edge.coalesced_waits += stats.coalesced_waits - self.coalesced_waits;
        edge.retries_issued += stats.retries_issued - self.retries_issued;
        edge.origin_errors += stats.origin_errors - self.origin_errors;
        edge.end_user_failures += stats.end_user_failures - self.end_user_failures;
    }
}

/// One edge's observability tallies for the run manifest.
#[derive(Clone, Copy, Default)]
struct EdgeCounters {
    requests: u64,
    hits: u64,
    misses: u64,
    not_cacheable: u64,
    stale_serves: u64,
    neg_cache_serves: u64,
    coalesced_waits: u64,
    retries_issued: u64,
    origin_errors: u64,
    end_user_failures: u64,
}

impl EdgeCounters {
    /// Converts the tallies into labeled snapshot counters. Zero-valued
    /// counters create no keys, so per-edge subset runs merge to exactly
    /// the combined run's snapshot.
    fn record_into(&self, edge: usize, snapshot: &mut MetricsSnapshot) {
        let e = edge as u64;
        snapshot.inc(&key("sim.requests", &[("edge", e)]), self.requests);
        snapshot.inc(&key("sim.hits", &[("edge", e)]), self.hits);
        snapshot.inc(&key("sim.misses", &[("edge", e)]), self.misses);
        snapshot.inc(
            &key("sim.not_cacheable", &[("edge", e)]),
            self.not_cacheable,
        );
        snapshot.inc(&key("sim.stale_serves", &[("edge", e)]), self.stale_serves);
        snapshot.inc(
            &key("sim.neg_cache_serves", &[("edge", e)]),
            self.neg_cache_serves,
        );
        snapshot.inc(&key("sim.coalesced", &[("edge", e)]), self.coalesced_waits);
        snapshot.inc(&key("sim.retries", &[("edge", e)]), self.retries_issued);
        snapshot.inc(
            &key("sim.origin_errors", &[("edge", e)]),
            self.origin_errors,
        );
        snapshot.inc(
            &key("sim.end_user_failures", &[("edge", e)]),
            self.end_user_failures,
        );
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum InternalEvent {
    /// Edge server finished the CPU service of a queued request.
    ServiceDone { edge: usize },
    /// A prefetch fetch returned from origin.
    PrefetchDone { edge: usize, object: u32 },
    /// A client re-issues a failed request after backing off.
    Retry {
        widx: usize,
        attempt: u8,
        priority: Priority,
    },
}

/// A queued request: (priority, arrival, seq, workload index, attempt).
type QueuedRequest = (Priority, SimTime, u64, usize, u8);

struct Edge {
    cache: LruCache<u32>,
    busy_until: SimTime,
    /// Waiting requests, served in priority-then-arrival order.
    queue: BinaryHeap<Reverse<QueuedRequest>>,
    /// Request currently in service.
    in_service: Option<(usize, SimTime, Priority, u8)>,
    /// Origin-unavailability verdicts: object → (valid until, status).
    neg_cache: HashMap<u32, (SimTime, u16)>,
    /// Outstanding origin fetches: object → completion time, for request
    /// coalescing.
    in_flight: HashMap<u32, SimTime>,
}

/// Routes a request to an edge, skipping edges that are flapped out of
/// rotation at `t`. With no flaps this is the plain `hash % edges` of the
/// original simulator; when every edge is down, routing falls back to it
/// too (the request has to land somewhere).
fn route_edge(fault: &FaultPlan, edges: usize, ip_hash: u64, t: SimTime) -> usize {
    if fault.flaps.is_empty() {
        return (ip_hash % edges as u64) as usize;
    }
    let up: Vec<usize> = (0..edges).filter(|&e| !fault.edge_down(e, t)).collect();
    if up.is_empty() {
        return (ip_hash % edges as u64) as usize;
    }
    up[(ip_hash % up.len() as u64) as usize]
}

/// Derives a statistically independent per-edge stream seed from the base
/// seed (SplitMix64 finalizer over a golden-ratio stride).
fn edge_seed(seed: u64, edge: usize) -> u64 {
    let mut z = seed.wrapping_add((edge as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the workload through the simulated CDN with the given policy.
pub fn run(workload: &Workload, config: &SimConfig, policy: &mut dyn Policy) -> SimOutput {
    run_inner(workload, config, policy, None)
}

/// The engine behind [`run`] and [`run_sharded`]: when `only_edge` is set,
/// arrivals routed to any other edge are skipped, so the run simulates one
/// edge's subset of the workload.
///
/// Every stochastic stream (sizes, latency jitter, errors/faults) is
/// **per-edge**, derived from [`edge_seed`], and the final log sort is the
/// canonical total order — so simulating edges one subset at a time yields
/// the same records the combined run produces.
fn run_inner(
    workload: &Workload,
    config: &SimConfig,
    policy: &mut dyn Policy,
    only_edge: Option<usize>,
) -> SimOutput {
    assert!(config.edges > 0, "need at least one edge");
    let _span = match only_edge {
        Some(e) => jcdn_obs::span!("simulate.edge", edge = e as u64),
        None => jcdn_obs::span!("simulate.run"),
    };
    let mut edge_counters: Vec<EdgeCounters> = vec![EdgeCounters::default(); config.edges];
    let mut rngs: Vec<StdRng> = (0..config.edges)
        .map(|e| StdRng::seed_from_u64(edge_seed(config.seed, e)))
        .collect();
    // The fault/error stream is separate from the main streams so enabling
    // bursts or faults never perturbs size and latency draws.
    let mut fault_states: Vec<FaultState> = (0..config.edges)
        .map(|e| FaultState::new(edge_seed(config.seed ^ 0xFAD7_5EED, e)))
        .collect();
    let mut stats = SimStats::default();
    let mut parent: Option<LruCache<u32>> = config.parent_cache.map(LruCache::new);
    let mut edges: Vec<Edge> = (0..config.edges)
        .map(|_| Edge {
            cache: LruCache::new(config.cache_capacity),
            busy_until: SimTime::ZERO,
            queue: BinaryHeap::new(),
            in_service: None,
            neg_cache: HashMap::new(),
            in_flight: HashMap::new(),
        })
        .collect();

    // Pre-intern all strings so ids are stable and independent of policy
    // decisions.
    let mut trace = Trace::with_capacity(workload.events.len());
    let url_ids: Vec<UrlId> = workload
        .objects
        .iter()
        .map(|o| trace.intern_url(&o.url))
        .collect();
    let ua_ids: Vec<Option<UaId>> = workload
        .clients
        .iter()
        .map(|c| c.ua.as_deref().map(|ua| trace.intern_ua(ua)))
        .collect();

    let mut heap: BinaryHeap<Reverse<(SimTime, u64, InternalEvent)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut next_arrival = 0usize;

    loop {
        // Pick the earlier of the next arrival and the next internal event.
        let arrival_time = workload.events.get(next_arrival).map(|e| e.time);
        let internal_time = heap.peek().map(|Reverse((t, _, _))| *t);
        let take_arrival = match (arrival_time, internal_time) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(at), Some(it)) => at <= it,
        };
        match take_arrival {
            true => {
                let widx = next_arrival;
                next_arrival += 1;
                let event = &workload.events[widx];
                let edge_idx = route_edge(
                    &config.fault,
                    config.edges,
                    workload.clients[event.client as usize].ip_hash,
                    event.time,
                );
                if only_edge.is_some_and(|e| e != edge_idx) {
                    continue;
                }
                let object = &workload.objects[event.object as usize];

                let ctx = RequestCtx {
                    time: event.time,
                    client: event.client,
                    object: event.object,
                    edge: edge_idx,
                    objects: &workload.objects,
                    clients: &workload.clients,
                    cache_resident: edges[edge_idx].cache.peek(event.object, event.time),
                };
                let outcome = policy.on_request(&ctx);

                // Issue prefetches: only cacheable, non-resident objects.
                for target in outcome.prefetch {
                    let tobj = &workload.objects[target as usize];
                    if !tobj.cacheable || edges[edge_idx].cache.peek(target, event.time) {
                        continue;
                    }
                    stats.prefetch_issued += 1;
                    let size = tobj.sample_size(&mut rngs[edge_idx]);
                    stats.bytes_origin += size;
                    stats.origin_fetches += 1;
                    let done = event.time + config.latency.origin_fetch(size, &mut rngs[edge_idx]);
                    seq += 1;
                    heap.push(Reverse((
                        done,
                        seq,
                        InternalEvent::PrefetchDone {
                            edge: edge_idx,
                            object: target,
                        },
                    )));
                }

                let _ = object;
                edges[edge_idx]
                    .queue
                    .push(Reverse((outcome.priority, event.time, seq, widx, 0)));
                seq += 1;
                dispatch(
                    &mut edges[edge_idx],
                    edge_idx,
                    event.time,
                    workload,
                    config,
                    &mut rngs[edge_idx],
                    &mut heap,
                    &mut seq,
                );
            }
            false => {
                let Some(Reverse((now, _, ev))) = heap.pop() else {
                    break;
                };
                match ev {
                    InternalEvent::PrefetchDone { edge, object } => {
                        let obj = &workload.objects[object as usize];
                        stats.prefetch_completed += 1;
                        // Insert only if still absent — a demand miss may
                        // have populated it meanwhile.
                        if !edges[edge].cache.peek(object, now) {
                            let size = obj.sample_size(&mut rngs[edge]);
                            edges[edge].cache.insert(object, size, obj.ttl, now, true);
                        }
                    }
                    InternalEvent::Retry {
                        widx,
                        attempt,
                        priority,
                    } => {
                        // The client re-issues the request; routing happens
                        // afresh (the original edge may have flapped out).
                        let event = &workload.events[widx];
                        let edge_idx = route_edge(
                            &config.fault,
                            config.edges,
                            workload.clients[event.client as usize].ip_hash,
                            now,
                        );
                        edges[edge_idx]
                            .queue
                            .push(Reverse((priority, now, seq, widx, attempt)));
                        seq += 1;
                        dispatch(
                            &mut edges[edge_idx],
                            edge_idx,
                            now,
                            workload,
                            config,
                            &mut rngs[edge_idx],
                            &mut heap,
                            &mut seq,
                        );
                    }
                    InternalEvent::ServiceDone { edge } => {
                        let Some((widx, arrival, priority, attempt)) =
                            edges[edge].in_service.take()
                        else {
                            continue;
                        };
                        let mark = StatsMark::capture(&stats);
                        complete_request(
                            widx,
                            attempt,
                            arrival,
                            priority,
                            now,
                            workload,
                            config,
                            &mut edges[edge],
                            &mut parent,
                            &mut stats,
                            &mut trace,
                            &url_ids,
                            &ua_ids,
                            &mut rngs[edge],
                            &mut fault_states[edge],
                            &mut heap,
                            &mut seq,
                        );
                        mark.attribute(&stats, &mut edge_counters[edge]);
                        dispatch(
                            &mut edges[edge],
                            edge,
                            now,
                            workload,
                            config,
                            &mut rngs[edge],
                            &mut heap,
                            &mut seq,
                        );
                    }
                }
            }
        }
    }

    // Merge cache-level prefetch-hit counters.
    for edge in &edges {
        stats.prefetch_useful += edge.cache.stats().prefetch_hits;
    }

    // Canonical total-order sort: the log is time-sorted and the order of
    // equal-time records never depends on edge interleaving, so per-edge
    // subset runs concatenate to exactly this log.
    trace.sort_canonical();
    let mut metrics = MetricsSnapshot::default();
    for (e, counters) in edge_counters.iter().enumerate() {
        counters.record_into(e, &mut metrics);
    }
    SimOutput {
        trace,
        stats,
        metrics,
    }
}

/// Runs with the no-op policy.
pub fn run_default(workload: &Workload, config: &SimConfig) -> SimOutput {
    run(workload, config, &mut NoopPolicy)
}

/// Runs the simulation with per-edge subsets fanned out over a
/// `threads`-wide worker pool, producing the same trace records and
/// integer counters as [`run_default`] (latency summaries match to float
/// merge precision).
///
/// Per-edge subsets are only independent when routing is static and no
/// state is shared across edges; configurations with edge flaps (dynamic
/// routing) or a parent tier (shared cache) fall back to the sequential
/// [`run_default`], as do single-edge or single-thread runs.
pub fn run_sharded(workload: &Workload, config: &SimConfig, threads: usize) -> SimOutput {
    if threads <= 1
        || config.edges <= 1
        || !config.fault.flaps.is_empty()
        || config.parent_cache.is_some()
    {
        return run_default(workload, config);
    }
    let outputs = jcdn_exec::scatter_gather_labeled("sim.edges", config.edges, threads, |e| {
        run_inner(workload, config, &mut NoopPolicy, Some(e))
    });

    let mut outputs = outputs.into_iter();
    let Some(first) = outputs.next() else {
        return run_default(workload, config);
    };
    let mut stats = first.stats;
    let mut metrics = first.metrics;
    // Every per-edge run pre-interns the full object and client tables, so
    // the interners are identical and records concatenate directly.
    let (interner, mut records) = first.trace.into_parts();
    for out in outputs {
        stats.merge(&out.stats);
        metrics.merge(&out.metrics);
        records.extend(out.trace.into_parts().1);
    }
    let mut trace = Trace::from_parts(interner, records);
    trace.sort_canonical();
    SimOutput {
        trace,
        stats,
        metrics,
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    edge: &mut Edge,
    edge_idx: usize,
    now: SimTime,
    workload: &Workload,
    config: &SimConfig,
    rng: &mut StdRng,
    heap: &mut BinaryHeap<Reverse<(SimTime, u64, InternalEvent)>>,
    seq: &mut u64,
) {
    if edge.in_service.is_some() || now < edge.busy_until {
        return;
    }
    let Some(Reverse((priority, arrival, _, widx, attempt))) = edge.queue.pop() else {
        return;
    };
    let object = &workload.objects[workload.events[widx].object as usize];
    // CPU service cost: base + per-KiB of (expected) body.
    let kb = (object.size_median / 1024.0).ceil() as u64;
    let service = config.service_base
        + SimDuration::from_micros(config.service_per_kb.as_micros() * kb.max(1));
    let done = now + service;
    edge.busy_until = done;
    edge.in_service = Some((widx, arrival, priority, attempt));
    *seq += 1;
    heap.push(Reverse((
        done,
        *seq,
        InternalEvent::ServiceDone { edge: edge_idx },
    )));
    let _ = rng;
}

/// How one origin attempt went (only evaluated when the origin is needed).
enum OriginAttempt {
    /// The origin answered; the response took `network` end to end.
    Reached { network: SimDuration },
    /// The origin was unreachable (503) or too slow (504); discovering that
    /// cost `latency`.
    Unavailable { status: u16, latency: SimDuration },
}

/// Attempts to reach `domain`'s origin at `now`, applying outages and
/// degradations from the fault plan. `nominal` is the healthy end-to-end
/// network latency the caller already sampled.
fn attempt_origin(
    config: &SimConfig,
    domain: u32,
    now: SimTime,
    nominal: SimDuration,
) -> OriginAttempt {
    if config.fault.outage_at(domain, now) {
        // Connection refused after one full round trip to the origin.
        return OriginAttempt::Unavailable {
            status: 503,
            latency: config.latency.client_edge_rtt + config.latency.edge_origin_rtt,
        };
    }
    match config.fault.degradation_at(domain, now) {
        None => OriginAttempt::Reached { network: nominal },
        Some(factor) => {
            let scaled = SimDuration::from_secs_f64(nominal.as_secs_f64() * factor);
            if scaled > config.resilience.origin_timeout {
                OriginAttempt::Unavailable {
                    status: 504,
                    latency: config.latency.client_edge_rtt + config.resilience.origin_timeout,
                }
            } else {
                OriginAttempt::Reached { network: scaled }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn complete_request(
    widx: usize,
    attempt: u8,
    arrival: SimTime,
    priority: Priority,
    now: SimTime,
    workload: &Workload,
    config: &SimConfig,
    edge: &mut Edge,
    parent: &mut Option<LruCache<u32>>,
    stats: &mut SimStats,
    trace: &mut Trace,
    url_ids: &[UrlId],
    ua_ids: &[Option<UaId>],
    rng: &mut StdRng,
    fault_state: &mut FaultState,
    heap: &mut BinaryHeap<Reverse<(SimTime, u64, InternalEvent)>>,
    seq: &mut u64,
) {
    let event = &workload.events[widx];
    let object = &workload.objects[event.object as usize];
    let res = &config.resilience;
    let size = object.sample_size(rng);
    let is_json = object.mime == MimeType::Json;

    stats.requests += 1;
    if is_json {
        stats.json_requests += 1;
    }

    let mut flags = RecordFlags::NONE;
    let mut response_bytes = size;
    // Draws the stochastic per-attempt status (bursty when configured,
    // i.i.d. `error_fraction` otherwise). Only successful paths draw it —
    // origin-unavailability failures already have their status.
    let draw_status = |fs: &mut FaultState, stats: &mut SimStats| -> u16 {
        if fs.error_draw(config.fault.errors.as_ref(), config.error_fraction) {
            stats.origin_errors += 1;
            500
        } else {
            200
        }
    };

    let (cache_status, network, status) = if !object.cacheable {
        stats.not_cacheable += 1;
        if is_json {
            stats.json_not_cacheable += 1;
        }
        let nominal = config.latency.miss_latency(size, rng);
        match attempt_origin(config, object.domain, now, nominal) {
            OriginAttempt::Reached { network } => {
                stats.origin_fetches += 1;
                stats.bytes_origin += size;
                let status = draw_status(fault_state, stats);
                (CacheStatus::NotCacheable, network, status)
            }
            OriginAttempt::Unavailable { status, latency } => {
                stats.origin_errors += 1;
                response_bytes = 0;
                (CacheStatus::NotCacheable, latency, status)
            }
        }
    } else {
        match edge
            .cache
            .get_with_grace(event.object, now, res.stale_grace)
        {
            Lookup::Fresh => {
                stats.hits += 1;
                stats.bytes_cache += size;
                if is_json {
                    stats.json_hits += 1;
                }
                let mut network = config.latency.hit_latency(size, rng);
                if res.coalesce {
                    // The entry may have been inserted by a fetch that is
                    // still on the wire; this request rides it and waits.
                    if let Some(&done) = edge.in_flight.get(&event.object) {
                        if done > now {
                            flags.insert(RecordFlags::COALESCED);
                            stats.coalesced_waits += 1;
                            network = (done - now) + network;
                        }
                    }
                }
                let status = draw_status(fault_state, stats);
                (CacheStatus::Hit, network, status)
            }
            lookup => {
                let stale_available = lookup == Lookup::Stale;
                let neg_status = edge
                    .neg_cache
                    .get(&event.object)
                    .copied()
                    .filter(|&(until, _)| until > now)
                    .map(|(_, status)| status);
                if let Some(neg_status) = neg_status {
                    // The origin is known bad; answer without contacting it.
                    stats.neg_cache_serves += 1;
                    flags.insert(RecordFlags::NEG_CACHED);
                    if stale_available {
                        flags.insert(RecordFlags::SERVED_STALE);
                        stats.hits += 1;
                        stats.stale_serves += 1;
                        stats.bytes_cache += size;
                        if is_json {
                            stats.json_hits += 1;
                        }
                        let network = config.latency.hit_latency(size, rng);
                        (CacheStatus::Hit, network, 200)
                    } else {
                        stats.misses += 1;
                        if is_json {
                            stats.json_misses += 1;
                        }
                        response_bytes = 0;
                        (
                            CacheStatus::Miss,
                            config.latency.client_edge_rtt,
                            neg_status,
                        )
                    }
                } else if parent.as_mut().is_some_and(|p| p.get(event.object, now)) {
                    // Parent tier hit: the origin is never involved.
                    stats.misses += 1;
                    stats.parent_hits += 1;
                    if is_json {
                        stats.json_misses += 1;
                    }
                    edge.cache
                        .insert(event.object, size, object.ttl, now, false);
                    let network = config.latency.parent_hit_latency(size, rng);
                    let status = draw_status(fault_state, stats);
                    (CacheStatus::Miss, network, status)
                } else {
                    let parent_missed = parent.is_some();
                    let nominal = config.latency.miss_latency(size, rng);
                    match attempt_origin(config, object.domain, now, nominal) {
                        OriginAttempt::Reached { network } => {
                            stats.misses += 1;
                            if parent_missed {
                                stats.parent_misses += 1;
                            }
                            if is_json {
                                stats.json_misses += 1;
                            }
                            stats.origin_fetches += 1;
                            stats.bytes_origin += size;
                            edge.cache
                                .insert(event.object, size, object.ttl, now, false);
                            if let Some(parent_cache) = parent.as_mut() {
                                parent_cache.insert(event.object, size, object.ttl, now, false);
                            }
                            if res.coalesce {
                                edge.in_flight.insert(event.object, now + network);
                            }
                            let status = draw_status(fault_state, stats);
                            (CacheStatus::Miss, network, status)
                        }
                        OriginAttempt::Unavailable { status, latency } => {
                            stats.origin_errors += 1;
                            if res.negative_ttl > SimDuration::ZERO {
                                edge.neg_cache
                                    .insert(event.object, (now + res.negative_ttl, status));
                            }
                            if stale_available {
                                // Stale-if-error: the expired copy beats a
                                // 5xx.
                                flags.insert(RecordFlags::SERVED_STALE);
                                stats.hits += 1;
                                stats.stale_serves += 1;
                                stats.bytes_cache += size;
                                if is_json {
                                    stats.json_hits += 1;
                                }
                                let network = config.latency.hit_latency(size, rng);
                                (CacheStatus::Hit, network, 200)
                            } else {
                                stats.misses += 1;
                                if parent_missed {
                                    stats.parent_misses += 1;
                                }
                                if is_json {
                                    stats.json_misses += 1;
                                }
                                response_bytes = 0;
                                (CacheStatus::Miss, latency, status)
                            }
                        }
                    }
                }
            }
        }
    };

    // End-to-end latency: queueing + service (now - arrival) + network.
    let latency = (now - arrival) + network;
    match priority {
        Priority::Normal => stats.latency_normal.record(latency.as_secs_f64()),
        Priority::Deprioritized => stats.latency_depri.record(latency.as_secs_f64()),
    }

    // Client-side resilience: a failed attempt with retry budget left backs
    // off and re-enters the event queue as a fresh timestamped arrival.
    if status >= 500 {
        if attempt < res.retry_budget {
            flags.insert(RecordFlags::RETRIED);
            stats.retries_issued += 1;
            let delay = res.backoff(attempt + 1, widx as u64);
            *seq += 1;
            heap.push(Reverse((
                now + delay,
                *seq,
                InternalEvent::Retry {
                    widx,
                    attempt: attempt + 1,
                    priority,
                },
            )));
        } else {
            stats.end_user_failures += 1;
        }
    }

    trace.push(LogRecord {
        time: arrival,
        client: ClientId(workload.clients[event.client as usize].ip_hash),
        ua: ua_ids[event.client as usize],
        url: url_ids[event.object as usize],
        method: event.method,
        mime: object.mime,
        status,
        response_bytes,
        cache: cache_status,
        retries: attempt,
        flags,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_workload::{build, WorkloadConfig};

    fn tiny_output() -> SimOutput {
        let w = build(&WorkloadConfig::tiny(0xFEED));
        run_default(&w, &SimConfig::default())
    }

    #[test]
    fn every_event_produces_exactly_one_log() {
        let w = build(&WorkloadConfig::tiny(1));
        let out = run_default(&w, &SimConfig::default());
        // One record per attempt: original events plus retries of failures.
        assert_eq!(
            out.trace.len() as u64,
            w.events.len() as u64 + out.stats.retries_issued
        );
        assert_eq!(
            out.stats.requests,
            w.events.len() as u64 + out.stats.retries_issued
        );
        assert_eq!(out.stats.logical_requests(), w.events.len() as u64);
        assert_eq!(
            out.stats.hits + out.stats.misses + out.stats.not_cacheable,
            out.stats.requests
        );
    }

    #[test]
    fn logs_are_time_sorted_and_carry_strings() {
        let out = tiny_output();
        assert!(out
            .trace
            .records()
            .windows(2)
            .all(|p| p[0].time <= p[1].time));
        let v = out.trace.iter().next().unwrap();
        assert!(v.url.starts_with("https://"));
    }

    #[test]
    fn cacheable_popular_objects_get_hits() {
        let out = tiny_output();
        assert!(
            out.stats.hits > 0,
            "popular objects must produce cache hits"
        );
        let ratio = out.stats.cacheable_hit_ratio().unwrap();
        assert!(ratio > 0.2, "cacheable hit ratio {ratio}");
    }

    #[test]
    fn uncacheable_objects_never_hit() {
        let w = build(&WorkloadConfig::tiny(3));
        let out = run_default(&w, &SimConfig::default());
        // Every record for an uncacheable object must be NotCacheable.
        for view in out.trace.iter() {
            let obj = w
                .objects
                .iter()
                .find(|o| o.url == view.url)
                .expect("object exists");
            if !obj.cacheable {
                assert_eq!(view.record.cache, CacheStatus::NotCacheable);
            } else {
                assert_ne!(view.record.cache, CacheStatus::NotCacheable);
            }
        }
    }

    #[test]
    fn json_uncacheable_share_matches_workload_plant() {
        let out = tiny_output();
        let share = out.stats.json_uncacheable_share().unwrap();
        assert!((0.40..0.75).contains(&share), "uncacheable share {share}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let w = build(&WorkloadConfig::tiny(5));
        let a = run_default(&w, &SimConfig::default());
        let b = run_default(&w, &SimConfig::default());
        assert_eq!(a.trace.records(), b.trace.records());
        assert_eq!(a.stats.hits, b.stats.hits);
    }

    #[test]
    fn sharded_run_matches_the_sequential_run() {
        let w = build(&WorkloadConfig::tiny(21));
        let config = SimConfig {
            edges: 4,
            error_fraction: 0.02, // exercise the retry path too
            ..SimConfig::default()
        };
        let sequential = run_default(&w, &config);
        for threads in [2, 4] {
            let sharded = run_sharded(&w, &config, threads);
            assert_eq!(
                sequential.trace.records(),
                sharded.trace.records(),
                "{threads} threads"
            );
            assert_eq!(sequential.stats.requests, sharded.stats.requests);
            assert_eq!(sequential.stats.hits, sharded.stats.hits);
            assert_eq!(sequential.stats.misses, sharded.stats.misses);
            assert_eq!(
                sequential.stats.retries_issued,
                sharded.stats.retries_issued
            );
            assert_eq!(
                sequential.stats.end_user_failures,
                sharded.stats.end_user_failures
            );
            assert_eq!(
                sequential.stats.latency_normal.count(),
                sharded.stats.latency_normal.count()
            );
            // Per-edge observability counters are part of the determinism
            // contract: the merged per-edge snapshots must be byte-identical
            // to the combined run's snapshot.
            assert_eq!(
                sequential.metrics.counters_json(),
                sharded.metrics.counters_json(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn metrics_counters_mirror_sim_stats() {
        let w = build(&WorkloadConfig::tiny(29));
        let config = SimConfig {
            edges: 3,
            error_fraction: 0.02,
            ..SimConfig::default()
        };
        let out = run_default(&w, &config);
        let total = |name: &str| out.metrics.counter_prefix_sum(name);
        assert_eq!(total("sim.requests{"), out.stats.requests);
        assert_eq!(total("sim.hits{"), out.stats.hits);
        assert_eq!(total("sim.misses{"), out.stats.misses);
        assert_eq!(total("sim.stale_serves{"), out.stats.stale_serves);
        assert_eq!(total("sim.coalesced{"), out.stats.coalesced_waits);
        assert_eq!(total("sim.retries{"), out.stats.retries_issued);
        assert_eq!(total("sim.origin_errors{"), out.stats.origin_errors);
        // More than one edge actually served traffic.
        let edges_hit = out
            .metrics
            .counters()
            .filter(|(k, _)| k.starts_with("sim.requests{"))
            .count();
        assert!(edges_hit > 1, "expected traffic on multiple edges");
    }

    #[test]
    fn sharded_run_falls_back_when_edges_share_state() {
        let w = build(&WorkloadConfig::tiny(23));
        // A parent tier couples the edges; run_sharded must produce the
        // sequential result (by falling back), not a diverging one.
        let config = SimConfig {
            parent_cache: Some(1 << 30),
            ..SimConfig::default()
        };
        let sequential = run_default(&w, &config);
        let sharded = run_sharded(&w, &config, 4);
        assert_eq!(sequential.trace.records(), sharded.trace.records());
        assert_eq!(sequential.stats.parent_hits, sharded.stats.parent_hits);
    }

    #[test]
    fn prefetch_policy_improves_hit_ratio() {
        // A clairvoyant policy that prefetches the manifest children the
        // moment the manifest is requested.
        struct Oracle<'w> {
            workload: &'w Workload,
        }
        impl Policy for Oracle<'_> {
            fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome {
                let prefetch = self
                    .workload
                    .truth
                    .manifest_children
                    .get(&ctx.object)
                    .cloned()
                    .unwrap_or_default();
                PolicyOutcome {
                    prefetch,
                    priority: Priority::Normal,
                }
            }
        }
        let w = build(&WorkloadConfig::tiny(7));
        let base = run_default(&w, &SimConfig::default());
        let mut oracle = Oracle { workload: &w };
        let boosted = run(&w, &SimConfig::default(), &mut oracle);
        assert!(boosted.stats.prefetch_issued > 0);
        assert!(
            boosted.stats.prefetch_useful > 0,
            "prefetched entries must be used"
        );
        assert!(
            boosted.stats.cacheable_hit_ratio().unwrap()
                > base.stats.cacheable_hit_ratio().unwrap(),
            "prefetching must lift hit ratio: {} vs {}",
            boosted.stats.cacheable_hit_ratio().unwrap(),
            base.stats.cacheable_hit_ratio().unwrap()
        );
    }

    #[test]
    fn deprioritized_requests_wait_longer_under_load() {
        // Deprioritize periodic machine traffic; under a saturated edge the
        // normal class must see lower latency.
        struct Depri<'w> {
            workload: &'w Workload,
        }
        impl Policy for Depri<'_> {
            fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome {
                let machine = self
                    .workload
                    .truth
                    .periodic_pairs
                    .contains_key(&(ctx.client, ctx.object));
                PolicyOutcome {
                    prefetch: Vec::new(),
                    priority: if machine {
                        Priority::Deprioritized
                    } else {
                        Priority::Normal
                    },
                }
            }
        }
        let w = build(&WorkloadConfig::tiny(9));
        // One edge sized to ~120% utilization for this workload → real,
        // persistent queueing regardless of calibration tweaks upstream.
        let service_us =
            (1.2 * w.config.duration.as_secs_f64() / w.events.len() as f64 * 1e6) as u64;
        let config = SimConfig {
            edges: 1,
            service_base: SimDuration::from_micros(service_us.max(1)),
            service_per_kb: SimDuration::ZERO,
            ..SimConfig::default()
        };
        let mut policy = Depri { workload: &w };
        let out = run(&w, &config, &mut policy);
        let normal = out.stats.latency_normal.mean().unwrap();
        let depri = out.stats.latency_depri.mean().unwrap();
        assert!(
            depri > normal,
            "deprioritized mean {depri} must exceed normal mean {normal}"
        );
    }

    #[test]
    fn single_edge_vs_many_edges_conserves_requests() {
        let w = build(&WorkloadConfig::tiny(11));
        for edges in [1, 2, 8] {
            let out = run_default(
                &w,
                &SimConfig {
                    edges,
                    ..SimConfig::default()
                },
            );
            assert_eq!(out.stats.logical_requests(), w.events.len() as u64);
        }
    }

    #[test]
    fn parent_tier_absorbs_cross_edge_misses() {
        let w = build(&WorkloadConfig::tiny(15));
        let flat = run_default(&w, &SimConfig::default());
        let tiered = run_default(
            &w,
            &SimConfig {
                parent_cache: Some(1 << 30),
                ..SimConfig::default()
            },
        );
        assert!(
            tiered.stats.parent_hits > 0,
            "shared objects hit the parent"
        );
        assert_eq!(
            tiered.stats.parent_hits + tiered.stats.parent_misses,
            tiered.stats.misses
        );
        // Edge-level hit counts are identical; the parent only changes
        // where misses are served from.
        assert_eq!(flat.stats.hits, tiered.stats.hits);
        assert!(
            tiered.stats.origin_fetches < flat.stats.origin_fetches,
            "the parent tier must offload the origin: {} vs {}",
            tiered.stats.origin_fetches,
            flat.stats.origin_fetches
        );
    }

    #[test]
    fn error_fraction_produces_5xx() {
        let w = build(&WorkloadConfig::tiny(13));
        let out = run_default(
            &w,
            &SimConfig {
                error_fraction: 0.05,
                ..SimConfig::default()
            },
        );
        let errors = out
            .trace
            .records()
            .iter()
            .filter(|r| r.status == 500)
            .count();
        let share = errors as f64 / out.trace.len() as f64;
        assert!((0.03..0.07).contains(&share), "error share {share}");
    }
}
