//! The event-driven simulation engine.
//!
//! ## Shared-tier determinism
//!
//! With a [`CacheHierarchy`] that has shared tiers, the engine runs under
//! the epoch discipline described in [`crate::hierarchy`]: simulated time
//! is cut into `sync_interval` epochs; within an epoch every shared-tier
//! lookup reads the epoch-start snapshot and mutations are logged; at the
//! boundary the log is applied in `(time, edge, eseq)` order. The
//! sequential combined loop and the per-edge lockstep parallel driver
//! ([`run_sharded`]) cut identical epochs and apply identical sorted
//! logs, so their outputs are byte-identical.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Mutex;

use jcdn_obs::metrics::{key, MetricsSnapshot};
use jcdn_obs::timeseries::{WindowSpec, WindowedCounters};
use jcdn_stats::Summary;
use jcdn_trace::{
    CacheStatus, ClientId, LogRecord, MimeType, RecordFlags, SimDuration, SimTime, Trace, UaId,
    UrlId,
};
use jcdn_workload::{ClientInfo, ObjectInfo, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::collections::HashMap;

use crate::cache::{Lookup, PolicyCache};
use crate::fault::{FaultPlan, FaultState, ResilienceConfig};
use crate::hierarchy::{
    flush_accesses, AccessKind, CacheHierarchy, Placement, SharedTier, TierAccess, MAX_SHARED_TIERS,
};
use crate::latency::LatencyModel;

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of edge servers (the paper's long-term dataset covers three
    /// vantage points).
    pub edges: usize,
    /// Per-edge cache capacity in bytes. Ignored when [`SimConfig::hierarchy`]
    /// is set (the hierarchy's edge tier wins).
    pub cache_capacity: u64,
    /// Compat alias for a 2-level LRU hierarchy: when set (and
    /// [`SimConfig::hierarchy`] is not), cacheable edge misses consult a
    /// shared regional parent of this many bytes before the origin —
    /// equivalent to [`CacheHierarchy::with_parent`].
    pub parent_cache: Option<u64>,
    /// Full N-level cache hierarchy. Takes precedence over
    /// [`SimConfig::cache_capacity`] and [`SimConfig::parent_cache`].
    pub hierarchy: Option<CacheHierarchy>,
    /// Network delays.
    pub latency: LatencyModel,
    /// Fixed CPU cost of handling one request at the edge.
    pub service_base: SimDuration,
    /// Additional CPU cost per KiB of response ("a large chunk of the total
    /// request cost is tied to CPU request processing", §4).
    pub service_per_kb: SimDuration,
    /// Fraction of requests that fail with a 5xx, drawn independently per
    /// attempt. Superseded by [`FaultPlan::errors`] when that is set.
    pub error_fraction: f64,
    /// Injected faults: outages, degradations, edge flaps, error bursts.
    pub fault: FaultPlan,
    /// Client retry policy and edge graceful degradation.
    pub resilience: ResilienceConfig,
    /// RNG seed (response sizes, latency jitter, errors).
    pub seed: u64,
    /// When set, the simulator also accumulates per-window edge/tier
    /// counters over the simulated timeline ([`SimOutput::series`]).
    /// Windowing is pure observation: it never changes the trace or the
    /// run-total stats, and the per-window counters are byte-identical
    /// across shard/thread counts (buckets are keyed by simulated arrival
    /// time, which no schedule can move).
    pub window: Option<WindowSpec>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            edges: 3,
            cache_capacity: 256 << 20,
            parent_cache: None,
            hierarchy: None,
            latency: LatencyModel::default(),
            service_base: SimDuration::from_micros(200),
            service_per_kb: SimDuration::from_micros(20),
            error_fraction: 0.004,
            fault: FaultPlan::default(),
            resilience: ResilienceConfig::default(),
            seed: 0x5eed,
            window: None,
        }
    }
}

impl SimConfig {
    /// The effective hierarchy: [`SimConfig::hierarchy`] when set, else the
    /// `parent_cache` compat alias, else a single edge tier of
    /// [`SimConfig::cache_capacity`] bytes.
    pub fn resolved_hierarchy(&self) -> CacheHierarchy {
        match &self.hierarchy {
            Some(h) => h.clone(),
            None => match self.parent_cache {
                Some(cap) => CacheHierarchy::with_parent(self.cache_capacity, cap),
                None => CacheHierarchy::single(self.cache_capacity),
            },
        }
    }
}

/// Scheduling priority of a request at the edge.
///
/// §5.1/§7 of the paper propose deprioritizing machine-to-machine traffic
/// "since a human is not waiting for the response"; the service queue
/// serves all `Normal` requests before any `Deprioritized` one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Human-facing traffic (served first).
    #[default]
    Normal,
    /// Machine-to-machine traffic (served when no normal work waits).
    Deprioritized,
}

/// What a [`Policy`] decides about one request.
#[derive(Clone, Debug, Default)]
pub struct PolicyOutcome {
    /// Objects to prefetch into this edge's cache.
    pub prefetch: Vec<u32>,
    /// The request's scheduling priority.
    pub priority: Priority,
}

/// Everything a policy can see about one arriving request.
#[derive(Debug)]
pub struct RequestCtx<'a> {
    /// Arrival time.
    pub time: SimTime,
    /// Client index.
    pub client: u32,
    /// Requested object index.
    pub object: u32,
    /// Edge the request was routed to.
    pub edge: usize,
    /// The object universe.
    pub objects: &'a [ObjectInfo],
    /// The client population.
    pub clients: &'a [ClientInfo],
    /// Whether the object is already resident in this edge's cache.
    pub cache_resident: bool,
}

/// A per-request hook: prefetching, deprioritization, anomaly scoring.
pub trait Policy {
    /// Called for every arriving request, before cache lookup.
    fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome;
}

/// The default policy: no prefetch, everything `Normal`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopPolicy;

impl Policy for NoopPolicy {
    fn on_request(&mut self, _ctx: &RequestCtx<'_>) -> PolicyOutcome {
        PolicyOutcome::default()
    }
}

/// Aggregate simulation statistics.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Requests served.
    pub requests: u64,
    /// Cacheable requests served from edge cache.
    pub hits: u64,
    /// Cacheable requests fetched from origin.
    pub misses: u64,
    /// Requests for uncacheable objects (tunneled to origin).
    pub not_cacheable: u64,
    /// Total origin round trips (misses + uncacheable + prefetches).
    pub origin_fetches: u64,
    /// Per-shared-tier hits: `tier_hits[t]` counts cacheable edge misses
    /// served by shared tier `t` (0 = nearest the edge). Empty without
    /// shared tiers.
    pub tier_hits: Vec<u64>,
    /// Per-shared-tier misses: `tier_misses[t]` counts lookups that walked
    /// past tier `t` to a deeper tier or the origin. The last element is
    /// the fall-through-to-origin count.
    pub tier_misses: Vec<u64>,
    /// Prefetches issued by the policy.
    pub prefetch_issued: u64,
    /// Prefetches that completed and were inserted.
    pub prefetch_completed: u64,
    /// Demand hits on prefetched entries (usefulness numerator).
    pub prefetch_useful: u64,
    /// Response bytes served from cache.
    pub bytes_cache: u64,
    /// Response bytes fetched from origin (incl. prefetch).
    pub bytes_origin: u64,
    /// JSON-only counters (the paper's cacheability numbers are JSON-only).
    pub json_requests: u64,
    /// JSON requests served from cache.
    pub json_hits: u64,
    /// JSON cacheable requests that missed.
    pub json_misses: u64,
    /// JSON uncacheable requests.
    pub json_not_cacheable: u64,
    /// End-to-end latency of `Normal` requests (seconds).
    pub latency_normal: Summary,
    /// End-to-end latency of `Deprioritized` requests (seconds).
    pub latency_depri: Summary,
    /// Retries scheduled by failed attempts (each adds one log record).
    pub retries_issued: u64,
    /// 5xx responses with no retry after them — failures the end user saw.
    pub end_user_failures: u64,
    /// Responses answered with an expired entry inside the stale-if-error
    /// grace window because the origin was unavailable.
    pub stale_serves: u64,
    /// Lookups answered by the negative cache (fast 5xx or stale serve)
    /// without re-contacting a known-bad origin.
    pub neg_cache_serves: u64,
    /// Cache hits that had to wait for an in-flight origin fetch of the
    /// same object (request coalescing).
    pub coalesced_waits: u64,
    /// Origin attempts that failed: hard outage (503), degradation tripping
    /// the origin timeout (504), or a stochastic error (500).
    pub origin_errors: u64,
}

impl SimStats {
    /// Hit ratio over cacheable traffic.
    pub fn cacheable_hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Hit ratio over all traffic (uncacheable requests count as misses —
    /// the operator's view of origin offload).
    pub fn overall_hit_ratio(&self) -> Option<f64> {
        (self.requests > 0).then(|| self.hits as f64 / self.requests as f64)
    }

    /// JSON-only uncacheable share (paper: ~55%).
    pub fn json_uncacheable_share(&self) -> Option<f64> {
        (self.json_requests > 0).then(|| self.json_not_cacheable as f64 / self.json_requests as f64)
    }

    /// Cacheable edge misses served by any shared tier — the old
    /// parent-tier hit counter, generalized over N tiers.
    pub fn parent_hits(&self) -> u64 {
        self.tier_hits.iter().sum()
    }

    /// Cacheable edge misses that fell through every shared tier to the
    /// origin — the old parent-tier miss counter, generalized.
    pub fn parent_misses(&self) -> u64 {
        self.tier_misses.last().copied().unwrap_or(0)
    }

    /// Hit ratio of shared tier `t` over the lookups that reached it.
    pub fn tier_hit_ratio(&self, t: usize) -> Option<f64> {
        let hits = self.tier_hits.get(t).copied()?;
        let reached = hits + self.tier_misses.get(t).copied()?;
        (reached > 0).then(|| hits as f64 / reached as f64)
    }

    /// Logical requests: attempts minus the retries that re-entered the
    /// queue (i.e. the number of workload events served).
    pub fn logical_requests(&self) -> u64 {
        self.requests.saturating_sub(self.retries_issued)
    }

    /// Share of logical requests whose final answer was a 5xx.
    pub fn end_user_error_rate(&self) -> Option<f64> {
        let logical = self.logical_requests();
        (logical > 0).then(|| self.end_user_failures as f64 / logical as f64)
    }

    /// Attempts per logical request (1.0 = no retrying).
    pub fn retry_amplification(&self) -> Option<f64> {
        let logical = self.logical_requests();
        (logical > 0).then(|| self.requests as f64 / logical as f64)
    }

    /// Adds `other`'s counters and latency summaries into `self`. Every
    /// integer counter merges exactly (tier vectors merge elementwise);
    /// the latency [`Summary`]s combine via their own merge (counts exact,
    /// moments to float precision).
    pub fn merge(&mut self, other: &SimStats) {
        self.requests += other.requests;
        self.hits += other.hits;
        self.misses += other.misses;
        self.not_cacheable += other.not_cacheable;
        self.origin_fetches += other.origin_fetches;
        merge_tier_counts(&mut self.tier_hits, &other.tier_hits);
        merge_tier_counts(&mut self.tier_misses, &other.tier_misses);
        self.prefetch_issued += other.prefetch_issued;
        self.prefetch_completed += other.prefetch_completed;
        self.prefetch_useful += other.prefetch_useful;
        self.bytes_cache += other.bytes_cache;
        self.bytes_origin += other.bytes_origin;
        self.json_requests += other.json_requests;
        self.json_hits += other.json_hits;
        self.json_misses += other.json_misses;
        self.json_not_cacheable += other.json_not_cacheable;
        self.latency_normal.merge(&other.latency_normal);
        self.latency_depri.merge(&other.latency_depri);
        self.retries_issued += other.retries_issued;
        self.end_user_failures += other.end_user_failures;
        self.stale_serves += other.stale_serves;
        self.neg_cache_serves += other.neg_cache_serves;
        self.coalesced_waits += other.coalesced_waits;
        self.origin_errors += other.origin_errors;
    }
}

/// Elementwise add, growing `into` to `from`'s length first.
fn merge_tier_counts(into: &mut Vec<u64>, from: &[u64]) {
    if into.len() < from.len() {
        into.resize(from.len(), 0);
    }
    for (dst, src) in into.iter_mut().zip(from) {
        *dst += src;
    }
}

/// The simulator's output: the edge logs and the aggregate stats.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Request logs in arrival order (§3.1 schema).
    pub trace: Trace,
    /// Aggregate counters and latency summaries.
    pub stats: SimStats,
    /// Per-edge observability counters (`sim.hits{edge=0}`, …), keyed for
    /// the run manifest. Deterministic: every stream behind them is
    /// per-edge seeded, so the snapshot is identical for any shard or
    /// thread count (`merge` across per-edge runs equals the combined
    /// run's snapshot).
    pub metrics: MetricsSnapshot,
    /// Per-window edge/tier counters over the simulated timeline, present
    /// when [`SimConfig::window`] was set. Same key vocabulary as
    /// [`SimOutput::metrics`], bucketed by request arrival time; the
    /// per-window rows carry everything rolling availability needs
    /// (`sim.requests`, `sim.retries`, `sim.end_user_failures` per edge).
    /// Deterministic for the same reason the run totals are.
    pub series: Option<WindowedCounters>,
}

/// Per-edge counter deltas captured around one request completion, so the
/// counters mirror `SimStats` exactly without re-instrumenting every
/// branch of `complete_request`.
#[derive(Clone, Copy, Default)]
struct StatsMark {
    hits: u64,
    misses: u64,
    not_cacheable: u64,
    tier_hits: [u64; MAX_SHARED_TIERS],
    tier_misses: [u64; MAX_SHARED_TIERS],
    stale_serves: u64,
    neg_cache_serves: u64,
    coalesced_waits: u64,
    retries_issued: u64,
    origin_errors: u64,
    end_user_failures: u64,
}

/// Copies a tier-count vector into the fixed mark array.
fn tier_array(counts: &[u64]) -> [u64; MAX_SHARED_TIERS] {
    let mut a = [0u64; MAX_SHARED_TIERS];
    for (dst, src) in a.iter_mut().zip(counts) {
        *dst = *src;
    }
    a
}

impl StatsMark {
    fn capture(stats: &SimStats) -> StatsMark {
        StatsMark {
            hits: stats.hits,
            misses: stats.misses,
            not_cacheable: stats.not_cacheable,
            tier_hits: tier_array(&stats.tier_hits),
            tier_misses: tier_array(&stats.tier_misses),
            stale_serves: stats.stale_serves,
            neg_cache_serves: stats.neg_cache_serves,
            coalesced_waits: stats.coalesced_waits,
            retries_issued: stats.retries_issued,
            origin_errors: stats.origin_errors,
            end_user_failures: stats.end_user_failures,
        }
    }

    /// Adds `stats - self` into `edge`'s counter tallies.
    fn attribute(&self, stats: &SimStats, edge: &mut EdgeCounters) {
        edge.requests += 1;
        edge.hits += stats.hits - self.hits;
        edge.misses += stats.misses - self.misses;
        edge.not_cacheable += stats.not_cacheable - self.not_cacheable;
        let now_hits = tier_array(&stats.tier_hits);
        let now_misses = tier_array(&stats.tier_misses);
        for t in 0..MAX_SHARED_TIERS {
            edge.tier_hits[t] += now_hits[t] - self.tier_hits[t];
            edge.tier_misses[t] += now_misses[t] - self.tier_misses[t];
        }
        edge.stale_serves += stats.stale_serves - self.stale_serves;
        edge.neg_cache_serves += stats.neg_cache_serves - self.neg_cache_serves;
        edge.coalesced_waits += stats.coalesced_waits - self.coalesced_waits;
        edge.retries_issued += stats.retries_issued - self.retries_issued;
        edge.origin_errors += stats.origin_errors - self.origin_errors;
        edge.end_user_failures += stats.end_user_failures - self.end_user_failures;
    }
}

/// One edge's observability tallies for the run manifest.
#[derive(Clone, Copy, Default)]
struct EdgeCounters {
    requests: u64,
    hits: u64,
    misses: u64,
    not_cacheable: u64,
    tier_hits: [u64; MAX_SHARED_TIERS],
    tier_misses: [u64; MAX_SHARED_TIERS],
    stale_serves: u64,
    neg_cache_serves: u64,
    coalesced_waits: u64,
    retries_issued: u64,
    origin_errors: u64,
    end_user_failures: u64,
}

impl EdgeCounters {
    /// Converts the tallies into labeled snapshot counters. Zero-valued
    /// counters create no keys, so per-edge subset runs merge to exactly
    /// the combined run's snapshot.
    fn record_into(&self, edge: usize, snapshot: &mut MetricsSnapshot) {
        let e = edge as u64;
        snapshot.inc(&key("sim.requests", &[("edge", e)]), self.requests);
        snapshot.inc(&key("sim.hits", &[("edge", e)]), self.hits);
        snapshot.inc(&key("sim.misses", &[("edge", e)]), self.misses);
        snapshot.inc(
            &key("sim.not_cacheable", &[("edge", e)]),
            self.not_cacheable,
        );
        for (t, (&th, &tm)) in self.tier_hits.iter().zip(&self.tier_misses).enumerate() {
            let t = t as u64;
            snapshot.inc(&key("cache.tier_hits", &[("edge", e), ("tier", t)]), th);
            snapshot.inc(&key("cache.tier_misses", &[("edge", e), ("tier", t)]), tm);
        }
        snapshot.inc(&key("sim.stale_serves", &[("edge", e)]), self.stale_serves);
        snapshot.inc(
            &key("sim.neg_cache_serves", &[("edge", e)]),
            self.neg_cache_serves,
        );
        snapshot.inc(&key("sim.coalesced", &[("edge", e)]), self.coalesced_waits);
        snapshot.inc(&key("sim.retries", &[("edge", e)]), self.retries_issued);
        snapshot.inc(
            &key("sim.origin_errors", &[("edge", e)]),
            self.origin_errors,
        );
        snapshot.inc(
            &key("sim.end_user_failures", &[("edge", e)]),
            self.end_user_failures,
        );
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum InternalEvent {
    /// Edge server finished the CPU service of a queued request.
    ServiceDone { edge: usize },
    /// A prefetch fetch returned from origin.
    PrefetchDone { edge: usize, object: u32 },
    /// A client re-issues a failed request after backing off.
    Retry {
        widx: usize,
        attempt: u8,
        priority: Priority,
    },
}

/// A queued request: (priority, arrival, seq, workload index, attempt).
type QueuedRequest = (Priority, SimTime, u64, usize, u8);

struct Edge {
    cache: PolicyCache<u32>,
    busy_until: SimTime,
    /// Waiting requests, served in priority-then-arrival order.
    queue: BinaryHeap<Reverse<QueuedRequest>>,
    /// Request currently in service.
    in_service: Option<(usize, SimTime, Priority, u8)>,
    /// Origin-unavailability verdicts: object → (valid until, status).
    neg_cache: HashMap<u32, (SimTime, u16)>,
    /// Outstanding origin fetches: object → completion time, for request
    /// coalescing.
    in_flight: HashMap<u32, SimTime>,
}

/// Routes a request to an edge, skipping edges that are flapped out of
/// rotation at `t`. With no flaps this is the plain `hash % edges` of the
/// original simulator; when every edge is down, routing falls back to it
/// too (the request has to land somewhere).
fn route_edge(fault: &FaultPlan, edges: usize, ip_hash: u64, t: SimTime) -> usize {
    if fault.flaps.is_empty() {
        return (ip_hash % edges as u64) as usize;
    }
    let up: Vec<usize> = (0..edges).filter(|&e| !fault.edge_down(e, t)).collect();
    if up.is_empty() {
        return (ip_hash % edges as u64) as usize;
    }
    up[(ip_hash % up.len() as u64) as usize]
}

/// Derives a statistically independent per-edge stream seed from the base
/// seed (SplitMix64 finalizer over a golden-ratio stride).
fn edge_seed(seed: u64, edge: usize) -> u64 {
    let mut z = seed.wrapping_add((edge as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Smallest epoch boundary strictly after `t`.
fn next_epoch_boundary(t: SimTime, interval: SimDuration) -> SimTime {
    let iv = interval.as_micros().max(1);
    SimTime::from_micros((t.as_micros() / iv + 1).saturating_mul(iv))
}

/// Runs the workload through the simulated CDN with the given policy.
pub fn run(workload: &Workload, config: &SimConfig, policy: &mut dyn Policy) -> SimOutput {
    run_inner(workload, config, policy, None)
}

/// The per-run simulation state: every edge's caches, queues and RNG
/// streams, the event heap, the arrival cursor, and the shared-tier access
/// log. Extracted from the old monolithic loop so the combined sequential
/// run and the per-edge lockstep parallel run drive identical code.
struct Machine<'w> {
    workload: &'w Workload,
    config: &'w SimConfig,
    only_edge: Option<usize>,
    placement: Placement,
    edge_ttl_cap: Option<SimDuration>,
    edge_counters: Vec<EdgeCounters>,
    /// Per-edge, per-window tallies (bucket index → counters), filled only
    /// when [`SimConfig::window`] is set. Buckets key off the attempt's
    /// arrival time, so the tally is schedule-independent like
    /// `edge_counters`.
    window_tallies: Vec<std::collections::BTreeMap<u64, EdgeCounters>>,
    rngs: Vec<StdRng>,
    fault_states: Vec<FaultState>,
    stats: SimStats,
    edges: Vec<Edge>,
    trace: Trace,
    url_ids: Vec<UrlId>,
    ua_ids: Vec<Option<UaId>>,
    heap: BinaryHeap<Reverse<(SimTime, u64, InternalEvent)>>,
    seq: u64,
    next_arrival: usize,
    /// Shared-tier mutations recorded this epoch.
    tier_log: Vec<TierAccess>,
    /// Per-edge monotone sequence for tier-log ordering.
    eseqs: Vec<u64>,
}

impl<'w> Machine<'w> {
    fn new(
        workload: &'w Workload,
        config: &'w SimConfig,
        hierarchy: &CacheHierarchy,
        only_edge: Option<usize>,
    ) -> Machine<'w> {
        assert!(config.edges > 0, "need at least one edge");
        let shared = hierarchy.shared.len();
        let stats = SimStats {
            tier_hits: vec![0; shared],
            tier_misses: vec![0; shared],
            ..SimStats::default()
        };
        // Pre-intern all strings so ids are stable and independent of
        // policy decisions.
        let mut trace = Trace::with_capacity(workload.events.len());
        let url_ids: Vec<UrlId> = workload
            .objects
            .iter()
            .map(|o| trace.intern_url(&o.url))
            .collect();
        let ua_ids: Vec<Option<UaId>> = workload
            .clients
            .iter()
            .map(|c| c.ua.as_deref().map(|ua| trace.intern_ua(ua)))
            .collect();
        Machine {
            workload,
            config,
            only_edge,
            placement: hierarchy.placement,
            edge_ttl_cap: hierarchy.edge.ttl_cap,
            edge_counters: vec![EdgeCounters::default(); config.edges],
            window_tallies: vec![std::collections::BTreeMap::new(); config.edges],
            rngs: (0..config.edges)
                .map(|e| StdRng::seed_from_u64(edge_seed(config.seed, e)))
                .collect(),
            // The fault/error stream is separate from the main streams so
            // enabling bursts or faults never perturbs size and latency
            // draws.
            fault_states: (0..config.edges)
                .map(|e| FaultState::new(edge_seed(config.seed ^ 0xFAD7_5EED, e)))
                .collect(),
            stats,
            edges: (0..config.edges)
                .map(|e| Edge {
                    cache: PolicyCache::with_policy(
                        hierarchy.edge.capacity,
                        hierarchy.edge.policy,
                        edge_seed(config.seed ^ 0xCAC4_E5EE, e),
                    ),
                    busy_until: SimTime::ZERO,
                    queue: BinaryHeap::new(),
                    in_service: None,
                    neg_cache: HashMap::new(),
                    in_flight: HashMap::new(),
                })
                .collect(),
            trace,
            url_ids,
            ua_ids,
            heap: BinaryHeap::new(),
            seq: 0,
            next_arrival: 0,
            tier_log: Vec::new(),
            eseqs: vec![0; config.edges],
        }
    }

    /// Time of the next event this machine would process, arrival or
    /// internal. For a per-edge machine this may name an arrival that will
    /// be skipped (routed elsewhere) — which is exactly what the epoch
    /// driver needs: every machine reports the same global arrival head,
    /// so all modes compute identical epoch boundaries.
    fn next_time(&self) -> Option<SimTime> {
        let arrival = self.workload.events.get(self.next_arrival).map(|e| e.time);
        let internal = self.heap.peek().map(|Reverse((t, _, _))| *t);
        match (arrival, internal) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(i)) => Some(i),
            (Some(a), Some(i)) => Some(a.min(i)),
        }
    }

    /// Takes this epoch's shared-tier access log.
    fn drain_tier_log(&mut self) -> Vec<TierAccess> {
        std::mem::take(&mut self.tier_log)
    }

    /// Processes events with `time < limit` (all remaining events when
    /// `limit` is `None`). Shared-tier lookups read `tiers` as an
    /// immutable epoch snapshot; mutations land in the tier log.
    fn run_until(&mut self, policy: &mut dyn Policy, tiers: &[SharedTier], limit: Option<SimTime>) {
        let workload = self.workload;
        let config = self.config;
        loop {
            // Pick the earlier of the next arrival and the next internal
            // event.
            let arrival_time = workload.events.get(self.next_arrival).map(|e| e.time);
            let internal_time = self.heap.peek().map(|Reverse((t, _, _))| *t);
            let take_arrival = match (arrival_time, internal_time) {
                (None, None) => break,
                (Some(at), None) => {
                    if limit.is_some_and(|l| at >= l) {
                        break;
                    }
                    true
                }
                (None, Some(it)) => {
                    if limit.is_some_and(|l| it >= l) {
                        break;
                    }
                    false
                }
                (Some(at), Some(it)) => {
                    if limit.is_some_and(|l| at.min(it) >= l) {
                        break;
                    }
                    at <= it
                }
            };
            match take_arrival {
                true => {
                    let widx = self.next_arrival;
                    self.next_arrival += 1;
                    let event = &workload.events[widx];
                    let edge_idx = route_edge(
                        &config.fault,
                        config.edges,
                        workload.clients[event.client as usize].ip_hash,
                        event.time,
                    );
                    if self.only_edge.is_some_and(|e| e != edge_idx) {
                        continue;
                    }

                    let ctx = RequestCtx {
                        time: event.time,
                        client: event.client,
                        object: event.object,
                        edge: edge_idx,
                        objects: &workload.objects,
                        clients: &workload.clients,
                        cache_resident: self.edges[edge_idx].cache.peek(event.object, event.time),
                    };
                    let outcome = policy.on_request(&ctx);

                    // Issue prefetches: only cacheable, non-resident objects.
                    for target in outcome.prefetch {
                        let tobj = &workload.objects[target as usize];
                        if !tobj.cacheable || self.edges[edge_idx].cache.peek(target, event.time) {
                            continue;
                        }
                        self.stats.prefetch_issued += 1;
                        let size = tobj.sample_size(&mut self.rngs[edge_idx]);
                        self.stats.bytes_origin += size;
                        self.stats.origin_fetches += 1;
                        let done = event.time
                            + config.latency.origin_fetch(size, &mut self.rngs[edge_idx]);
                        self.seq += 1;
                        self.heap.push(Reverse((
                            done,
                            self.seq,
                            InternalEvent::PrefetchDone {
                                edge: edge_idx,
                                object: target,
                            },
                        )));
                    }

                    self.edges[edge_idx].queue.push(Reverse((
                        outcome.priority,
                        event.time,
                        self.seq,
                        widx,
                        0,
                    )));
                    self.seq += 1;
                    dispatch(
                        &mut self.edges[edge_idx],
                        edge_idx,
                        event.time,
                        workload,
                        config,
                        &mut self.heap,
                        &mut self.seq,
                    );
                }
                false => {
                    let Some(Reverse((now, _, ev))) = self.heap.pop() else {
                        break;
                    };
                    match ev {
                        InternalEvent::PrefetchDone { edge, object } => {
                            let obj = &workload.objects[object as usize];
                            self.stats.prefetch_completed += 1;
                            // Insert only if still absent — a demand miss may
                            // have populated it meanwhile.
                            if !self.edges[edge].cache.peek(object, now) {
                                let size = obj.sample_size(&mut self.rngs[edge]);
                                self.edges[edge]
                                    .cache
                                    .insert(object, size, obj.ttl, now, true);
                            }
                        }
                        InternalEvent::Retry {
                            widx,
                            attempt,
                            priority,
                        } => {
                            // The client re-issues the request; routing
                            // happens afresh (the original edge may have
                            // flapped out).
                            let event = &workload.events[widx];
                            let edge_idx = route_edge(
                                &config.fault,
                                config.edges,
                                workload.clients[event.client as usize].ip_hash,
                                now,
                            );
                            self.edges[edge_idx]
                                .queue
                                .push(Reverse((priority, now, self.seq, widx, attempt)));
                            self.seq += 1;
                            dispatch(
                                &mut self.edges[edge_idx],
                                edge_idx,
                                now,
                                workload,
                                config,
                                &mut self.heap,
                                &mut self.seq,
                            );
                        }
                        InternalEvent::ServiceDone { edge } => {
                            let Some((widx, arrival, priority, attempt)) =
                                self.edges[edge].in_service.take()
                            else {
                                continue;
                            };
                            let mark = StatsMark::capture(&self.stats);
                            let mut tc = TierCtx {
                                tiers,
                                placement: self.placement,
                                edge_ttl_cap: self.edge_ttl_cap,
                                log: &mut self.tier_log,
                                eseq: &mut self.eseqs[edge],
                                edge_idx: edge as u32,
                            };
                            complete_request(
                                widx,
                                attempt,
                                arrival,
                                priority,
                                now,
                                workload,
                                config,
                                &mut self.edges[edge],
                                &mut tc,
                                &mut self.stats,
                                &mut self.trace,
                                &self.url_ids,
                                &self.ua_ids,
                                &mut self.rngs[edge],
                                &mut self.fault_states[edge],
                                &mut self.heap,
                                &mut self.seq,
                            );
                            mark.attribute(&self.stats, &mut self.edge_counters[edge]);
                            if let Some(spec) = &config.window {
                                // Same delta, windowed: the bucket keys off
                                // the attempt's simulated arrival time.
                                let bucket = spec.bucket_of(arrival.as_micros());
                                let tally = self.window_tallies[edge].entry(bucket).or_default();
                                mark.attribute(&self.stats, tally);
                            }
                            dispatch(
                                &mut self.edges[edge],
                                edge,
                                now,
                                workload,
                                config,
                                &mut self.heap,
                                &mut self.seq,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Folds edge-cache counters into the stats and metrics and produces
    /// the output (trace canonically sorted). Shared-tier metrics are NOT
    /// recorded here — the driver does that exactly once per run via
    /// [`record_tier_metrics`].
    fn finish(mut self) -> SimOutput {
        // Merge cache-level prefetch-hit counters.
        for edge in &self.edges {
            self.stats.prefetch_useful += edge.cache.stats().prefetch_hits;
        }

        // Canonical total-order sort: the log is time-sorted and the order
        // of equal-time records never depends on edge interleaving, so
        // per-edge subset runs concatenate to exactly this log.
        self.trace.sort_canonical();
        let mut metrics = MetricsSnapshot::default();
        for (e, counters) in self.edge_counters.iter().enumerate() {
            counters.record_into(e, &mut metrics);
        }
        for (e, edge) in self.edges.iter().enumerate() {
            record_cache_metrics(&mut metrics, &[("edge", e as u64)], edge.cache.stats());
        }
        let series = self.config.window.as_ref().map(|spec| {
            let mut series = WindowedCounters::new(*spec);
            for (e, buckets) in self.window_tallies.iter().enumerate() {
                for (&bucket, tally) in buckets {
                    let mut snapshot = MetricsSnapshot::new();
                    tally.record_into(e, &mut snapshot);
                    series.merge_bucket(bucket, &snapshot);
                }
            }
            series
        });
        SimOutput {
            trace: self.trace,
            stats: self.stats,
            metrics,
            series,
        }
    }
}

/// Records one cache's occupancy/eviction telemetry under `labels`.
/// Zero values are skipped entirely — `inc` drops them anyway, and the
/// gauge must not create a key for an idle cache, or per-edge subset runs
/// would merge to a different snapshot than the combined run.
fn record_cache_metrics(
    metrics: &mut MetricsSnapshot,
    labels: &[(&str, u64)],
    stats: crate::cache::CacheStats,
) {
    metrics.inc(&key("cache.evictions", labels), stats.evictions);
    metrics.inc(&key("cache.evicted_bytes", labels), stats.evicted_bytes);
    if stats.max_used_bytes > 0 {
        metrics.gauge_max(&key("cache.occupancy_bytes", labels), stats.max_used_bytes);
    }
}

/// Records the shared tiers' cache telemetry (hit/miss/expiry counters
/// plus occupancy and eviction gauges) labeled by tier index. Called
/// exactly once per run by whichever driver owns the tiers.
fn record_tier_metrics(metrics: &mut MetricsSnapshot, tiers: &[SharedTier]) {
    for (t, tier) in tiers.iter().enumerate() {
        let stats = tier.cache.stats();
        let labels = [("tier", t as u64)];
        record_cache_metrics(metrics, &labels, stats);
        metrics.inc(&key("cache.tier_expirations", &labels), stats.expirations);
    }
}

/// The engine behind [`run`] and [`run_sharded`]: when `only_edge` is set,
/// arrivals routed to any other edge are skipped, so the run simulates one
/// edge's subset of the workload.
///
/// Every stochastic stream (sizes, latency jitter, errors/faults) is
/// **per-edge**, derived from [`edge_seed`], and the final log sort is the
/// canonical total order — so simulating edges one subset at a time yields
/// the same records the combined run produces.
fn run_inner(
    workload: &Workload,
    config: &SimConfig,
    policy: &mut dyn Policy,
    only_edge: Option<usize>,
) -> SimOutput {
    let _span = match only_edge {
        Some(e) => jcdn_obs::span!("simulate.edge", edge = e as u64),
        None => jcdn_obs::span!("simulate.run"),
    };
    let hierarchy = config.resolved_hierarchy();
    let validation = hierarchy.validate();
    assert!(
        validation.is_ok(),
        "invalid cache hierarchy: {validation:?}"
    );
    let mut machine = Machine::new(workload, config, &hierarchy, only_edge);
    if hierarchy.shared.is_empty() {
        machine.run_until(policy, &[], None);
        return machine.finish();
    }

    // Epoch loop: process strictly inside each epoch against the frozen
    // tier snapshot, flush the access log at the boundary, fast-forward
    // to the epoch containing the next event.
    let mut tiers = SharedTier::build_all(&hierarchy, config.seed);
    let interval = hierarchy.sync_interval;
    let mut epoch_end = next_epoch_boundary(SimTime::ZERO, interval);
    loop {
        machine.run_until(policy, &tiers, Some(epoch_end));
        let mut log = machine.drain_tier_log();
        flush_accesses(&mut tiers, &mut log);
        let Some(next) = machine.next_time() else {
            break;
        };
        epoch_end = next_epoch_boundary(next, interval);
    }
    let mut out = machine.finish();
    record_tier_metrics(&mut out.metrics, &tiers);
    out
}

/// Runs with the no-op policy.
pub fn run_default(workload: &Workload, config: &SimConfig) -> SimOutput {
    run(workload, config, &mut NoopPolicy)
}

/// Runs the simulation with per-edge subsets fanned out over a
/// `threads`-wide worker pool, producing the same trace records and
/// integer counters as [`run_default`] (latency summaries match to float
/// merge precision).
///
/// Without shared tiers the per-edge subsets are fully independent and
/// run to completion concurrently. With shared tiers the per-edge
/// machines run in epoch lockstep against snapshot tiers (see
/// [`crate::hierarchy`]) — still byte-identical to the sequential run at
/// any thread count. Only edge flaps (dynamic routing) force the
/// sequential path, as do single-edge or single-thread runs.
pub fn run_sharded(workload: &Workload, config: &SimConfig, threads: usize) -> SimOutput {
    if threads <= 1 || config.edges <= 1 || !config.fault.flaps.is_empty() {
        return run_default(workload, config);
    }
    let hierarchy = config.resolved_hierarchy();
    if !hierarchy.shared.is_empty() {
        return run_sharded_hierarchy(workload, config, &hierarchy, threads);
    }
    let outputs = jcdn_exec::scatter_gather_labeled("sim.edges", config.edges, threads, |e| {
        run_inner(workload, config, &mut NoopPolicy, Some(e))
    });
    match merge_outputs(outputs) {
        Some(out) => out,
        None => run_default(workload, config),
    }
}

/// Merges per-edge outputs: stats and metrics add, records concatenate
/// and re-sort canonically. Every per-edge run pre-interns the full
/// object and client tables, so the interners are identical and records
/// concatenate directly.
fn merge_outputs(outputs: Vec<SimOutput>) -> Option<SimOutput> {
    let mut outputs = outputs.into_iter();
    let first = outputs.next()?;
    let mut stats = first.stats;
    let mut metrics = first.metrics;
    let mut series = first.series;
    let (interner, mut records) = first.trace.into_parts();
    for out in outputs {
        stats.merge(&out.stats);
        metrics.merge(&out.metrics);
        match (&mut series, out.series) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (slot @ None, theirs @ Some(_)) => *slot = theirs,
            _ => {}
        }
        records.extend(out.trace.into_parts().1);
    }
    let mut trace = Trace::from_parts(interner, records);
    trace.sort_canonical();
    Some(SimOutput {
        trace,
        stats,
        metrics,
        series,
    })
}

/// Locks a machine, recovering from a poisoned mutex (a panicked worker
/// task was already isolated and retried by the exec pool).
fn lock_machine<'a, 'w>(slot: &'a Mutex<Machine<'w>>) -> std::sync::MutexGuard<'a, Machine<'w>> {
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The epoch-lockstep parallel driver for hierarchies with shared tiers:
/// one [`Machine`] per edge, all advanced to the same epoch boundary in
/// parallel against the frozen tier snapshot; their access logs merge and
/// flush between epochs. Identical epoch cuts + identical sorted logs ⇒
/// output byte-identical to the sequential combined run.
fn run_sharded_hierarchy(
    workload: &Workload,
    config: &SimConfig,
    hierarchy: &CacheHierarchy,
    threads: usize,
) -> SimOutput {
    let _span = jcdn_obs::span!("simulate.hierarchy");
    let machines: Vec<Mutex<Machine<'_>>> = (0..config.edges)
        .map(|e| Mutex::new(Machine::new(workload, config, hierarchy, Some(e))))
        .collect();
    let mut tiers = SharedTier::build_all(hierarchy, config.seed);
    let interval = hierarchy.sync_interval;
    let mut epoch_end = next_epoch_boundary(SimTime::ZERO, interval);
    loop {
        let results =
            jcdn_exec::scatter_gather_labeled("sim.hierarchy.epoch", config.edges, threads, |e| {
                let mut machine = lock_machine(&machines[e]);
                machine.run_until(&mut NoopPolicy, &tiers, Some(epoch_end));
                (machine.drain_tier_log(), machine.next_time())
            });
        let mut log = Vec::new();
        let mut next: Option<SimTime> = None;
        for (part, n) in results {
            log.extend(part);
            next = match (next, n) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        flush_accesses(&mut tiers, &mut log);
        let Some(next) = next else {
            break;
        };
        epoch_end = next_epoch_boundary(next, interval);
    }
    let outputs: Vec<SimOutput> = machines
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .finish()
        })
        .collect();
    match merge_outputs(outputs) {
        Some(mut out) => {
            record_tier_metrics(&mut out.metrics, &tiers);
            out
        }
        None => run_default(workload, config),
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    edge: &mut Edge,
    edge_idx: usize,
    now: SimTime,
    workload: &Workload,
    config: &SimConfig,
    heap: &mut BinaryHeap<Reverse<(SimTime, u64, InternalEvent)>>,
    seq: &mut u64,
) {
    if edge.in_service.is_some() || now < edge.busy_until {
        return;
    }
    let Some(Reverse((priority, arrival, _, widx, attempt))) = edge.queue.pop() else {
        return;
    };
    let object = &workload.objects[workload.events[widx].object as usize];
    // CPU service cost: base + per-KiB of (expected) body.
    let kb = (object.size_median / 1024.0).ceil() as u64;
    let service = config.service_base
        + SimDuration::from_micros(config.service_per_kb.as_micros() * kb.max(1));
    let done = now + service;
    edge.busy_until = done;
    edge.in_service = Some((widx, arrival, priority, attempt));
    *seq += 1;
    heap.push(Reverse((
        done,
        *seq,
        InternalEvent::ServiceDone { edge: edge_idx },
    )));
}

/// How one origin attempt went (only evaluated when the origin is needed).
enum OriginAttempt {
    /// The origin answered; the response took `network` end to end.
    Reached { network: SimDuration },
    /// The origin was unreachable (503) or too slow (504); discovering that
    /// cost `latency`.
    Unavailable { status: u16, latency: SimDuration },
}

/// Attempts to reach `domain`'s origin at `now`, applying outages and
/// degradations from the fault plan. `nominal` is the healthy end-to-end
/// network latency the caller already sampled.
fn attempt_origin(
    config: &SimConfig,
    domain: u32,
    now: SimTime,
    nominal: SimDuration,
) -> OriginAttempt {
    if config.fault.outage_at(domain, now) {
        // Connection refused after one full round trip to the origin.
        return OriginAttempt::Unavailable {
            status: 503,
            latency: config.latency.client_edge_rtt + config.latency.edge_origin_rtt,
        };
    }
    match config.fault.degradation_at(domain, now) {
        None => OriginAttempt::Reached { network: nominal },
        Some(factor) => {
            let scaled = SimDuration::from_secs_f64(nominal.as_secs_f64() * factor);
            if scaled > config.resilience.origin_timeout {
                OriginAttempt::Unavailable {
                    status: 504,
                    latency: config.latency.client_edge_rtt + config.resilience.origin_timeout,
                }
            } else {
                OriginAttempt::Reached { network: scaled }
            }
        }
    }
}

/// The hierarchy context one request completion sees: the epoch-frozen
/// shared tiers, the placement rule, and the access log to append to.
struct TierCtx<'a> {
    tiers: &'a [SharedTier],
    placement: Placement,
    edge_ttl_cap: Option<SimDuration>,
    log: &'a mut Vec<TierAccess>,
    eseq: &'a mut u64,
    edge_idx: u32,
}

impl TierCtx<'_> {
    /// Appends one access to the epoch log with this edge's next sequence
    /// number.
    fn record(&mut self, time: SimTime, tier: usize, object: u32, kind: AccessKind) {
        *self.eseq += 1;
        self.log.push(TierAccess {
            time,
            edge: self.edge_idx,
            eseq: *self.eseq,
            tier: tier as u8,
            object,
            kind,
        });
    }

    /// Effective TTL at the edge tier.
    fn edge_ttl(&self, ttl: SimDuration) -> SimDuration {
        match self.edge_ttl_cap {
            Some(cap) => ttl.min(cap),
            None => ttl,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn complete_request(
    widx: usize,
    attempt: u8,
    arrival: SimTime,
    priority: Priority,
    now: SimTime,
    workload: &Workload,
    config: &SimConfig,
    edge: &mut Edge,
    tc: &mut TierCtx<'_>,
    stats: &mut SimStats,
    trace: &mut Trace,
    url_ids: &[UrlId],
    ua_ids: &[Option<UaId>],
    rng: &mut StdRng,
    fault_state: &mut FaultState,
    heap: &mut BinaryHeap<Reverse<(SimTime, u64, InternalEvent)>>,
    seq: &mut u64,
) {
    let event = &workload.events[widx];
    let object = &workload.objects[event.object as usize];
    let res = &config.resilience;
    let size = object.sample_size(rng);
    let is_json = object.mime == MimeType::Json;

    stats.requests += 1;
    if is_json {
        stats.json_requests += 1;
    }

    let mut flags = RecordFlags::NONE;
    let mut response_bytes = size;
    // Draws the stochastic per-attempt status (bursty when configured,
    // i.i.d. `error_fraction` otherwise). Only successful paths draw it —
    // origin-unavailability failures already have their status.
    let draw_status = |fs: &mut FaultState, stats: &mut SimStats| -> u16 {
        if fs.error_draw(config.fault.errors.as_ref(), config.error_fraction) {
            stats.origin_errors += 1;
            500
        } else {
            200
        }
    };

    let (cache_status, network, status) = if !object.cacheable {
        stats.not_cacheable += 1;
        if is_json {
            stats.json_not_cacheable += 1;
        }
        let nominal = config.latency.miss_latency(size, rng);
        match attempt_origin(config, object.domain, now, nominal) {
            OriginAttempt::Reached { network } => {
                stats.origin_fetches += 1;
                stats.bytes_origin += size;
                let status = draw_status(fault_state, stats);
                (CacheStatus::NotCacheable, network, status)
            }
            OriginAttempt::Unavailable { status, latency } => {
                stats.origin_errors += 1;
                response_bytes = 0;
                (CacheStatus::NotCacheable, latency, status)
            }
        }
    } else {
        match edge
            .cache
            .get_with_grace(event.object, now, res.stale_grace)
        {
            Lookup::Fresh => {
                stats.hits += 1;
                stats.bytes_cache += size;
                if is_json {
                    stats.json_hits += 1;
                }
                let mut network = config.latency.hit_latency(size, rng);
                if res.coalesce {
                    // The entry may have been inserted by a fetch that is
                    // still on the wire; this request rides it and waits.
                    if let Some(&done) = edge.in_flight.get(&event.object) {
                        if done > now {
                            flags.insert(RecordFlags::COALESCED);
                            stats.coalesced_waits += 1;
                            network = (done - now) + network;
                        }
                    }
                }
                let status = draw_status(fault_state, stats);
                (CacheStatus::Hit, network, status)
            }
            lookup => {
                let stale_available = lookup == Lookup::Stale;
                let neg_status = edge
                    .neg_cache
                    .get(&event.object)
                    .copied()
                    .filter(|&(until, _)| until > now)
                    .map(|(_, status)| status);
                // Walk the shared tiers nearest-first against the epoch
                // snapshot (side-effect-free; recency updates are logged).
                let served_tier = match neg_status {
                    Some(_) => None,
                    None => tc
                        .tiers
                        .iter()
                        .position(|tier| tier.cache.peek(event.object, now)),
                };
                if let Some(neg_status) = neg_status {
                    // The origin is known bad; answer without contacting it.
                    stats.neg_cache_serves += 1;
                    flags.insert(RecordFlags::NEG_CACHED);
                    if stale_available {
                        flags.insert(RecordFlags::SERVED_STALE);
                        stats.hits += 1;
                        stats.stale_serves += 1;
                        stats.bytes_cache += size;
                        if is_json {
                            stats.json_hits += 1;
                        }
                        let network = config.latency.hit_latency(size, rng);
                        (CacheStatus::Hit, network, 200)
                    } else {
                        stats.misses += 1;
                        if is_json {
                            stats.json_misses += 1;
                        }
                        response_bytes = 0;
                        (
                            CacheStatus::Miss,
                            config.latency.client_edge_rtt,
                            neg_status,
                        )
                    }
                } else if let Some(t) = served_tier {
                    // Tier hit: the origin is never involved. Misses at the
                    // tiers walked past, a hit at tier t.
                    stats.misses += 1;
                    stats.tier_hits[t] += 1;
                    for miss in &mut stats.tier_misses[..t] {
                        *miss += 1;
                    }
                    if is_json {
                        stats.json_misses += 1;
                    }
                    tc.record(now, t, event.object, AccessKind::Touch);
                    match tc.placement {
                        Placement::CopyEverywhere => {
                            edge.cache.insert(
                                event.object,
                                size,
                                tc.edge_ttl(object.ttl),
                                now,
                                false,
                            );
                            for up in 0..t {
                                tc.record(
                                    now,
                                    up,
                                    event.object,
                                    AccessKind::Insert {
                                        size,
                                        ttl: object.ttl,
                                    },
                                );
                            }
                        }
                        Placement::CopyDown => {
                            // One level closer to the client per hit.
                            if t == 0 {
                                edge.cache.insert(
                                    event.object,
                                    size,
                                    tc.edge_ttl(object.ttl),
                                    now,
                                    false,
                                );
                            } else {
                                tc.record(
                                    now,
                                    t - 1,
                                    event.object,
                                    AccessKind::Insert {
                                        size,
                                        ttl: object.ttl,
                                    },
                                );
                            }
                        }
                    }
                    let network = config.latency.tier_hit_latency(t, size, rng);
                    let status = draw_status(fault_state, stats);
                    (CacheStatus::Miss, network, status)
                } else {
                    let shared_tiers = tc.tiers.len();
                    let nominal = config.latency.miss_latency(size, rng);
                    match attempt_origin(config, object.domain, now, nominal) {
                        OriginAttempt::Reached { network } => {
                            stats.misses += 1;
                            for miss in &mut stats.tier_misses[..shared_tiers] {
                                *miss += 1;
                            }
                            if is_json {
                                stats.json_misses += 1;
                            }
                            stats.origin_fetches += 1;
                            stats.bytes_origin += size;
                            let edge_copy = match tc.placement {
                                Placement::CopyEverywhere => {
                                    for t in 0..shared_tiers {
                                        tc.record(
                                            now,
                                            t,
                                            event.object,
                                            AccessKind::Insert {
                                                size,
                                                ttl: object.ttl,
                                            },
                                        );
                                    }
                                    true
                                }
                                Placement::CopyDown => {
                                    // Only the deepest tier keeps a copy;
                                    // with no shared tiers the edge is the
                                    // deepest tier.
                                    match shared_tiers.checked_sub(1) {
                                        Some(deepest) => {
                                            tc.record(
                                                now,
                                                deepest,
                                                event.object,
                                                AccessKind::Insert {
                                                    size,
                                                    ttl: object.ttl,
                                                },
                                            );
                                            false
                                        }
                                        None => true,
                                    }
                                }
                            };
                            if edge_copy {
                                edge.cache.insert(
                                    event.object,
                                    size,
                                    tc.edge_ttl(object.ttl),
                                    now,
                                    false,
                                );
                                if res.coalesce {
                                    edge.in_flight.insert(event.object, now + network);
                                }
                            }
                            let status = draw_status(fault_state, stats);
                            (CacheStatus::Miss, network, status)
                        }
                        OriginAttempt::Unavailable { status, latency } => {
                            stats.origin_errors += 1;
                            if res.negative_ttl > SimDuration::ZERO {
                                edge.neg_cache
                                    .insert(event.object, (now + res.negative_ttl, status));
                            }
                            if stale_available {
                                // Stale-if-error: the expired copy beats a
                                // 5xx.
                                flags.insert(RecordFlags::SERVED_STALE);
                                stats.hits += 1;
                                stats.stale_serves += 1;
                                stats.bytes_cache += size;
                                if is_json {
                                    stats.json_hits += 1;
                                }
                                let network = config.latency.hit_latency(size, rng);
                                (CacheStatus::Hit, network, 200)
                            } else {
                                stats.misses += 1;
                                for miss in &mut stats.tier_misses[..shared_tiers] {
                                    *miss += 1;
                                }
                                if is_json {
                                    stats.json_misses += 1;
                                }
                                response_bytes = 0;
                                (CacheStatus::Miss, latency, status)
                            }
                        }
                    }
                }
            }
        }
    };

    // End-to-end latency: queueing + service (now - arrival) + network.
    let latency = (now - arrival) + network;
    match priority {
        Priority::Normal => stats.latency_normal.record(latency.as_secs_f64()),
        Priority::Deprioritized => stats.latency_depri.record(latency.as_secs_f64()),
    }

    // Client-side resilience: a failed attempt with retry budget left backs
    // off and re-enters the event queue as a fresh timestamped arrival.
    if status >= 500 {
        if attempt < res.retry_budget {
            flags.insert(RecordFlags::RETRIED);
            stats.retries_issued += 1;
            let delay = res.backoff(attempt + 1, widx as u64);
            *seq += 1;
            heap.push(Reverse((
                now + delay,
                *seq,
                InternalEvent::Retry {
                    widx,
                    attempt: attempt + 1,
                    priority,
                },
            )));
        } else {
            stats.end_user_failures += 1;
        }
    }

    trace.push(LogRecord {
        time: arrival,
        client: ClientId(workload.clients[event.client as usize].ip_hash),
        ua: ua_ids[event.client as usize],
        url: url_ids[event.object as usize],
        method: event.method,
        mime: object.mime,
        status,
        response_bytes,
        cache: cache_status,
        retries: attempt,
        flags,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use jcdn_workload::{build, WorkloadConfig};

    fn tiny_output() -> SimOutput {
        let w = build(&WorkloadConfig::tiny(0xFEED));
        run_default(&w, &SimConfig::default())
    }

    /// A 3-tier hierarchy (edge + regional + shield) mixing policies.
    fn three_tier(edge_policy: PolicyKind, shared_policy: PolicyKind) -> CacheHierarchy {
        use crate::hierarchy::TierSpec;
        CacheHierarchy {
            edge: TierSpec::lru("edge", 64 << 20).with_policy(edge_policy),
            shared: vec![
                TierSpec::lru("regional", 256 << 20).with_policy(shared_policy),
                TierSpec::lru("shield", 1 << 30),
            ],
            placement: Placement::CopyEverywhere,
            sync_interval: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn every_event_produces_exactly_one_log() {
        let w = build(&WorkloadConfig::tiny(1));
        let out = run_default(&w, &SimConfig::default());
        // One record per attempt: original events plus retries of failures.
        assert_eq!(
            out.trace.len() as u64,
            w.events.len() as u64 + out.stats.retries_issued
        );
        assert_eq!(
            out.stats.requests,
            w.events.len() as u64 + out.stats.retries_issued
        );
        assert_eq!(out.stats.logical_requests(), w.events.len() as u64);
        assert_eq!(
            out.stats.hits + out.stats.misses + out.stats.not_cacheable,
            out.stats.requests
        );
    }

    #[test]
    fn logs_are_time_sorted_and_carry_strings() {
        let out = tiny_output();
        assert!(out
            .trace
            .records()
            .windows(2)
            .all(|p| p[0].time <= p[1].time));
        let v = out.trace.iter().next().unwrap();
        assert!(v.url.starts_with("https://"));
    }

    #[test]
    fn cacheable_popular_objects_get_hits() {
        let out = tiny_output();
        assert!(
            out.stats.hits > 0,
            "popular objects must produce cache hits"
        );
        let ratio = out.stats.cacheable_hit_ratio().unwrap();
        assert!(ratio > 0.2, "cacheable hit ratio {ratio}");
    }

    #[test]
    fn uncacheable_objects_never_hit() {
        let w = build(&WorkloadConfig::tiny(3));
        let out = run_default(&w, &SimConfig::default());
        // Every record for an uncacheable object must be NotCacheable.
        for view in out.trace.iter() {
            let obj = w
                .objects
                .iter()
                .find(|o| o.url == view.url)
                .expect("object exists");
            if !obj.cacheable {
                assert_eq!(view.record.cache, CacheStatus::NotCacheable);
            } else {
                assert_ne!(view.record.cache, CacheStatus::NotCacheable);
            }
        }
    }

    #[test]
    fn json_uncacheable_share_matches_workload_plant() {
        let out = tiny_output();
        let share = out.stats.json_uncacheable_share().unwrap();
        assert!((0.40..0.75).contains(&share), "uncacheable share {share}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let w = build(&WorkloadConfig::tiny(5));
        let a = run_default(&w, &SimConfig::default());
        let b = run_default(&w, &SimConfig::default());
        assert_eq!(a.trace.records(), b.trace.records());
        assert_eq!(a.stats.hits, b.stats.hits);
    }

    #[test]
    fn sharded_run_matches_the_sequential_run() {
        let w = build(&WorkloadConfig::tiny(21));
        let config = SimConfig {
            edges: 4,
            error_fraction: 0.02, // exercise the retry path too
            ..SimConfig::default()
        };
        let sequential = run_default(&w, &config);
        for threads in [2, 4] {
            let sharded = run_sharded(&w, &config, threads);
            assert_eq!(
                sequential.trace.records(),
                sharded.trace.records(),
                "{threads} threads"
            );
            assert_eq!(sequential.stats.requests, sharded.stats.requests);
            assert_eq!(sequential.stats.hits, sharded.stats.hits);
            assert_eq!(sequential.stats.misses, sharded.stats.misses);
            assert_eq!(
                sequential.stats.retries_issued,
                sharded.stats.retries_issued
            );
            assert_eq!(
                sequential.stats.end_user_failures,
                sharded.stats.end_user_failures
            );
            assert_eq!(
                sequential.stats.latency_normal.count(),
                sharded.stats.latency_normal.count()
            );
            // Per-edge observability counters are part of the determinism
            // contract: the merged per-edge snapshots must be byte-identical
            // to the combined run's snapshot.
            assert_eq!(
                sequential.metrics.counters_json(),
                sharded.metrics.counters_json(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn windowed_series_is_shard_invariant_and_sums_to_totals() {
        let w = build(&WorkloadConfig::tiny(33));
        let config = SimConfig {
            edges: 4,
            error_fraction: 0.02,
            window: WindowSpec::parse("1m").ok(),
            ..SimConfig::default()
        };
        let sequential = run_default(&w, &config);
        let series = sequential.series.as_ref().expect("window requested");
        assert!(!series.is_empty());
        // The per-window counters fold back to the run totals exactly.
        assert_eq!(
            series.total().counters_json(),
            {
                // Run totals restricted to the keys EdgeCounters emits
                // (cache occupancy/eviction telemetry is not windowed).
                let mut expected = MetricsSnapshot::new();
                for (k, v) in sequential.metrics.counters() {
                    if !k.starts_with("cache.evic") {
                        expected.inc(k, v);
                    }
                }
                expected.counters_json()
            },
            "window buckets must partition the run totals"
        );
        for threads in [2, 4] {
            let sharded = run_sharded(&w, &config, threads);
            let sharded_series = sharded.series.as_ref().expect("window requested");
            assert_eq!(
                series.to_jsonl("sim"),
                sharded_series.to_jsonl("sim"),
                "per-window counters byte-identical at {threads} threads"
            );
        }
    }

    #[test]
    fn metrics_counters_mirror_sim_stats() {
        let w = build(&WorkloadConfig::tiny(29));
        let config = SimConfig {
            edges: 3,
            error_fraction: 0.02,
            ..SimConfig::default()
        };
        let out = run_default(&w, &config);
        let total = |name: &str| out.metrics.counter_prefix_sum(name);
        assert_eq!(total("sim.requests{"), out.stats.requests);
        assert_eq!(total("sim.hits{"), out.stats.hits);
        assert_eq!(total("sim.misses{"), out.stats.misses);
        assert_eq!(total("sim.stale_serves{"), out.stats.stale_serves);
        assert_eq!(total("sim.coalesced{"), out.stats.coalesced_waits);
        assert_eq!(total("sim.retries{"), out.stats.retries_issued);
        assert_eq!(total("sim.origin_errors{"), out.stats.origin_errors);
        // More than one edge actually served traffic.
        let edges_hit = out
            .metrics
            .counters()
            .filter(|(k, _)| k.starts_with("sim.requests{"))
            .count();
        assert!(edges_hit > 1, "expected traffic on multiple edges");
    }

    #[test]
    fn tier_counters_mirror_sim_stats() {
        let w = build(&WorkloadConfig::tiny(31));
        let config = SimConfig {
            hierarchy: Some(three_tier(PolicyKind::Lru, PolicyKind::Lru)),
            ..SimConfig::default()
        };
        let out = run_default(&w, &config);
        assert_eq!(
            out.metrics.counter_prefix_sum("cache.tier_hits{"),
            out.stats.parent_hits()
        );
        assert!(
            out.metrics.counter_prefix_sum("cache.evictions{") >= out.stats.tier_hits.len() as u64
                || out.metrics.counter_prefix_sum("cache.evictions{") == 0,
            "eviction counters are well-formed"
        );
    }

    #[test]
    fn sharded_run_with_parent_tier_matches_sequential() {
        let w = build(&WorkloadConfig::tiny(23));
        // A parent tier couples the edges; the epoch-lockstep driver must
        // reproduce the sequential result byte for byte — no sequential
        // fallback anymore.
        let config = SimConfig {
            parent_cache: Some(1 << 30),
            edges: 3,
            ..SimConfig::default()
        };
        let sequential = run_default(&w, &config);
        assert!(sequential.stats.parent_hits() > 0, "parent sees traffic");
        for threads in [2, 4] {
            let sharded = run_sharded(&w, &config, threads);
            assert_eq!(
                sequential.trace.records(),
                sharded.trace.records(),
                "{threads} threads"
            );
            assert_eq!(sequential.stats.parent_hits(), sharded.stats.parent_hits());
            assert_eq!(sequential.stats.tier_hits, sharded.stats.tier_hits);
            assert_eq!(sequential.stats.tier_misses, sharded.stats.tier_misses);
            assert_eq!(
                sequential.metrics.counters_json(),
                sharded.metrics.counters_json(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn three_tier_hierarchy_sharded_matches_sequential_all_policies() {
        let w = build(&WorkloadConfig::tiny(37));
        for policy in [PolicyKind::TinyLfu, PolicyKind::S3Fifo] {
            let config = SimConfig {
                edges: 4,
                hierarchy: Some(three_tier(policy, policy)),
                ..SimConfig::default()
            };
            let sequential = run_default(&w, &config);
            let sharded = run_sharded(&w, &config, 4);
            assert_eq!(
                sequential.trace.records(),
                sharded.trace.records(),
                "{policy}"
            );
            assert_eq!(
                sequential.metrics.counters_json(),
                sharded.metrics.counters_json(),
                "{policy}"
            );
        }
    }

    #[test]
    fn parent_alias_equals_explicit_two_level_hierarchy() {
        let w = build(&WorkloadConfig::tiny(41));
        let alias = SimConfig {
            parent_cache: Some(1 << 28),
            ..SimConfig::default()
        };
        let explicit = SimConfig {
            hierarchy: Some(CacheHierarchy::with_parent(
                SimConfig::default().cache_capacity,
                1 << 28,
            )),
            ..SimConfig::default()
        };
        let a = run_default(&w, &alias);
        let b = run_default(&w, &explicit);
        assert_eq!(a.trace.records(), b.trace.records());
        assert_eq!(a.stats.tier_hits, b.stats.tier_hits);
    }

    #[test]
    fn copy_down_keeps_first_fills_off_the_edge() {
        let w = build(&WorkloadConfig::tiny(43));
        let mut h = three_tier(PolicyKind::Lru, PolicyKind::Lru);
        h.placement = Placement::CopyDown;
        let lcd = run_default(
            &w,
            &SimConfig {
                hierarchy: Some(h),
                ..SimConfig::default()
            },
        );
        let lce = run_default(
            &w,
            &SimConfig {
                hierarchy: Some(three_tier(PolicyKind::Lru, PolicyKind::Lru)),
                ..SimConfig::default()
            },
        );
        // Under copy-down, first fills populate only the deepest tier, so
        // the edge sees fewer hits than leave-copy-everywhere.
        assert!(
            lcd.stats.hits < lce.stats.hits,
            "LCD edge hits {} must trail LCE edge hits {}",
            lcd.stats.hits,
            lce.stats.hits
        );
        // But popular objects still percolate: the edge is not empty.
        assert!(lcd.stats.hits > 0, "popular objects reach the edge");
        // And requests are conserved either way.
        assert_eq!(lcd.stats.logical_requests(), lce.stats.logical_requests());
    }

    #[test]
    fn prefetch_policy_improves_hit_ratio() {
        // A clairvoyant policy that prefetches the manifest children the
        // moment the manifest is requested.
        struct Oracle<'w> {
            workload: &'w Workload,
        }
        impl Policy for Oracle<'_> {
            fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome {
                let prefetch = self
                    .workload
                    .truth
                    .manifest_children
                    .get(&ctx.object)
                    .cloned()
                    .unwrap_or_default();
                PolicyOutcome {
                    prefetch,
                    priority: Priority::Normal,
                }
            }
        }
        let w = build(&WorkloadConfig::tiny(7));
        let base = run_default(&w, &SimConfig::default());
        let mut oracle = Oracle { workload: &w };
        let boosted = run(&w, &SimConfig::default(), &mut oracle);
        assert!(boosted.stats.prefetch_issued > 0);
        assert!(
            boosted.stats.prefetch_useful > 0,
            "prefetched entries must be used"
        );
        assert!(
            boosted.stats.cacheable_hit_ratio().unwrap()
                > base.stats.cacheable_hit_ratio().unwrap(),
            "prefetching must lift hit ratio: {} vs {}",
            boosted.stats.cacheable_hit_ratio().unwrap(),
            base.stats.cacheable_hit_ratio().unwrap()
        );
    }

    #[test]
    fn deprioritized_requests_wait_longer_under_load() {
        // Deprioritize periodic machine traffic; under a saturated edge the
        // normal class must see lower latency.
        struct Depri<'w> {
            workload: &'w Workload,
        }
        impl Policy for Depri<'_> {
            fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome {
                let machine = self
                    .workload
                    .truth
                    .periodic_pairs
                    .contains_key(&(ctx.client, ctx.object));
                PolicyOutcome {
                    prefetch: Vec::new(),
                    priority: if machine {
                        Priority::Deprioritized
                    } else {
                        Priority::Normal
                    },
                }
            }
        }
        let w = build(&WorkloadConfig::tiny(9));
        // One edge sized to ~120% utilization for this workload → real,
        // persistent queueing regardless of calibration tweaks upstream.
        let service_us =
            (1.2 * w.config.duration.as_secs_f64() / w.events.len() as f64 * 1e6) as u64;
        let config = SimConfig {
            edges: 1,
            service_base: SimDuration::from_micros(service_us.max(1)),
            service_per_kb: SimDuration::ZERO,
            ..SimConfig::default()
        };
        let mut policy = Depri { workload: &w };
        let out = run(&w, &config, &mut policy);
        let normal = out.stats.latency_normal.mean().unwrap();
        let depri = out.stats.latency_depri.mean().unwrap();
        assert!(
            depri > normal,
            "deprioritized mean {depri} must exceed normal mean {normal}"
        );
    }

    #[test]
    fn single_edge_vs_many_edges_conserves_requests() {
        let w = build(&WorkloadConfig::tiny(11));
        for edges in [1, 2, 8] {
            let out = run_default(
                &w,
                &SimConfig {
                    edges,
                    ..SimConfig::default()
                },
            );
            assert_eq!(out.stats.logical_requests(), w.events.len() as u64);
        }
    }

    #[test]
    fn parent_tier_absorbs_cross_edge_misses() {
        let w = build(&WorkloadConfig::tiny(15));
        let flat = run_default(&w, &SimConfig::default());
        let tiered = run_default(
            &w,
            &SimConfig {
                parent_cache: Some(1 << 30),
                ..SimConfig::default()
            },
        );
        assert!(
            tiered.stats.parent_hits() > 0,
            "shared objects hit the parent"
        );
        assert_eq!(
            tiered.stats.parent_hits() + tiered.stats.parent_misses(),
            tiered.stats.misses
        );
        // Edge-level hit counts are identical; the parent only changes
        // where misses are served from.
        assert_eq!(flat.stats.hits, tiered.stats.hits);
        assert!(
            tiered.stats.origin_fetches < flat.stats.origin_fetches,
            "the parent tier must offload the origin: {} vs {}",
            tiered.stats.origin_fetches,
            flat.stats.origin_fetches
        );
    }

    #[test]
    fn error_fraction_produces_5xx() {
        let w = build(&WorkloadConfig::tiny(13));
        let out = run_default(
            &w,
            &SimConfig {
                error_fraction: 0.05,
                ..SimConfig::default()
            },
        );
        let errors = out
            .trace
            .records()
            .iter()
            .filter(|r| r.status == 500)
            .count();
        let share = errors as f64 / out.trace.len() as f64;
        assert!((0.03..0.07).contains(&share), "error share {share}");
    }
}
