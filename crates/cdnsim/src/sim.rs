//! The event-driven simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use jcdn_stats::Summary;
use jcdn_trace::{
    CacheStatus, ClientId, LogRecord, MimeType, SimDuration, SimTime, Trace, UaId, UrlId,
};
use jcdn_workload::{ClientInfo, ObjectInfo, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::LruCache;
use crate::latency::LatencyModel;

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of edge servers (the paper's long-term dataset covers three
    /// vantage points).
    pub edges: usize,
    /// Per-edge cache capacity in bytes.
    pub cache_capacity: u64,
    /// Optional parent-tier cache capacity (bytes). When set, cacheable
    /// edge misses consult a shared regional parent before the origin —
    /// the "through the CDN to origin content servers" path of §4, with
    /// one intermediate tier.
    pub parent_cache: Option<u64>,
    /// Network delays.
    pub latency: LatencyModel,
    /// Fixed CPU cost of handling one request at the edge.
    pub service_base: SimDuration,
    /// Additional CPU cost per KiB of response ("a large chunk of the total
    /// request cost is tied to CPU request processing", §4).
    pub service_per_kb: SimDuration,
    /// Fraction of requests that fail at the origin (5xx).
    pub error_fraction: f64,
    /// RNG seed (response sizes, latency jitter, errors).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            edges: 3,
            cache_capacity: 256 << 20,
            parent_cache: None,
            latency: LatencyModel::default(),
            service_base: SimDuration::from_micros(200),
            service_per_kb: SimDuration::from_micros(20),
            error_fraction: 0.004,
            seed: 0x5eed,
        }
    }
}

/// Scheduling priority of a request at the edge.
///
/// §5.1/§7 of the paper propose deprioritizing machine-to-machine traffic
/// "since a human is not waiting for the response"; the service queue
/// serves all `Normal` requests before any `Deprioritized` one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Human-facing traffic (served first).
    #[default]
    Normal,
    /// Machine-to-machine traffic (served when no normal work waits).
    Deprioritized,
}

/// What a [`Policy`] decides about one request.
#[derive(Clone, Debug, Default)]
pub struct PolicyOutcome {
    /// Objects to prefetch into this edge's cache.
    pub prefetch: Vec<u32>,
    /// The request's scheduling priority.
    pub priority: Priority,
}

/// Everything a policy can see about one arriving request.
#[derive(Debug)]
pub struct RequestCtx<'a> {
    /// Arrival time.
    pub time: SimTime,
    /// Client index.
    pub client: u32,
    /// Requested object index.
    pub object: u32,
    /// Edge the request was routed to.
    pub edge: usize,
    /// The object universe.
    pub objects: &'a [ObjectInfo],
    /// The client population.
    pub clients: &'a [ClientInfo],
    /// Whether the object is already resident in this edge's cache.
    pub cache_resident: bool,
}

/// A per-request hook: prefetching, deprioritization, anomaly scoring.
pub trait Policy {
    /// Called for every arriving request, before cache lookup.
    fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome;
}

/// The default policy: no prefetch, everything `Normal`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopPolicy;

impl Policy for NoopPolicy {
    fn on_request(&mut self, _ctx: &RequestCtx<'_>) -> PolicyOutcome {
        PolicyOutcome::default()
    }
}

/// Aggregate simulation statistics.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Requests served.
    pub requests: u64,
    /// Cacheable requests served from edge cache.
    pub hits: u64,
    /// Cacheable requests fetched from origin.
    pub misses: u64,
    /// Requests for uncacheable objects (tunneled to origin).
    pub not_cacheable: u64,
    /// Total origin round trips (misses + uncacheable + prefetches).
    pub origin_fetches: u64,
    /// Cacheable edge misses served by the parent tier.
    pub parent_hits: u64,
    /// Cacheable edge misses that fell through the parent to the origin.
    pub parent_misses: u64,
    /// Prefetches issued by the policy.
    pub prefetch_issued: u64,
    /// Prefetches that completed and were inserted.
    pub prefetch_completed: u64,
    /// Demand hits on prefetched entries (usefulness numerator).
    pub prefetch_useful: u64,
    /// Response bytes served from cache.
    pub bytes_cache: u64,
    /// Response bytes fetched from origin (incl. prefetch).
    pub bytes_origin: u64,
    /// JSON-only counters (the paper's cacheability numbers are JSON-only).
    pub json_requests: u64,
    /// JSON requests served from cache.
    pub json_hits: u64,
    /// JSON cacheable requests that missed.
    pub json_misses: u64,
    /// JSON uncacheable requests.
    pub json_not_cacheable: u64,
    /// End-to-end latency of `Normal` requests (seconds).
    pub latency_normal: Summary,
    /// End-to-end latency of `Deprioritized` requests (seconds).
    pub latency_depri: Summary,
}

impl SimStats {
    /// Hit ratio over cacheable traffic.
    pub fn cacheable_hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Hit ratio over all traffic (uncacheable requests count as misses —
    /// the operator's view of origin offload).
    pub fn overall_hit_ratio(&self) -> Option<f64> {
        (self.requests > 0).then(|| self.hits as f64 / self.requests as f64)
    }

    /// JSON-only uncacheable share (paper: ~55%).
    pub fn json_uncacheable_share(&self) -> Option<f64> {
        (self.json_requests > 0).then(|| self.json_not_cacheable as f64 / self.json_requests as f64)
    }
}

/// The simulator's output: the edge logs and the aggregate stats.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Request logs in arrival order (§3.1 schema).
    pub trace: Trace,
    /// Aggregate counters and latency summaries.
    pub stats: SimStats,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum InternalEvent {
    /// Edge server finished the CPU service of a queued request.
    ServiceDone { edge: usize },
    /// A prefetch fetch returned from origin.
    PrefetchDone { edge: usize, object: u32 },
}

struct Edge {
    cache: LruCache<u32>,
    busy_until: SimTime,
    /// Waiting requests: (priority, arrival, seq, workload index).
    queue: BinaryHeap<Reverse<(Priority, SimTime, u64, usize)>>,
    /// Request currently in service.
    in_service: Option<(usize, SimTime, Priority)>,
}

/// Runs the workload through the simulated CDN with the given policy.
pub fn run(workload: &Workload, config: &SimConfig, policy: &mut dyn Policy) -> SimOutput {
    assert!(config.edges > 0, "need at least one edge");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = SimStats::default();
    let mut parent: Option<LruCache<u32>> = config.parent_cache.map(LruCache::new);
    let mut edges: Vec<Edge> = (0..config.edges)
        .map(|_| Edge {
            cache: LruCache::new(config.cache_capacity),
            busy_until: SimTime::ZERO,
            queue: BinaryHeap::new(),
            in_service: None,
        })
        .collect();

    // Pre-intern all strings so ids are stable and independent of policy
    // decisions.
    let mut trace = Trace::with_capacity(workload.events.len());
    let url_ids: Vec<UrlId> = workload
        .objects
        .iter()
        .map(|o| trace.intern_url(&o.url))
        .collect();
    let ua_ids: Vec<Option<UaId>> = workload
        .clients
        .iter()
        .map(|c| c.ua.as_deref().map(|ua| trace.intern_ua(ua)))
        .collect();

    let mut heap: BinaryHeap<Reverse<(SimTime, u64, InternalEvent)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut next_arrival = 0usize;

    loop {
        // Pick the earlier of the next arrival and the next internal event.
        let arrival_time = workload.events.get(next_arrival).map(|e| e.time);
        let internal_time = heap.peek().map(|Reverse((t, _, _))| *t);
        let take_arrival = match (arrival_time, internal_time) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(at), Some(it)) => at <= it,
        };
        match take_arrival {
            true => {
                let widx = next_arrival;
                next_arrival += 1;
                let event = &workload.events[widx];
                let edge_idx = (workload.clients[event.client as usize].ip_hash
                    % config.edges as u64) as usize;
                let object = &workload.objects[event.object as usize];

                let ctx = RequestCtx {
                    time: event.time,
                    client: event.client,
                    object: event.object,
                    edge: edge_idx,
                    objects: &workload.objects,
                    clients: &workload.clients,
                    cache_resident: edges[edge_idx].cache.peek(event.object, event.time),
                };
                let outcome = policy.on_request(&ctx);

                // Issue prefetches: only cacheable, non-resident objects.
                for target in outcome.prefetch {
                    let tobj = &workload.objects[target as usize];
                    if !tobj.cacheable || edges[edge_idx].cache.peek(target, event.time) {
                        continue;
                    }
                    stats.prefetch_issued += 1;
                    let size = tobj.sample_size(&mut rng);
                    stats.bytes_origin += size;
                    stats.origin_fetches += 1;
                    let done = event.time + config.latency.origin_fetch(size, &mut rng);
                    seq += 1;
                    heap.push(Reverse((
                        done,
                        seq,
                        InternalEvent::PrefetchDone {
                            edge: edge_idx,
                            object: target,
                        },
                    )));
                }

                let _ = object;
                edges[edge_idx]
                    .queue
                    .push(Reverse((outcome.priority, event.time, seq, widx)));
                seq += 1;
                dispatch(
                    &mut edges[edge_idx],
                    edge_idx,
                    event.time,
                    workload,
                    config,
                    &mut rng,
                    &mut heap,
                    &mut seq,
                );
            }
            false => {
                let Reverse((now, _, ev)) = heap.pop().expect("peeked");
                match ev {
                    InternalEvent::PrefetchDone { edge, object } => {
                        let obj = &workload.objects[object as usize];
                        stats.prefetch_completed += 1;
                        // Insert only if still absent — a demand miss may
                        // have populated it meanwhile.
                        if !edges[edge].cache.peek(object, now) {
                            let size = obj.sample_size(&mut rng);
                            edges[edge].cache.insert(object, size, obj.ttl, now, true);
                        }
                    }
                    InternalEvent::ServiceDone { edge } => {
                        let (widx, arrival, priority) = edges[edge]
                            .in_service
                            .take()
                            .expect("service completion without request");
                        complete_request(
                            widx,
                            arrival,
                            priority,
                            now,
                            edge,
                            workload,
                            config,
                            &mut edges[edge],
                            &mut parent,
                            &mut stats,
                            &mut trace,
                            &url_ids,
                            &ua_ids,
                            &mut rng,
                        );
                        dispatch(
                            &mut edges[edge],
                            edge,
                            now,
                            workload,
                            config,
                            &mut rng,
                            &mut heap,
                            &mut seq,
                        );
                    }
                }
            }
        }
    }

    // Merge cache-level prefetch-hit counters.
    for edge in &edges {
        stats.prefetch_useful += edge.cache.stats().prefetch_hits;
    }

    trace.sort_by_time();
    SimOutput { trace, stats }
}

/// Runs with the no-op policy.
pub fn run_default(workload: &Workload, config: &SimConfig) -> SimOutput {
    run(workload, config, &mut NoopPolicy)
}

#[allow(clippy::too_many_arguments)]
fn dispatch(
    edge: &mut Edge,
    edge_idx: usize,
    now: SimTime,
    workload: &Workload,
    config: &SimConfig,
    rng: &mut StdRng,
    heap: &mut BinaryHeap<Reverse<(SimTime, u64, InternalEvent)>>,
    seq: &mut u64,
) {
    if edge.in_service.is_some() || now < edge.busy_until {
        return;
    }
    let Some(Reverse((priority, arrival, _, widx))) = edge.queue.pop() else {
        return;
    };
    let object = &workload.objects[workload.events[widx].object as usize];
    // CPU service cost: base + per-KiB of (expected) body.
    let kb = (object.size_median / 1024.0).ceil() as u64;
    let service = config.service_base
        + SimDuration::from_micros(config.service_per_kb.as_micros() * kb.max(1));
    let done = now + service;
    edge.busy_until = done;
    edge.in_service = Some((widx, arrival, priority));
    *seq += 1;
    heap.push(Reverse((
        done,
        *seq,
        InternalEvent::ServiceDone { edge: edge_idx },
    )));
    let _ = rng;
}

#[allow(clippy::too_many_arguments)]
fn complete_request(
    widx: usize,
    arrival: SimTime,
    priority: Priority,
    now: SimTime,
    _edge_idx: usize,
    workload: &Workload,
    config: &SimConfig,
    edge: &mut Edge,
    parent: &mut Option<LruCache<u32>>,
    stats: &mut SimStats,
    trace: &mut Trace,
    url_ids: &[UrlId],
    ua_ids: &[Option<UaId>],
    rng: &mut StdRng,
) {
    let event = &workload.events[widx];
    let object = &workload.objects[event.object as usize];
    let size = object.sample_size(rng);
    let is_json = object.mime == MimeType::Json;

    stats.requests += 1;
    if is_json {
        stats.json_requests += 1;
    }

    let (cache_status, network) = if !object.cacheable {
        stats.not_cacheable += 1;
        stats.origin_fetches += 1;
        stats.bytes_origin += size;
        if is_json {
            stats.json_not_cacheable += 1;
        }
        (
            CacheStatus::NotCacheable,
            config.latency.miss_latency(size, rng),
        )
    } else if edge.cache.get(event.object, now) {
        stats.hits += 1;
        stats.bytes_cache += size;
        if is_json {
            stats.json_hits += 1;
        }
        (CacheStatus::Hit, config.latency.hit_latency(size, rng))
    } else {
        stats.misses += 1;
        if is_json {
            stats.json_misses += 1;
        }
        edge.cache
            .insert(event.object, size, object.ttl, now, false);
        // Edge miss: consult the parent tier before the origin.
        let network = match parent.as_mut() {
            Some(parent_cache) => {
                if parent_cache.get(event.object, now) {
                    stats.parent_hits += 1;
                    config.latency.parent_hit_latency(size, rng)
                } else {
                    stats.parent_misses += 1;
                    stats.origin_fetches += 1;
                    stats.bytes_origin += size;
                    parent_cache.insert(event.object, size, object.ttl, now, false);
                    config.latency.miss_latency(size, rng)
                }
            }
            None => {
                stats.origin_fetches += 1;
                stats.bytes_origin += size;
                config.latency.miss_latency(size, rng)
            }
        };
        (CacheStatus::Miss, network)
    };

    // End-to-end latency: queueing + service (now - arrival) + network.
    let latency = (now - arrival) + network;
    match priority {
        Priority::Normal => stats.latency_normal.record(latency.as_secs_f64()),
        Priority::Deprioritized => stats.latency_depri.record(latency.as_secs_f64()),
    }

    let status = if rng.gen_bool(config.error_fraction) {
        500
    } else {
        200
    };
    trace.push(LogRecord {
        time: event.time,
        client: ClientId(workload.clients[event.client as usize].ip_hash),
        ua: ua_ids[event.client as usize],
        url: url_ids[event.object as usize],
        method: event.method,
        mime: object.mime,
        status,
        response_bytes: size,
        cache: cache_status,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_workload::{build, WorkloadConfig};

    fn tiny_output() -> SimOutput {
        let w = build(&WorkloadConfig::tiny(0xFEED));
        run_default(&w, &SimConfig::default())
    }

    #[test]
    fn every_event_produces_exactly_one_log() {
        let w = build(&WorkloadConfig::tiny(1));
        let out = run_default(&w, &SimConfig::default());
        assert_eq!(out.trace.len(), w.events.len());
        assert_eq!(out.stats.requests, w.events.len() as u64);
        assert_eq!(
            out.stats.hits + out.stats.misses + out.stats.not_cacheable,
            out.stats.requests
        );
    }

    #[test]
    fn logs_are_time_sorted_and_carry_strings() {
        let out = tiny_output();
        assert!(out
            .trace
            .records()
            .windows(2)
            .all(|p| p[0].time <= p[1].time));
        let v = out.trace.iter().next().unwrap();
        assert!(v.url.starts_with("https://"));
    }

    #[test]
    fn cacheable_popular_objects_get_hits() {
        let out = tiny_output();
        assert!(
            out.stats.hits > 0,
            "popular objects must produce cache hits"
        );
        let ratio = out.stats.cacheable_hit_ratio().unwrap();
        assert!(ratio > 0.2, "cacheable hit ratio {ratio}");
    }

    #[test]
    fn uncacheable_objects_never_hit() {
        let w = build(&WorkloadConfig::tiny(3));
        let out = run_default(&w, &SimConfig::default());
        // Every record for an uncacheable object must be NotCacheable.
        for view in out.trace.iter() {
            let obj = w
                .objects
                .iter()
                .find(|o| o.url == view.url)
                .expect("object exists");
            if !obj.cacheable {
                assert_eq!(view.record.cache, CacheStatus::NotCacheable);
            } else {
                assert_ne!(view.record.cache, CacheStatus::NotCacheable);
            }
        }
    }

    #[test]
    fn json_uncacheable_share_matches_workload_plant() {
        let out = tiny_output();
        let share = out.stats.json_uncacheable_share().unwrap();
        assert!((0.40..0.75).contains(&share), "uncacheable share {share}");
    }

    #[test]
    fn deterministic_given_seeds() {
        let w = build(&WorkloadConfig::tiny(5));
        let a = run_default(&w, &SimConfig::default());
        let b = run_default(&w, &SimConfig::default());
        assert_eq!(a.trace.records(), b.trace.records());
        assert_eq!(a.stats.hits, b.stats.hits);
    }

    #[test]
    fn prefetch_policy_improves_hit_ratio() {
        // A clairvoyant policy that prefetches the manifest children the
        // moment the manifest is requested.
        struct Oracle<'w> {
            workload: &'w Workload,
        }
        impl Policy for Oracle<'_> {
            fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome {
                let prefetch = self
                    .workload
                    .truth
                    .manifest_children
                    .get(&ctx.object)
                    .cloned()
                    .unwrap_or_default();
                PolicyOutcome {
                    prefetch,
                    priority: Priority::Normal,
                }
            }
        }
        let w = build(&WorkloadConfig::tiny(7));
        let base = run_default(&w, &SimConfig::default());
        let mut oracle = Oracle { workload: &w };
        let boosted = run(&w, &SimConfig::default(), &mut oracle);
        assert!(boosted.stats.prefetch_issued > 0);
        assert!(
            boosted.stats.prefetch_useful > 0,
            "prefetched entries must be used"
        );
        assert!(
            boosted.stats.cacheable_hit_ratio().unwrap()
                > base.stats.cacheable_hit_ratio().unwrap(),
            "prefetching must lift hit ratio: {} vs {}",
            boosted.stats.cacheable_hit_ratio().unwrap(),
            base.stats.cacheable_hit_ratio().unwrap()
        );
    }

    #[test]
    fn deprioritized_requests_wait_longer_under_load() {
        // Deprioritize periodic machine traffic; under a saturated edge the
        // normal class must see lower latency.
        struct Depri<'w> {
            workload: &'w Workload,
        }
        impl Policy for Depri<'_> {
            fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome {
                let machine = self
                    .workload
                    .truth
                    .periodic_pairs
                    .contains_key(&(ctx.client, ctx.object));
                PolicyOutcome {
                    prefetch: Vec::new(),
                    priority: if machine {
                        Priority::Deprioritized
                    } else {
                        Priority::Normal
                    },
                }
            }
        }
        let w = build(&WorkloadConfig::tiny(9));
        // One edge sized to ~120% utilization for this workload → real,
        // persistent queueing regardless of calibration tweaks upstream.
        let service_us =
            (1.2 * w.config.duration.as_secs_f64() / w.events.len() as f64 * 1e6) as u64;
        let config = SimConfig {
            edges: 1,
            service_base: SimDuration::from_micros(service_us.max(1)),
            service_per_kb: SimDuration::ZERO,
            ..SimConfig::default()
        };
        let mut policy = Depri { workload: &w };
        let out = run(&w, &config, &mut policy);
        let normal = out.stats.latency_normal.mean().unwrap();
        let depri = out.stats.latency_depri.mean().unwrap();
        assert!(
            depri > normal,
            "deprioritized mean {depri} must exceed normal mean {normal}"
        );
    }

    #[test]
    fn single_edge_vs_many_edges_conserves_requests() {
        let w = build(&WorkloadConfig::tiny(11));
        for edges in [1, 2, 8] {
            let out = run_default(
                &w,
                &SimConfig {
                    edges,
                    ..SimConfig::default()
                },
            );
            assert_eq!(out.stats.requests, w.events.len() as u64);
        }
    }

    #[test]
    fn parent_tier_absorbs_cross_edge_misses() {
        let w = build(&WorkloadConfig::tiny(15));
        let flat = run_default(&w, &SimConfig::default());
        let tiered = run_default(
            &w,
            &SimConfig {
                parent_cache: Some(1 << 30),
                ..SimConfig::default()
            },
        );
        assert!(
            tiered.stats.parent_hits > 0,
            "shared objects hit the parent"
        );
        assert_eq!(
            tiered.stats.parent_hits + tiered.stats.parent_misses,
            tiered.stats.misses
        );
        // Edge-level hit counts are identical; the parent only changes
        // where misses are served from.
        assert_eq!(flat.stats.hits, tiered.stats.hits);
        assert!(
            tiered.stats.origin_fetches < flat.stats.origin_fetches,
            "the parent tier must offload the origin: {} vs {}",
            tiered.stats.origin_fetches,
            flat.stats.origin_fetches
        );
    }

    #[test]
    fn error_fraction_produces_5xx() {
        let w = build(&WorkloadConfig::tiny(13));
        let out = run_default(
            &w,
            &SimConfig {
                error_fraction: 0.05,
                ..SimConfig::default()
            },
        );
        let errors = out
            .trace
            .records()
            .iter()
            .filter(|r| r.status == 500)
            .count();
        let share = errors as f64 / out.trace.len() as f64;
        assert!((0.03..0.07).contains(&share), "error share {share}");
    }
}
