//! N-level cache hierarchy: declarative tier configuration plus the
//! deterministic shared-tier runtime.
//!
//! A [`CacheHierarchy`] describes the edge tier (one cache per edge) and
//! zero or more *shared* tiers (regional caches, an origin shield) that
//! all edges consult on a miss, ordered from closest-to-edge to
//! closest-to-origin. Placement is declarative: [`Placement`] selects
//! between leave-copy-everywhere and leave-copy-down.
//!
//! ## Determinism: epoch-synchronized shared tiers
//!
//! Shared tiers are the one piece of cross-edge mutable state in the
//! simulator, so they are updated under a bulk-synchronous discipline
//! that is identical whether edges run interleaved in one thread or in
//! parallel lockstep: simulated time is cut into epochs of
//! [`CacheHierarchy::sync_interval`]; within an epoch every lookup reads
//! the epoch-start snapshot (side-effect-free `peek`), and every intended
//! mutation is recorded as a [`TierAccess`] tagged with
//! `(time, edge, per-edge sequence)`. At the epoch boundary the log is
//! sorted by that tag and applied. Because the tag is derived only from
//! per-edge deterministic state, the post-flush tier contents are a pure
//! function of (workload, config) — byte-identical at any shard count.

use jcdn_trace::{SimDuration, SimTime};

use crate::cache::PolicyCache;
use crate::policy::PolicyKind;

/// Upper bound on shared tiers, sized so per-tier counters can live in
/// fixed arrays on the simulator's hot path.
pub const MAX_SHARED_TIERS: usize = 8;

/// One tier of the hierarchy: a byte budget, an eviction policy, and an
/// optional cap on entry TTLs at this tier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierSpec {
    /// Display name (`edge`, `regional`, `shield`, …) for tables/flags.
    pub name: String,
    /// Byte capacity. For the edge tier this is *per edge*.
    pub capacity: u64,
    /// Eviction policy run by this tier.
    pub policy: PolicyKind,
    /// Optional TTL ceiling: entries inserted at this tier live at most
    /// this long even when the object's own TTL is longer.
    pub ttl_cap: Option<SimDuration>,
}

impl TierSpec {
    /// A tier named `name` with `capacity` bytes of LRU and no TTL cap.
    pub fn lru(name: &str, capacity: u64) -> TierSpec {
        TierSpec {
            name: name.to_string(),
            capacity,
            policy: PolicyKind::Lru,
            ttl_cap: None,
        }
    }

    /// Returns this spec with a different policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> TierSpec {
        self.policy = policy;
        self
    }

    /// Effective TTL for an object with `ttl` at this tier.
    pub fn effective_ttl(&self, ttl: SimDuration) -> SimDuration {
        match self.ttl_cap {
            Some(cap) => ttl.min(cap),
            None => ttl,
        }
    }
}

/// Where copies land as objects flow down the hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Placement {
    /// Leave-copy-everywhere: an origin fetch populates the edge and every
    /// shared tier; a tier hit populates the edge and every tier closer
    /// than the serving one. This is the classic CDN behavior and matches
    /// the old `parent_cache` semantics.
    #[default]
    CopyEverywhere,
    /// Leave-copy-down: an origin fetch populates only the deepest shared
    /// tier; each hit copies the object exactly one level closer to the
    /// client. Popular objects percolate toward the edge; one-hit wonders
    /// stay near the origin (Fricker et al.'s LCD).
    CopyDown,
}

impl Placement {
    /// Flag spelling (`everywhere` | `copy-down`).
    pub fn label(self) -> &'static str {
        match self {
            Placement::CopyEverywhere => "everywhere",
            Placement::CopyDown => "copy-down",
        }
    }

    /// Parses a flag spelling.
    pub fn parse(raw: &str) -> Result<Placement, String> {
        match raw.to_ascii_lowercase().as_str() {
            "everywhere" | "lce" => Ok(Placement::CopyEverywhere),
            "copy-down" | "copydown" | "lcd" => Ok(Placement::CopyDown),
            other => Err(format!(
                "unknown placement {other:?} (everywhere|copy-down)"
            )),
        }
    }
}

/// Declarative N-level cache hierarchy: one per-edge tier plus shared
/// tiers ordered edge-side first (`shared[0]` is the regional tier the
/// edge asks first; `shared.last()` is the origin shield).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheHierarchy {
    /// The per-edge tier.
    pub edge: TierSpec,
    /// Shared tiers, closest-to-edge first. May be empty.
    pub shared: Vec<TierSpec>,
    /// Copy placement discipline.
    pub placement: Placement,
    /// Epoch length for the bulk-synchronous shared-tier update. Shorter
    /// epochs track the sequential parent semantics more closely; longer
    /// epochs cost fewer synchronization barriers. Ignored when `shared`
    /// is empty.
    pub sync_interval: SimDuration,
}

impl CacheHierarchy {
    /// Default epoch length: one simulated second.
    pub const DEFAULT_SYNC_INTERVAL: SimDuration = SimDuration::from_secs(1);

    /// A single-tier hierarchy: per-edge LRU of `capacity` bytes.
    pub fn single(capacity: u64) -> CacheHierarchy {
        CacheHierarchy {
            edge: TierSpec::lru("edge", capacity),
            shared: Vec::new(),
            placement: Placement::CopyEverywhere,
            sync_interval: Self::DEFAULT_SYNC_INTERVAL,
        }
    }

    /// The compat shape of the old `parent_cache` option: per-edge LRU
    /// plus one shared LRU parent, leave-copy-everywhere.
    pub fn with_parent(edge_capacity: u64, parent_capacity: u64) -> CacheHierarchy {
        CacheHierarchy {
            edge: TierSpec::lru("edge", edge_capacity),
            shared: vec![TierSpec::lru("parent", parent_capacity)],
            placement: Placement::CopyEverywhere,
            sync_interval: Self::DEFAULT_SYNC_INTERVAL,
        }
    }

    /// Number of shared tiers.
    pub fn shared_tiers(&self) -> usize {
        self.shared.len()
    }

    /// Checks structural invariants; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.edge.capacity == 0 {
            return Err("edge tier capacity must be positive".into());
        }
        if self.shared.len() > MAX_SHARED_TIERS {
            return Err(format!(
                "at most {MAX_SHARED_TIERS} shared tiers supported (got {})",
                self.shared.len()
            ));
        }
        for tier in &self.shared {
            if tier.capacity == 0 {
                return Err(format!("tier {:?} capacity must be positive", tier.name));
            }
        }
        if !self.shared.is_empty() && self.sync_interval == SimDuration::ZERO {
            return Err("sync interval must be positive with shared tiers".into());
        }
        Ok(())
    }
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        CacheHierarchy::single(crate::SimConfig::default().cache_capacity)
    }
}

/// A shared tier's runtime state: the cache plus its spec-derived TTL cap.
#[derive(Debug)]
pub(crate) struct SharedTier {
    pub(crate) cache: PolicyCache<u32>,
    pub(crate) ttl_cap: Option<SimDuration>,
}

impl SharedTier {
    /// Builds runtime tiers from the hierarchy's shared specs. `seed` is
    /// the simulation seed; each tier's policy randomness is derived from
    /// it (SplitMix64-mixed with the tier index).
    pub(crate) fn build_all(hierarchy: &CacheHierarchy, seed: u64) -> Vec<SharedTier> {
        hierarchy
            .shared
            .iter()
            .enumerate()
            .map(|(t, spec)| SharedTier {
                cache: PolicyCache::with_policy(
                    spec.capacity,
                    spec.policy,
                    // Tier policy streams must differ from each other and
                    // from every edge's stream.
                    splitmix(seed ^ 0x7C15_7C15_7C15_7C15 ^ (t as u64 + 1)),
                ),
                ttl_cap: spec.ttl_cap,
            })
            .collect()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a logged access does to a shared tier at flush time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AccessKind {
    /// Refresh recency/frequency for a resident object (policy `on_hit`
    /// via a real `get`; a vanished entry degrades to a no-op miss).
    Touch,
    /// Insert (or refresh) the object.
    Insert {
        /// Body size in bytes.
        size: u64,
        /// TTL before this tier's cap.
        ttl: SimDuration,
    },
}

/// One intended shared-tier mutation, recorded during an epoch and
/// applied at the boundary in `(time, edge, eseq)` order.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TierAccess {
    pub(crate) time: SimTime,
    pub(crate) edge: u32,
    /// Per-edge monotone sequence number: orders same-edge accesses that
    /// share a timestamp.
    pub(crate) eseq: u64,
    /// Shared tier index.
    pub(crate) tier: u8,
    pub(crate) object: u32,
    pub(crate) kind: AccessKind,
}

/// Applies a drained epoch log to the shared tiers in canonical order.
/// Applying an empty log is a no-op, so epoch boundaries can be skipped
/// when no edge touched a shared tier.
pub(crate) fn flush_accesses(tiers: &mut [SharedTier], log: &mut Vec<TierAccess>) {
    log.sort_by_key(|a| (a.time, a.edge, a.eseq));
    for access in log.iter() {
        let tier = &mut tiers[access.tier as usize];
        match access.kind {
            AccessKind::Touch => {
                // A real `get`: refreshes recency and counts hit/miss in
                // the tier's own CacheStats. The entry may have expired or
                // been evicted since the lookup — then this is a no-op
                // beyond the miss count.
                tier.cache.get(access.object, access.time);
            }
            AccessKind::Insert { size, ttl } => {
                let ttl = match tier.ttl_cap {
                    Some(cap) => ttl.min(cap),
                    None => ttl,
                };
                tier.cache
                    .insert(access.object, size, ttl, access.time, false);
            }
        }
    }
    log.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_bad_shapes() {
        let mut h = CacheHierarchy::with_parent(1000, 4000);
        assert!(h.validate().is_ok());
        h.sync_interval = SimDuration::ZERO;
        assert!(h.validate().is_err());
        h.sync_interval = SimDuration::from_millis(100);
        h.shared[0].capacity = 0;
        assert!(h.validate().is_err());
        h.shared[0].capacity = 1;
        h.shared = vec![TierSpec::lru("t", 1); MAX_SHARED_TIERS + 1];
        assert!(h.validate().is_err());
    }

    #[test]
    fn flush_applies_in_time_edge_eseq_order() {
        let h = CacheHierarchy::with_parent(1000, 200);
        let mut tiers = SharedTier::build_all(&h, 42);
        let t0 = SimTime::from_secs(1);
        // Two edges insert different objects; capacity 200 holds only one.
        // Canonical order: edge 0 first, so edge 1's insert lands last and
        // wins the LRU fight regardless of log order.
        let mut log = vec![
            TierAccess {
                time: t0,
                edge: 1,
                eseq: 0,
                tier: 0,
                object: 7,
                kind: AccessKind::Insert {
                    size: 150,
                    ttl: SimDuration::MINUTE,
                },
            },
            TierAccess {
                time: t0,
                edge: 0,
                eseq: 0,
                tier: 0,
                object: 3,
                kind: AccessKind::Insert {
                    size: 150,
                    ttl: SimDuration::MINUTE,
                },
            },
        ];
        flush_accesses(&mut tiers, &mut log);
        assert!(log.is_empty());
        let later = SimTime::from_secs(2);
        assert!(
            tiers[0].cache.peek(7, later),
            "edge 1's insert applied last"
        );
        assert!(!tiers[0].cache.peek(3, later), "edge 0's insert evicted");
    }

    #[test]
    fn ttl_caps_apply_at_flush() {
        let h = CacheHierarchy {
            shared: vec![TierSpec {
                ttl_cap: Some(SimDuration::from_secs(10)),
                ..TierSpec::lru("shield", 1000)
            }],
            ..CacheHierarchy::single(1000)
        };
        let mut tiers = SharedTier::build_all(&h, 1);
        let mut log = vec![TierAccess {
            time: SimTime::ZERO,
            edge: 0,
            eseq: 0,
            tier: 0,
            object: 1,
            kind: AccessKind::Insert {
                size: 10,
                ttl: SimDuration::HOUR,
            },
        }];
        flush_accesses(&mut tiers, &mut log);
        assert!(tiers[0].cache.peek(1, SimTime::from_secs(9)));
        assert!(!tiers[0].cache.peek(1, SimTime::from_secs(10)), "capped");
    }
}
