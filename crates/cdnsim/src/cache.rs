//! The edge cache: byte-capacity cache with per-entry TTL and a pluggable
//! eviction policy.
//!
//! [`PolicyCache`] owns residency — the key→slot map, sizes, expiry, the
//! byte budget — and delegates *ordering* to an
//! [`EvictionPolicy`](crate::policy::EvictionPolicy). [`LruCache`] is the
//! LRU-defaulted alias; with the [`Lru`](crate::policy::Lru) policy the
//! cache behaves byte-identically to the original intrusive-list
//! implementation (locked in by the property suite in
//! `tests/lru_properties.rs`).

use std::collections::HashMap;
use std::hash::Hash;

use jcdn_trace::{SimDuration, SimTime};

use crate::policy::{EvictionPolicy, PolicyKind};

#[derive(Clone, Debug)]
struct Slot<K> {
    key: K,
    hash: u64,
    size: u64,
    expires: SimTime,
    prefetched: bool,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found a fresh entry.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// `get` calls that found an expired entry (counted as misses too).
    pub expirations: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Hits whose entry was inserted by a prefetch and not yet touched by a
    /// demand request — the numerator of prefetch usefulness.
    pub prefetch_hits: u64,
    /// Lookups answered with an expired entry inside the stale-if-error
    /// grace window (neither a hit nor a miss).
    pub stale_hits: u64,
    /// Bytes evicted to make room (the payload sizes behind `evictions`).
    pub evicted_bytes: u64,
    /// High-water mark of resident bytes — the occupancy gauge.
    pub max_used_bytes: u64,
}

/// Outcome of a grace-aware cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Entry resident and unexpired.
    Fresh,
    /// Entry expired, but still within the stale-if-error grace window; it
    /// stays resident so a later lookup can serve it again.
    Stale,
    /// Entry absent, or expired beyond the grace window (and removed).
    Miss,
}

/// Keys that can produce a stable 64-bit hash for policy-side identity
/// (frequency sketches, ghost lists). The hash must be identical across
/// runs and platforms — no `RandomState`.
pub trait StableKey {
    /// Stable, well-mixed 64-bit hash of the key.
    fn stable_hash(&self) -> u64;
}

/// SplitMix64 finalizer over the integer value.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! stable_key_int {
    ($($t:ty),*) => {$(
        impl StableKey for $t {
            fn stable_hash(&self) -> u64 {
                mix64(*self as u64)
            }
        }
    )*};
}
stable_key_int!(u8, u16, u32, u64, usize);

/// A byte-bounded cache with per-entry TTL and a pluggable eviction
/// policy.
///
/// Keys are small copyable ids (object ids in the simulator). Slot
/// storage is a slab with a free list, so the policy sees stable indices
/// and every operation is O(1) amortized for the LRU reference policy.
#[derive(Debug)]
pub struct PolicyCache<K: Eq + Hash + Copy + StableKey> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K>>,
    free: Vec<usize>,
    capacity: u64,
    used: u64,
    stats: CacheStats,
    policy: Box<dyn EvictionPolicy>,
}

/// The LRU-defaulted cache alias: `LruCache::new` builds a
/// [`PolicyCache`] running the reference [`Lru`](crate::policy::Lru)
/// policy, preserving the original type's name and behavior.
pub type LruCache<K> = PolicyCache<K>;

impl<K: Eq + Hash + Copy + StableKey> PolicyCache<K> {
    /// Creates an LRU cache bounded by `capacity` bytes.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: u64) -> Self {
        PolicyCache::with_policy(capacity, PolicyKind::Lru, 0)
    }

    /// Creates a cache bounded by `capacity` bytes running `kind`. `seed`
    /// feeds any policy-internal hashing (TinyLFU's sketch) and must come
    /// from the simulation's deterministic seed stream.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn with_policy(capacity: u64, kind: PolicyKind, seed: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        PolicyCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            capacity,
            used: 0,
            stats: CacheStats::default(),
            policy: kind.build(capacity, seed),
        }
    }

    /// Short name of the eviction policy in charge.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Byte capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key` at time `now`, refreshing recency on hit. An expired
    /// entry is removed and counted as a miss (plus an expiration).
    pub fn get(&mut self, key: K, now: SimTime) -> bool {
        self.get_with_grace(key, now, SimDuration::ZERO) == Lookup::Fresh
    }

    /// Looks up `key` at time `now`, tolerating entries that expired no more
    /// than `grace` ago (stale-if-error). A stale entry stays resident — the
    /// caller decides whether to serve it — while an entry expired beyond
    /// the grace window is removed and counted as a miss. With
    /// `grace == ZERO` this is exactly [`PolicyCache::get`].
    pub fn get_with_grace(&mut self, key: K, now: SimTime, grace: SimDuration) -> Lookup {
        match self.map.get(&key).copied() {
            None => {
                self.stats.misses += 1;
                Lookup::Miss
            }
            Some(idx) => {
                let expires = self.slots[idx].expires;
                if expires <= now {
                    if expires.saturating_add(grace) <= now {
                        self.remove_slot(idx);
                        self.stats.expirations += 1;
                        self.stats.misses += 1;
                        return Lookup::Miss;
                    }
                    self.policy.on_hit(idx, self.slots[idx].hash);
                    self.stats.stale_hits += 1;
                    return Lookup::Stale;
                }
                if self.slots[idx].prefetched {
                    self.slots[idx].prefetched = false;
                    self.stats.prefetch_hits += 1;
                }
                self.policy.on_hit(idx, self.slots[idx].hash);
                self.stats.hits += 1;
                Lookup::Fresh
            }
        }
    }

    /// True when `key` is resident and fresh, without recency/stat effects.
    pub fn peek(&self, key: K, now: SimTime) -> bool {
        self.map
            .get(&key)
            .is_some_and(|&idx| self.slots[idx].expires > now)
    }

    /// Fresh-entry size of `key`, without recency/stat effects.
    pub fn peek_size(&self, key: K, now: SimTime) -> Option<u64> {
        self.map
            .get(&key)
            .map(|&idx| &self.slots[idx])
            .filter(|slot| slot.expires > now)
            .map(|slot| slot.size)
    }

    /// Inserts (or refreshes) `key` with `size` bytes and `ttl` lifetime.
    /// Entries larger than the whole capacity are rejected (returns false).
    /// `prefetched` marks entries inserted speculatively.
    pub fn insert(
        &mut self,
        key: K,
        size: u64,
        ttl: SimDuration,
        now: SimTime,
        prefetched: bool,
    ) -> bool {
        if size > self.capacity {
            return false;
        }
        let expires = now.saturating_add(ttl);
        if let Some(&idx) = self.map.get(&key) {
            // Refresh in place.
            self.used = self.used - self.slots[idx].size + size;
            self.slots[idx].size = size;
            self.slots[idx].expires = expires;
            self.slots[idx].prefetched = prefetched;
            self.policy.on_refresh(idx, self.slots[idx].hash, size);
            self.evict_to_fit();
            self.stats.max_used_bytes = self.stats.max_used_bytes.max(self.used);
            return true;
        }
        self.used += size;
        let hash = key.stable_hash();
        let slot = Slot {
            key,
            hash,
            size,
            expires,
            prefetched,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.policy.on_insert(idx, hash, size);
        self.evict_to_fit();
        self.stats.max_used_bytes = self.stats.max_used_bytes.max(self.used);
        true
    }

    /// Removes `key` if present; returns whether it was resident.
    pub fn remove(&mut self, key: K) -> bool {
        match self.map.get(&key).copied() {
            Some(idx) => {
                self.remove_slot(idx);
                true
            }
            None => false,
        }
    }

    fn evict_to_fit(&mut self) {
        while self.used > self.capacity {
            let Some(victim) = self.policy.victim() else {
                debug_assert!(false, "over capacity with no victim");
                break;
            };
            self.stats.evicted_bytes += self.slots[victim].size;
            self.remove_slot(victim);
            self.stats.evictions += 1;
        }
    }

    fn remove_slot(&mut self, idx: usize) {
        self.policy.on_remove(idx);
        let key = self.slots[idx].key;
        self.used -= self.slots[idx].size;
        self.map.remove(&key);
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TTL: SimDuration = SimDuration::MINUTE;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn basic_hit_and_miss() {
        let mut c: LruCache<u32> = LruCache::new(1000);
        assert!(!c.get(1, t(0)));
        assert!(c.insert(1, 100, TTL, t(0), false));
        assert!(c.get(1, t(1)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: LruCache<u32> = LruCache::new(300);
        c.insert(1, 100, TTL, t(0), false);
        c.insert(2, 100, TTL, t(1), false);
        c.insert(3, 100, TTL, t(2), false);
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(1, t(3)));
        c.insert(4, 100, TTL, t(4), false);
        assert!(c.peek(1, t(5)));
        assert!(!c.peek(2, t(5)), "LRU entry must be evicted");
        assert!(c.peek(3, t(5)));
        assert!(c.peek(4, t(5)));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.used_bytes(), 300);
    }

    #[test]
    fn ttl_expiry_counts_as_miss() {
        let mut c: LruCache<u32> = LruCache::new(1000);
        c.insert(1, 10, SimDuration::from_secs(30), t(0), false);
        assert!(c.get(1, t(29)));
        assert!(!c.get(1, t(30)), "expires at exactly t+ttl");
        assert_eq!(c.stats().expirations, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn refresh_updates_size_and_expiry() {
        let mut c: LruCache<u32> = LruCache::new(1000);
        c.insert(1, 100, SimDuration::from_secs(10), t(0), false);
        c.insert(1, 250, SimDuration::from_secs(100), t(5), false);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 250);
        assert!(c.get(1, t(50)), "new TTL applies");
    }

    #[test]
    fn oversized_entries_rejected() {
        let mut c: LruCache<u32> = LruCache::new(100);
        assert!(!c.insert(1, 101, TTL, t(0), false));
        assert!(c.is_empty());
        assert!(c.insert(2, 100, TTL, t(0), false));
    }

    #[test]
    fn eviction_cascades_for_large_inserts() {
        let mut c: LruCache<u32> = LruCache::new(100);
        for k in 0..10 {
            c.insert(k, 10, TTL, t(0), false);
        }
        assert_eq!(c.len(), 10);
        c.insert(100, 95, TTL, t(1), false);
        assert!(c.peek(100, t(2)));
        assert!(c.used_bytes() <= 100);
        assert_eq!(c.stats().evictions, 10, "all small entries evicted");
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c: LruCache<u32> = LruCache::new(1000);
        c.insert(1, 10, TTL, t(0), false);
        assert!(c.remove(1));
        assert!(!c.remove(1));
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        // Slot gets reused without growing the slab.
        c.insert(2, 10, TTL, t(0), false);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn prefetch_hit_accounting() {
        let mut c: LruCache<u32> = LruCache::new(1000);
        c.insert(1, 10, TTL, t(0), true);
        assert!(c.get(1, t(1)));
        assert_eq!(c.stats().prefetch_hits, 1);
        // Second hit on the same entry is a plain hit.
        assert!(c.get(1, t(2)));
        assert_eq!(c.stats().prefetch_hits, 1);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn grace_window_serves_stale_then_expires() {
        let mut c: LruCache<u32> = LruCache::new(1000);
        c.insert(1, 10, SimDuration::from_secs(30), t(0), false);
        let grace = SimDuration::from_secs(60);
        assert_eq!(c.get_with_grace(1, t(29), grace), Lookup::Fresh);
        // Expired at t=30; within the 60 s grace it is stale, not gone.
        assert_eq!(c.get_with_grace(1, t(30), grace), Lookup::Stale);
        assert_eq!(c.get_with_grace(1, t(89), grace), Lookup::Stale);
        assert_eq!(c.len(), 1, "stale entries stay resident");
        // Grace ends at expiry + 60 s.
        assert_eq!(c.get_with_grace(1, t(90), grace), Lookup::Miss);
        assert!(c.is_empty());
        assert_eq!(c.stats().stale_hits, 2);
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn zero_grace_matches_plain_get() {
        let mut c: LruCache<u32> = LruCache::new(1000);
        c.insert(1, 10, SimDuration::from_secs(30), t(0), false);
        assert_eq!(
            c.get_with_grace(1, t(30), SimDuration::ZERO),
            Lookup::Miss,
            "zero grace keeps the old expire-at-ttl behaviour"
        );
        assert_eq!(c.stats().stale_hits, 0);
        assert_eq!(c.stats().expirations, 1);
    }

    #[test]
    fn peek_has_no_side_effects() {
        let mut c: LruCache<u32> = LruCache::new(200);
        c.insert(1, 100, TTL, t(0), false);
        c.insert(2, 100, TTL, t(1), false);
        // Peeking 1 must NOT refresh it.
        assert!(c.peek(1, t(2)));
        c.insert(3, 100, TTL, t(3), false);
        assert!(!c.peek(1, t(4)), "peek must not have refreshed entry 1");
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn occupancy_and_eviction_byte_gauges() {
        let mut c: LruCache<u32> = LruCache::new(300);
        c.insert(1, 200, TTL, t(0), false);
        c.insert(2, 100, TTL, t(1), false);
        assert_eq!(c.stats().max_used_bytes, 300);
        c.insert(3, 150, TTL, t(2), false); // evicts 1 (200 bytes)
        assert_eq!(c.stats().evicted_bytes, 200);
        assert_eq!(c.stats().max_used_bytes, 300, "high-water sticks");
        c.remove(2);
        c.remove(3);
        assert_eq!(c.stats().max_used_bytes, 300);
        assert_eq!(c.stats().evicted_bytes, 200, "removes are not evictions");
    }

    #[test]
    fn non_lru_policies_run_the_same_core() {
        for kind in PolicyKind::ALL {
            let mut c: PolicyCache<u32> = PolicyCache::with_policy(500, kind, 7);
            for k in 0..20 {
                c.insert(k, 50, TTL, t(k as u64), false);
                c.get(k / 2, t(k as u64));
            }
            assert!(
                c.used_bytes() <= 500,
                "{kind}: byte budget violated ({} bytes)",
                c.used_bytes()
            );
            let resident = c.len() as u64 * 50;
            assert_eq!(c.used_bytes(), resident, "{kind}: size accounting");
            assert_eq!(c.policy_name(), kind.label());
        }
    }
}
