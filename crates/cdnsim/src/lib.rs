//! # jcdn-cdnsim — a discrete-event CDN edge/origin simulator
//!
//! The paper's data comes from Akamai edge servers: requests arrive from
//! clients, are served from an edge cache when the customer configuration
//! allows and the object is resident, and are otherwise fetched from (or
//! tunneled to) the customer origin. This crate simulates that path and
//! emits the request logs (§3.1 schema) the analysis pipeline consumes.
//!
//! Design follows the event-driven, explicit-time style of embedded network
//! stacks (smoltcp): a single [`SimTime`] clock advanced by a binary-heap
//! event queue; no wall clock, no threads, no async — request handling is
//! CPU-bound and deterministic given (workload, config).
//!
//! Components:
//!
//! * [`cache::PolicyCache`] — byte-capacity edge cache with per-entry TTL
//!   and a pluggable [`policy::EvictionPolicy`] (LRU, LFU, SLRU, TinyLFU,
//!   S3-FIFO — see [`policy::PolicyKind`]),
//! * [`hierarchy::CacheHierarchy`] — declarative N-level edge → regional →
//!   origin-shield topology with per-tier capacity/TTL/policy and
//!   leave-copy-everywhere / copy-down placement,
//! * [`LatencyModel`] — client↔edge and edge↔origin delays,
//! * edge service queues with two priority classes, which the
//!   deprioritization experiment (§5.1's proposed optimization) exercises,
//! * a pluggable [`Policy`] hook consulted on every request — the prefetch
//!   and deprioritization engines in `jcdn-prefetch` implement it.
//!
//! * a fault-injection plan ([`fault::FaultPlan`]) with client retries and
//!   edge graceful degradation ([`fault::ResilienceConfig`]) for
//!   availability experiments: origin outages, degraded origins, bursty
//!   errors, edge flaps, serve-stale, negative caching, coalescing.
//!
//! ## Example
//!
//! ```
//! use jcdn_workload::{build, WorkloadConfig};
//! use jcdn_cdnsim::{run_default, SimConfig};
//!
//! let workload = build(&WorkloadConfig::tiny(42).scaled(0.1));
//! let output = run_default(&workload, &SimConfig::default());
//! // Failed attempts are retried as fresh events, so the trace holds one
//! // record per attempt: the original events plus every retry issued.
//! assert_eq!(
//!     output.trace.len() as u64,
//!     workload.events.len() as u64 + output.stats.retries_issued,
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fault;
pub mod hierarchy;
mod latency;
pub mod policy;
mod sim;

pub use fault::{
    EdgeFlap, ErrorBursts, FaultPlan, OriginDegradation, OriginOutage, ResilienceConfig, Window,
};
pub use hierarchy::{CacheHierarchy, Placement, TierSpec};
pub use latency::LatencyModel;
pub use policy::PolicyKind;
pub use sim::{
    run, run_default, run_sharded, NoopPolicy, Policy, PolicyOutcome, Priority, RequestCtx,
    SimConfig, SimOutput, SimStats,
};

// Re-exported for implementors of [`Policy`].
pub use jcdn_trace::{SimDuration, SimTime};
