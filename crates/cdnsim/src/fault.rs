//! Fault injection and resilience: the deterministic fault plan the
//! simulator executes, and the retry / graceful-degradation knobs that
//! decide how the synthetic CDN reacts to it.
//!
//! Real CDN logs are full of partial failure: origins go down for minutes,
//! get slow enough to trip timeouts, single edges flap out of rotation, and
//! origin errors arrive in bursts rather than as independent coin flips.
//! A [`FaultPlan`] describes all of that ahead of time — seed-driven and
//! reproducible, so the same (workload, config, plan) triple always yields
//! byte-identical traces — and a [`ResilienceConfig`] describes the
//! countermeasures: capped exponential client retries, stale-if-error
//! serving at the edge, negative caching of origin failures, and request
//! coalescing of concurrent misses.

use jcdn_trace::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A half-open simulated-time window `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// First instant inside the window.
    pub start: SimTime,
    /// First instant after the window.
    pub end: SimTime,
}

impl Window {
    /// Builds a window from second offsets into the simulation.
    pub fn from_secs(start: u64, end: u64) -> Window {
        Window {
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
        }
    }

    /// True when `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// A full origin outage for one domain: every origin fetch inside the
/// window fails with 503.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OriginOutage {
    /// Index into the workload's domain table.
    pub domain: u32,
    /// When the origin is unreachable.
    pub window: Window,
}

/// A degraded (slow) origin: fetch latency is multiplied by
/// `latency_factor`, which trips the configured origin timeout when the
/// inflated fetch would take longer than
/// [`ResilienceConfig::origin_timeout`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OriginDegradation {
    /// Index into the workload's domain table.
    pub domain: u32,
    /// When the origin is degraded.
    pub window: Window,
    /// Multiplier applied to origin fetch latency (> 1 slows it down).
    pub latency_factor: f64,
}

/// An edge server out of rotation: requests that would hash to it are
/// spread across the remaining edges for the duration of the window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeFlap {
    /// Index of the flapping edge.
    pub edge: usize,
    /// When the edge is out of rotation.
    pub window: Window,
}

/// Bursty stochastic origin errors: a two-state (quiet/burst) Markov chain
/// advanced once per origin attempt, replacing the i.i.d. error draw.
///
/// With `enter_burst == 0` (or equal error fractions in both states) this
/// degenerates to the classic independent draw, which is how the legacy
/// `error_fraction` knob is kept working — see [`ErrorBursts::iid`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorBursts {
    /// Error probability per origin attempt while quiet.
    pub quiet_error_fraction: f64,
    /// Error probability per origin attempt while bursting.
    pub burst_error_fraction: f64,
    /// Per-attempt probability of switching quiet → burst.
    pub enter_burst: f64,
    /// Per-attempt probability of switching burst → quiet.
    pub exit_burst: f64,
}

impl ErrorBursts {
    /// The i.i.d. degenerate case: every origin attempt fails independently
    /// with probability `p` (the behaviour of the old `error_fraction`).
    pub fn iid(p: f64) -> ErrorBursts {
        ErrorBursts {
            quiet_error_fraction: p,
            burst_error_fraction: p,
            enter_burst: 0.0,
            exit_burst: 1.0,
        }
    }

    /// Long-run error probability of the chain (the share of attempts spent
    /// in each state, weighted by that state's error fraction).
    pub fn stationary_error_fraction(&self) -> f64 {
        let denom = self.enter_burst + self.exit_burst;
        if denom <= 0.0 {
            return self.quiet_error_fraction;
        }
        let burst_share = self.enter_burst / denom;
        (1.0 - burst_share) * self.quiet_error_fraction + burst_share * self.burst_error_fraction
    }
}

/// Everything that goes wrong during one simulation, decided up front.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Hard origin outages.
    pub outages: Vec<OriginOutage>,
    /// Slow-origin periods.
    pub degradations: Vec<OriginDegradation>,
    /// Edges out of rotation.
    pub flaps: Vec<EdgeFlap>,
    /// Bursty stochastic errors; `None` falls back to the i.i.d.
    /// `error_fraction` draw.
    pub errors: Option<ErrorBursts>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.degradations.is_empty()
            && self.flaps.is_empty()
            && self.errors.is_none()
    }

    /// Is `domain`'s origin hard-down at `t`?
    pub fn outage_at(&self, domain: u32, t: SimTime) -> bool {
        self.outages
            .iter()
            .any(|o| o.domain == domain && o.window.contains(t))
    }

    /// Latency multiplier for `domain`'s origin at `t`, when degraded.
    /// Overlapping degradations compound (both slowdowns apply).
    pub fn degradation_at(&self, domain: u32, t: SimTime) -> Option<f64> {
        let mut factor = 1.0;
        let mut any = false;
        for d in &self.degradations {
            if d.domain == domain && d.window.contains(t) {
                factor *= d.latency_factor;
                any = true;
            }
        }
        any.then_some(factor)
    }

    /// Is `edge` out of rotation at `t`?
    pub fn edge_down(&self, edge: usize, t: SimTime) -> bool {
        self.flaps
            .iter()
            .any(|f| f.edge == edge && f.window.contains(t))
    }
}

/// Client retry policy and edge graceful-degradation knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceConfig {
    /// Maximum retries per logical request (0 disables retrying).
    pub retry_budget: u8,
    /// First backoff delay; doubles per attempt.
    pub retry_base: SimDuration,
    /// Backoff ceiling.
    pub retry_cap: SimDuration,
    /// How long past TTL expiry an entry may still be served when the
    /// origin is unavailable (stale-if-error). Zero disables serve-stale.
    pub stale_grace: SimDuration,
    /// How long an origin-unavailability failure is answered from the
    /// negative cache without re-contacting the origin. Zero disables it.
    pub negative_ttl: SimDuration,
    /// Abort an origin fetch that would take longer than this (degraded
    /// origins trip it and fail with 504).
    pub origin_timeout: SimDuration,
    /// Mark requests that land on an object whose origin fetch is still in
    /// flight, and make them wait for that fetch instead of assuming the
    /// body is already there.
    pub coalesce: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry_budget: 2,
            retry_base: SimDuration::from_millis(250),
            retry_cap: SimDuration::from_secs(8),
            stale_grace: SimDuration::from_secs(600),
            negative_ttl: SimDuration::from_secs(2),
            origin_timeout: SimDuration::from_secs(3),
            coalesce: true,
        }
    }
}

impl ResilienceConfig {
    /// Every countermeasure off — the control arm of availability
    /// experiments. The origin timeout stays, so degraded origins fail the
    /// same way in both arms and only the *reaction* differs.
    pub fn disabled() -> ResilienceConfig {
        ResilienceConfig {
            retry_budget: 0,
            stale_grace: SimDuration::ZERO,
            negative_ttl: SimDuration::ZERO,
            coalesce: false,
            ..ResilienceConfig::default()
        }
    }

    /// Backoff before retry number `attempt` (1-based): capped exponential
    /// with a deterministic jitter derived from the request identity, so
    /// retry storms de-synchronize without a wall clock or shared RNG.
    pub fn backoff(&self, attempt: u8, request_key: u64) -> SimDuration {
        let base = self.retry_base.as_micros().max(1);
        let exp = base.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(20));
        let capped = exp.min(self.retry_cap.as_micros().max(1));
        // Jitter in [-12.5%, +12.5%) from a splitmix64-style mix of the
        // request identity.
        let mut z = request_key
            .wrapping_add(u64::from(attempt))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 31;
        let jitter = (capped / 4).saturating_mul(z % 1000) / 1000;
        SimDuration::from_micros(capped - capped / 8 + jitter)
    }
}

/// Mutable fault-side state: the Markov error chain and its dedicated RNG
/// stream (separate from the simulator's main stream, so enabling bursts
/// does not perturb size/latency draws).
#[derive(Clone, Debug)]
pub struct FaultState {
    rng: StdRng,
    in_burst: bool,
}

impl FaultState {
    /// Builds the fault stream for one run. Callers derive `seed` from the
    /// simulation seed so the whole run stays reproducible.
    pub fn new(seed: u64) -> FaultState {
        FaultState {
            rng: StdRng::seed_from_u64(seed),
            in_burst: false,
        }
    }

    /// Draws whether this origin attempt fails stochastically, advancing
    /// the burst chain when one is configured; otherwise an independent
    /// draw with `fallback_p` (the legacy `error_fraction`).
    pub fn error_draw(&mut self, bursts: Option<&ErrorBursts>, fallback_p: f64) -> bool {
        match bursts {
            None => fallback_p > 0.0 && self.rng.gen_bool(fallback_p),
            Some(b) => {
                let flip = if self.in_burst {
                    b.exit_burst
                } else {
                    b.enter_burst
                };
                if flip > 0.0 && self.rng.gen_bool(flip.min(1.0)) {
                    self.in_burst = !self.in_burst;
                }
                let p = if self.in_burst {
                    b.burst_error_fraction
                } else {
                    b.quiet_error_fraction
                };
                p > 0.0 && self.rng.gen_bool(p.min(1.0))
            }
        }
    }

    /// True while the chain is in its burst state.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_half_open() {
        let w = Window::from_secs(10, 20);
        assert!(!w.contains(SimTime::from_secs(9)));
        assert!(w.contains(SimTime::from_secs(10)));
        assert!(w.contains(SimTime::from_secs(19)));
        assert!(!w.contains(SimTime::from_secs(20)));
    }

    #[test]
    fn plan_lookups_respect_domain_and_window() {
        let plan = FaultPlan {
            outages: vec![OriginOutage {
                domain: 3,
                window: Window::from_secs(100, 200),
            }],
            degradations: vec![
                OriginDegradation {
                    domain: 1,
                    window: Window::from_secs(0, 50),
                    latency_factor: 10.0,
                },
                OriginDegradation {
                    domain: 1,
                    window: Window::from_secs(40, 60),
                    latency_factor: 2.0,
                },
            ],
            flaps: vec![EdgeFlap {
                edge: 0,
                window: Window::from_secs(5, 6),
            }],
            errors: None,
        };
        assert!(!plan.is_empty());
        assert!(plan.outage_at(3, SimTime::from_secs(150)));
        assert!(!plan.outage_at(2, SimTime::from_secs(150)));
        assert!(!plan.outage_at(3, SimTime::from_secs(250)));
        assert_eq!(plan.degradation_at(1, SimTime::from_secs(10)), Some(10.0));
        assert_eq!(
            plan.degradation_at(1, SimTime::from_secs(45)),
            Some(20.0),
            "overlapping degradations compound"
        );
        assert_eq!(plan.degradation_at(0, SimTime::from_secs(10)), None);
        assert!(plan.edge_down(0, SimTime::from_secs(5)));
        assert!(!plan.edge_down(1, SimTime::from_secs(5)));
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn backoff_is_capped_exponential_with_bounded_jitter() {
        let r = ResilienceConfig::default();
        let mut prev = SimDuration::ZERO;
        for attempt in 1..=6u8 {
            let d = r.backoff(attempt, 42);
            // Jitter keeps the delay within ±25% of the capped exponential.
            let nominal = (r.retry_base.as_micros() << (attempt - 1)).min(r.retry_cap.as_micros());
            assert!(d.as_micros() >= nominal - nominal / 8, "attempt {attempt}");
            assert!(d.as_micros() <= nominal + nominal / 4, "attempt {attempt}");
            assert!(d >= prev || nominal == r.retry_cap.as_micros());
            prev = d;
        }
        // Deterministic per (attempt, key), distinct across keys.
        assert_eq!(r.backoff(1, 7), r.backoff(1, 7));
        assert_ne!(r.backoff(1, 7), r.backoff(1, 8));
    }

    #[test]
    fn iid_bursts_match_plain_fraction() {
        let b = ErrorBursts::iid(0.05);
        assert!((b.stationary_error_fraction() - 0.05).abs() < 1e-12);
        let mut s = FaultState::new(1);
        let n = 40_000;
        let hits = (0..n).filter(|_| s.error_draw(Some(&b), 0.0)).count();
        let share = hits as f64 / n as f64;
        assert!((0.04..0.06).contains(&share), "share {share}");
        assert!(!s.in_burst() || b.exit_burst == 1.0);
    }

    #[test]
    fn bursty_errors_cluster() {
        // Quiet 0.1% vs burst 60%, with slow transitions: the error stream
        // must show long runs, i.e. far more adjacent error pairs than an
        // i.i.d. stream of the same stationary rate would produce.
        let b = ErrorBursts {
            quiet_error_fraction: 0.001,
            burst_error_fraction: 0.6,
            enter_burst: 0.002,
            exit_burst: 0.02,
        };
        let mut s = FaultState::new(99);
        let draws: Vec<bool> = (0..60_000).map(|_| s.error_draw(Some(&b), 0.0)).collect();
        let rate = draws.iter().filter(|&&e| e).count() as f64 / draws.len() as f64;
        let pairs =
            draws.windows(2).filter(|w| w[0] && w[1]).count() as f64 / (draws.len() - 1) as f64;
        assert!(rate > 0.01, "stationary rate {rate}");
        assert!(
            pairs > 3.0 * rate * rate,
            "adjacent-error share {pairs} vs i.i.d. expectation {}",
            rate * rate
        );
    }

    #[test]
    fn fault_state_is_deterministic() {
        let b = ErrorBursts {
            quiet_error_fraction: 0.01,
            burst_error_fraction: 0.5,
            enter_burst: 0.01,
            exit_burst: 0.05,
        };
        let mut a = FaultState::new(5);
        let mut c = FaultState::new(5);
        for _ in 0..1000 {
            assert_eq!(a.error_draw(Some(&b), 0.0), c.error_draw(Some(&b), 0.0));
        }
    }

    #[test]
    fn disabled_resilience_turns_everything_off() {
        let r = ResilienceConfig::disabled();
        assert_eq!(r.retry_budget, 0);
        assert_eq!(r.stale_grace, SimDuration::ZERO);
        assert_eq!(r.negative_ttl, SimDuration::ZERO);
        assert!(!r.coalesce);
        assert_eq!(
            r.origin_timeout,
            ResilienceConfig::default().origin_timeout,
            "the timeout is part of the fault model, not the countermeasures"
        );
    }
}
