//! Pluggable eviction policies for the byte-capacity cache.
//!
//! The cache core ([`crate::cache::PolicyCache`]) owns residency: the
//! key→slot map, sizes, TTLs, and the byte budget. A policy owns *order*:
//! it observes admissions, hits, and removals, and is asked for the next
//! victim when the core must free space. Five policies are provided —
//! [`Lru`] (the reference policy, byte-identical to the original
//! intrusive-list cache), [`Lfu`], [`Slru`], [`TinyLfu`], and [`S3Fifo`].
//!
//! ## Determinism contract
//!
//! Policies are pure data structures: no wall clock, no ambient
//! randomness, no hash-ordered iteration. The only randomness a policy may
//! use is the `seed` passed to [`PolicyKind::build`] — derived by the
//! simulator from the edge's SplitMix64 stream — which [`TinyLfu`] uses to
//! key its frequency-sketch hash functions. Two caches built from the same
//! `(kind, capacity, seed)` and fed the same event sequence are in
//! identical states after every event.

use std::collections::{HashMap, VecDeque};

/// Marker for "no slot" in the intrusive lists.
const NIL: usize = usize::MAX;

/// How slot events reach a policy and how victims leave it.
///
/// Slot indices are stable from `on_insert` until the matching
/// `on_remove`; the core reuses indices afterwards. `key_hash` is a stable
/// 64-bit hash of the entry's key (see [`crate::cache::StableKey`]), the
/// only identity a policy may persist past removal (ghost lists,
/// frequency sketches).
pub trait EvictionPolicy: std::fmt::Debug + Send + Sync {
    /// Short policy name (`"lru"`, `"tinylfu"`, …) for tables and logs.
    fn name(&self) -> &'static str;

    /// A new slot was admitted with `size` bytes.
    fn on_insert(&mut self, idx: usize, key_hash: u64, size: u64);

    /// An existing slot was refreshed in place with a (possibly changed)
    /// size. The default treats a refresh as a hit; size-tracking policies
    /// override it to update their byte accounting.
    fn on_refresh(&mut self, idx: usize, key_hash: u64, size: u64) {
        let _ = size;
        self.on_hit(idx, key_hash);
    }

    /// A resident slot served a lookup (fresh or stale).
    fn on_hit(&mut self, idx: usize, key_hash: u64);

    /// The slot left the cache (eviction, expiry, or explicit removal).
    fn on_remove(&mut self, idx: usize);

    /// Picks the next victim among resident slots. Returns `None` only
    /// when the policy tracks no slots. Called repeatedly until the core
    /// is back under its byte budget; each returned slot is removed (with
    /// `on_remove`) before the next call.
    fn victim(&mut self) -> Option<usize>;
}

/// The available eviction policies, for configuration surfaces (CLI
/// flags, tier specs, benchmarks).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyKind {
    /// Least recently used (the reference policy).
    #[default]
    Lru,
    /// Least frequently used with LRU tie-breaking.
    Lfu,
    /// Segmented LRU: probationary + protected segments.
    Slru,
    /// TinyLFU admission over an LRU main cache (frequency sketch).
    TinyLfu,
    /// S3-FIFO: small/main FIFO queues with a ghost history.
    S3Fifo,
}

impl PolicyKind {
    /// Every kind, in table order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Lru,
        PolicyKind::Lfu,
        PolicyKind::Slru,
        PolicyKind::TinyLfu,
        PolicyKind::S3Fifo,
    ];

    /// The flag/table spelling (`lru`, `lfu`, `slru`, `tinylfu`,
    /// `s3fifo`).
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Lfu => "lfu",
            PolicyKind::Slru => "slru",
            PolicyKind::TinyLfu => "tinylfu",
            PolicyKind::S3Fifo => "s3fifo",
        }
    }

    /// Parses a flag spelling (case-insensitive; `s3-fifo` and `s3fifo`
    /// both accepted).
    pub fn parse(raw: &str) -> Result<PolicyKind, String> {
        match raw.to_ascii_lowercase().as_str() {
            "lru" => Ok(PolicyKind::Lru),
            "lfu" => Ok(PolicyKind::Lfu),
            "slru" => Ok(PolicyKind::Slru),
            "tinylfu" | "tiny-lfu" => Ok(PolicyKind::TinyLfu),
            "s3fifo" | "s3-fifo" => Ok(PolicyKind::S3Fifo),
            other => Err(format!(
                "unknown eviction policy {other:?} (lru|lfu|slru|tinylfu|s3fifo)"
            )),
        }
    }

    /// Builds a fresh policy instance for a cache of `capacity` bytes.
    /// `seed` feeds any policy-internal hashing ([`TinyLfu`]'s sketch);
    /// deterministic policies ignore it.
    pub fn build(self, capacity: u64, seed: u64) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Lfu => Box::new(Lfu::new()),
            PolicyKind::Slru => Box::new(Slru::new(capacity)),
            PolicyKind::TinyLfu => Box::new(TinyLfu::new(capacity, seed)),
            PolicyKind::S3Fifo => Box::new(S3Fifo::new(capacity)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicyKind::parse(s)
    }
}

/// One link in an intrusive doubly-linked list over slot indices.
#[derive(Clone, Copy, Debug)]
struct Link {
    prev: usize,
    next: usize,
}

impl Default for Link {
    fn default() -> Self {
        Link {
            prev: NIL,
            next: NIL,
        }
    }
}

/// An intrusive list (head = most recent / front) whose links live in a
/// shared slab indexed by slot id. All operations are O(1).
#[derive(Clone, Debug)]
struct List {
    head: usize,
    tail: usize,
}

impl Default for List {
    fn default() -> List {
        List::new()
    }
}

impl List {
    fn new() -> List {
        List {
            head: NIL,
            tail: NIL,
        }
    }

    fn push_front(&mut self, links: &mut [Link], idx: usize) {
        links[idx] = Link {
            prev: NIL,
            next: self.head,
        };
        if self.head != NIL {
            links[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, links: &mut [Link], idx: usize) {
        let Link { prev, next } = links[idx];
        if prev != NIL {
            links[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            links[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        links[idx] = Link::default();
    }

    fn tail(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }
}

/// Grows `links` so `idx` is addressable.
fn ensure_slot(links: &mut Vec<Link>, idx: usize) {
    if idx >= links.len() {
        links.resize(idx + 1, Link::default());
    }
}

// --------------------------------------------------------------------- LRU

/// Least recently used: the reference policy, byte-identical in behavior
/// to the original intrusive-list `LruCache`.
#[derive(Clone, Debug, Default)]
pub struct Lru {
    links: Vec<Link>,
    list: List,
}

impl Lru {
    /// Creates an empty LRU order.
    pub fn new() -> Lru {
        Lru {
            links: Vec::new(),
            list: List::new(),
        }
    }
}

impl EvictionPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn on_insert(&mut self, idx: usize, _key_hash: u64, _size: u64) {
        ensure_slot(&mut self.links, idx);
        self.list.push_front(&mut self.links, idx);
    }

    fn on_hit(&mut self, idx: usize, _key_hash: u64) {
        if self.list.head == idx {
            return;
        }
        self.list.unlink(&mut self.links, idx);
        self.list.push_front(&mut self.links, idx);
    }

    fn on_remove(&mut self, idx: usize) {
        self.list.unlink(&mut self.links, idx);
    }

    fn victim(&mut self) -> Option<usize> {
        self.list.tail()
    }
}

// --------------------------------------------------------------------- LFU

/// Least frequently used with LRU order inside each frequency class.
///
/// Frequency buckets live in a `BTreeMap` keyed by access count, so the
/// victim scan (`first bucket → tail`) is deterministic and O(log F).
#[derive(Clone, Debug, Default)]
pub struct Lfu {
    links: Vec<Link>,
    freq: Vec<u64>,
    buckets: std::collections::BTreeMap<u64, List>,
}

impl Lfu {
    /// Creates an empty LFU order.
    pub fn new() -> Lfu {
        Lfu::default()
    }

    fn push(&mut self, idx: usize, f: u64) {
        self.freq[idx] = f;
        self.buckets
            .entry(f)
            .or_default()
            .push_front(&mut self.links, idx);
    }

    fn unlink(&mut self, idx: usize) {
        let f = self.freq[idx];
        if let Some(list) = self.buckets.get_mut(&f) {
            list.unlink(&mut self.links, idx);
            if list.head == NIL {
                self.buckets.remove(&f);
            }
        }
    }
}

impl EvictionPolicy for Lfu {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn on_insert(&mut self, idx: usize, _key_hash: u64, _size: u64) {
        ensure_slot(&mut self.links, idx);
        if idx >= self.freq.len() {
            self.freq.resize(idx + 1, 0);
        }
        self.push(idx, 1);
    }

    fn on_hit(&mut self, idx: usize, _key_hash: u64) {
        let f = self.freq[idx];
        self.unlink(idx);
        self.push(idx, f.saturating_add(1));
    }

    fn on_remove(&mut self, idx: usize) {
        self.unlink(idx);
    }

    fn victim(&mut self) -> Option<usize> {
        self.buckets.values().next().and_then(List::tail)
    }
}

// -------------------------------------------------------------------- SLRU

/// Which SLRU segment a slot lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

/// Segmented LRU: new entries enter a probationary segment; a hit
/// promotes into a protected segment capped at 80% of the byte budget,
/// demoting the protected LRU back to probation when it overflows.
/// Victims come from the probation tail first.
#[derive(Clone, Debug)]
pub struct Slru {
    links: Vec<Link>,
    seg: Vec<Segment>,
    size: Vec<u64>,
    probation: List,
    protected: List,
    protected_bytes: u64,
    protected_cap: u64,
}

impl Slru {
    /// Creates the two-segment order for a cache of `capacity` bytes.
    pub fn new(capacity: u64) -> Slru {
        Slru {
            links: Vec::new(),
            seg: Vec::new(),
            size: Vec::new(),
            probation: List::new(),
            protected: List::new(),
            protected_bytes: 0,
            // 80/20 protected/probation split (the classic SLRU ratio).
            protected_cap: capacity / 5 * 4,
        }
    }

    fn ensure(&mut self, idx: usize) {
        ensure_slot(&mut self.links, idx);
        if idx >= self.seg.len() {
            self.seg.resize(idx + 1, Segment::Probation);
            self.size.resize(idx + 1, 0);
        }
    }

    fn shrink_protected(&mut self) {
        while self.protected_bytes > self.protected_cap {
            let Some(old) = self.protected.tail() else {
                break;
            };
            self.protected.unlink(&mut self.links, old);
            self.protected_bytes -= self.size[old];
            self.seg[old] = Segment::Probation;
            self.probation.push_front(&mut self.links, old);
        }
    }
}

impl EvictionPolicy for Slru {
    fn name(&self) -> &'static str {
        "slru"
    }

    fn on_insert(&mut self, idx: usize, _key_hash: u64, size: u64) {
        self.ensure(idx);
        self.seg[idx] = Segment::Probation;
        self.size[idx] = size;
        self.probation.push_front(&mut self.links, idx);
    }

    fn on_refresh(&mut self, idx: usize, key_hash: u64, size: u64) {
        if self.seg[idx] == Segment::Protected {
            self.protected_bytes = self.protected_bytes - self.size[idx] + size;
        }
        self.size[idx] = size;
        self.on_hit(idx, key_hash);
        self.shrink_protected();
    }

    fn on_hit(&mut self, idx: usize, _key_hash: u64) {
        match self.seg[idx] {
            Segment::Probation => {
                self.probation.unlink(&mut self.links, idx);
                self.seg[idx] = Segment::Protected;
                self.protected_bytes += self.size[idx];
                self.protected.push_front(&mut self.links, idx);
                self.shrink_protected();
            }
            Segment::Protected => {
                if self.protected.head != idx {
                    self.protected.unlink(&mut self.links, idx);
                    self.protected.push_front(&mut self.links, idx);
                }
            }
        }
    }

    fn on_remove(&mut self, idx: usize) {
        match self.seg[idx] {
            Segment::Probation => self.probation.unlink(&mut self.links, idx),
            Segment::Protected => {
                self.protected.unlink(&mut self.links, idx);
                self.protected_bytes -= self.size[idx];
            }
        }
    }

    fn victim(&mut self) -> Option<usize> {
        self.probation.tail().or_else(|| self.protected.tail())
    }
}

// ----------------------------------------------------------------- TinyLFU

/// SplitMix64 finalizer: the workspace's standard bit mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 4-row count–min sketch with 4-bit-style saturation (u8 counters
/// capped at 15) and periodic halving, the TinyLFU frequency filter.
#[derive(Clone, Debug)]
struct FrequencySketch {
    rows: [Vec<u8>; 4],
    mask: u64,
    seeds: [u64; 4],
    additions: u64,
    sample_size: u64,
}

impl FrequencySketch {
    fn new(capacity: u64, seed: u64) -> FrequencySketch {
        // One counter per ~1 KiB of budget: enough resolution for the
        // simulator's object universe without unbounded memory.
        let width = (capacity / 1024).clamp(1024, 1 << 20).next_power_of_two() as usize;
        let seeds = [
            splitmix(seed ^ 0x9E37),
            splitmix(seed ^ 0x85EB),
            splitmix(seed ^ 0xC2B2),
            splitmix(seed ^ 0x27D4),
        ];
        FrequencySketch {
            rows: std::array::from_fn(|_| vec![0u8; width]),
            mask: width as u64 - 1,
            seeds,
            additions: 0,
            sample_size: (width as u64) * 10,
        }
    }

    fn increment(&mut self, hash: u64) {
        for (row, &rs) in self.rows.iter_mut().zip(&self.seeds) {
            let slot = (splitmix(hash ^ rs) & self.mask) as usize;
            if row[slot] < 15 {
                row[slot] += 1;
            }
        }
        self.additions += 1;
        if self.additions >= self.sample_size {
            self.age();
        }
    }

    fn estimate(&self, hash: u64) -> u8 {
        self.rows
            .iter()
            .zip(&self.seeds)
            .map(|(row, &rs)| row[(splitmix(hash ^ rs) & self.mask) as usize])
            .min()
            .unwrap_or(0)
    }

    /// Halves every counter, keeping the sketch responsive to popularity
    /// shifts (the "reset" operation of the TinyLFU paper).
    fn age(&mut self) {
        for row in &mut self.rows {
            for c in row.iter_mut() {
                *c >>= 1;
            }
        }
        self.additions /= 2;
    }
}

/// TinyLFU admission over an LRU main cache.
///
/// Every access feeds the frequency sketch. When the core needs a victim
/// right after an insert, the newest entry is the *candidate*: it is
/// evicted itself (admission denied) unless the sketch estimates it to be
/// more popular than the LRU tail.
#[derive(Clone, Debug)]
pub struct TinyLfu {
    lru: Lru,
    hash: Vec<u64>,
    sketch: FrequencySketch,
    candidate: Option<usize>,
}

impl TinyLfu {
    /// Creates the policy for a cache of `capacity` bytes; `seed` keys
    /// the sketch's hash functions.
    pub fn new(capacity: u64, seed: u64) -> TinyLfu {
        TinyLfu {
            lru: Lru::new(),
            hash: Vec::new(),
            sketch: FrequencySketch::new(capacity, seed),
            candidate: None,
        }
    }
}

impl EvictionPolicy for TinyLfu {
    fn name(&self) -> &'static str {
        "tinylfu"
    }

    fn on_insert(&mut self, idx: usize, key_hash: u64, size: u64) {
        if idx >= self.hash.len() {
            self.hash.resize(idx + 1, 0);
        }
        self.hash[idx] = key_hash;
        self.sketch.increment(key_hash);
        self.lru.on_insert(idx, key_hash, size);
        self.candidate = Some(idx);
    }

    fn on_hit(&mut self, idx: usize, key_hash: u64) {
        self.sketch.increment(key_hash);
        self.lru.on_hit(idx, key_hash);
        // A demand hit proves the entry's worth; it is no longer the
        // admission candidate.
        if self.candidate == Some(idx) {
            self.candidate = None;
        }
    }

    fn on_remove(&mut self, idx: usize) {
        self.lru.on_remove(idx);
        if self.candidate == Some(idx) {
            self.candidate = None;
        }
    }

    fn victim(&mut self) -> Option<usize> {
        let tail = self.lru.victim()?;
        let Some(candidate) = self.candidate else {
            return Some(tail);
        };
        if candidate == tail {
            return Some(tail);
        }
        // Admission duel: the newcomer must beat the tail's frequency to
        // stay; ties favor the resident entry (scan resistance).
        if self.sketch.estimate(self.hash[candidate]) > self.sketch.estimate(self.hash[tail]) {
            Some(tail)
        } else {
            Some(candidate)
        }
    }
}

// ----------------------------------------------------------------- S3-FIFO

/// Which S3-FIFO queue a slot lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Queue {
    Small,
    Main,
}

/// S3-FIFO: a small probationary FIFO (10% of bytes), a main FIFO, and a
/// ghost history of recently evicted keys.
///
/// One-hit-wonders die cheaply out of the small queue; entries re-accessed
/// while small (or remembered by the ghost) enter the main queue, which
/// evicts FIFO-with-lazy-promotion (a touched tail is reinserted with its
/// counter decremented instead of evicted).
#[derive(Clone, Debug)]
pub struct S3Fifo {
    links: Vec<Link>,
    queue: Vec<Queue>,
    freq: Vec<u8>,
    hash: Vec<u64>,
    size: Vec<u64>,
    small: List,
    main: List,
    small_bytes: u64,
    small_target: u64,
    main_count: usize,
    ghost: VecDeque<u64>,
    ghost_set: HashMap<u64, u32>,
}

impl S3Fifo {
    /// Creates the three-queue order for a cache of `capacity` bytes.
    pub fn new(capacity: u64) -> S3Fifo {
        S3Fifo {
            links: Vec::new(),
            queue: Vec::new(),
            freq: Vec::new(),
            hash: Vec::new(),
            size: Vec::new(),
            small: List::new(),
            main: List::new(),
            small_bytes: 0,
            small_target: capacity / 10,
            main_count: 0,
            ghost: VecDeque::new(),
            ghost_set: HashMap::new(),
        }
    }

    fn ensure(&mut self, idx: usize) {
        ensure_slot(&mut self.links, idx);
        if idx >= self.queue.len() {
            self.queue.resize(idx + 1, Queue::Small);
            self.freq.resize(idx + 1, 0);
            self.hash.resize(idx + 1, 0);
            self.size.resize(idx + 1, 0);
        }
    }

    fn ghost_remember(&mut self, hash: u64) {
        self.ghost.push_back(hash);
        *self.ghost_set.entry(hash).or_insert(0) += 1;
        let cap = self.main_count.max(64);
        while self.ghost.len() > cap {
            if let Some(old) = self.ghost.pop_front() {
                if let Some(n) = self.ghost_set.get_mut(&old) {
                    *n -= 1;
                    if *n == 0 {
                        self.ghost_set.remove(&old);
                    }
                }
            }
        }
    }

    fn unlink(&mut self, idx: usize) {
        match self.queue[idx] {
            Queue::Small => {
                self.small.unlink(&mut self.links, idx);
                self.small_bytes -= self.size[idx];
            }
            Queue::Main => {
                self.main.unlink(&mut self.links, idx);
                self.main_count -= 1;
            }
        }
    }

    fn push_main(&mut self, idx: usize) {
        self.queue[idx] = Queue::Main;
        self.main.push_front(&mut self.links, idx);
        self.main_count += 1;
    }
}

impl EvictionPolicy for S3Fifo {
    fn name(&self) -> &'static str {
        "s3fifo"
    }

    fn on_insert(&mut self, idx: usize, key_hash: u64, size: u64) {
        self.ensure(idx);
        self.freq[idx] = 0;
        self.hash[idx] = key_hash;
        self.size[idx] = size;
        if self.ghost_set.contains_key(&key_hash) {
            // The ghost remembers this key: it was evicted recently while
            // still wanted, so it skips probation.
            self.push_main(idx);
        } else {
            self.queue[idx] = Queue::Small;
            self.small.push_front(&mut self.links, idx);
            self.small_bytes += size;
        }
    }

    fn on_refresh(&mut self, idx: usize, key_hash: u64, size: u64) {
        if self.queue[idx] == Queue::Small {
            self.small_bytes = self.small_bytes - self.size[idx] + size;
        }
        self.size[idx] = size;
        self.on_hit(idx, key_hash);
    }

    fn on_hit(&mut self, idx: usize, _key_hash: u64) {
        self.freq[idx] = self.freq[idx].saturating_add(1).min(3);
    }

    fn on_remove(&mut self, idx: usize) {
        self.unlink(idx);
    }

    fn victim(&mut self) -> Option<usize> {
        loop {
            let from_small = self.small_bytes > self.small_target || self.main.tail().is_none();
            if from_small {
                let Some(s) = self.small.tail() else {
                    return self.main.tail();
                };
                if self.freq[s] > 0 {
                    // Accessed while on probation: promote to main.
                    self.unlink(s);
                    self.freq[s] = 0;
                    self.push_main(s);
                    continue;
                }
                self.ghost_remember(self.hash[s]);
                return Some(s);
            }
            let m = self.main.tail()?;
            if self.freq[m] > 0 {
                // Lazy promotion: touched tails get another lap.
                self.main.unlink(&mut self.links, m);
                self.freq[m] -= 1;
                self.main.push_front(&mut self.links, m);
                continue;
            }
            return Some(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a policy through a scripted sequence, mirroring what the
    /// cache core would do, and returns eviction order for `n` victims.
    fn evict_n(policy: &mut dyn EvictionPolicy, n: usize) -> Vec<usize> {
        let mut order = Vec::new();
        for _ in 0..n {
            let Some(v) = policy.victim() else { break };
            policy.on_remove(v);
            order.push(v);
        }
        order
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = Lru::new();
        for i in 0..4 {
            p.on_insert(i, i as u64, 1);
        }
        p.on_hit(0, 0);
        assert_eq!(evict_n(&mut p, 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn lfu_evicts_least_frequent_then_lru() {
        let mut p = Lfu::new();
        for i in 0..3 {
            p.on_insert(i, i as u64, 1);
        }
        p.on_hit(0, 0);
        p.on_hit(0, 0);
        p.on_hit(2, 2);
        // freq: 0→3, 1→1, 2→2.
        assert_eq!(evict_n(&mut p, 3), vec![1, 2, 0]);
    }

    #[test]
    fn slru_protects_reaccessed_entries() {
        let mut p = Slru::new(1000);
        for i in 0..4 {
            p.on_insert(i, i as u64, 100);
        }
        p.on_hit(1, 1); // promote 1 to protected
                        // Victims drain probation (3, 2, 0 in LRU order) before touching
                        // the protected segment.
        assert_eq!(evict_n(&mut p, 4), vec![0, 2, 3, 1]);
    }

    #[test]
    fn tinylfu_rejects_cold_newcomers() {
        let mut p = TinyLfu::new(1 << 20, 7);
        p.on_insert(0, 100, 1);
        for _ in 0..5 {
            p.on_hit(0, 100); // make 0 hot
        }
        p.on_insert(1, 200, 1); // cold candidate
                                // The cold newcomer loses the admission duel and is its own victim.
        assert_eq!(p.victim(), Some(1));
    }

    #[test]
    fn s3fifo_one_hit_wonders_die_in_small_queue() {
        let mut p = S3Fifo::new(1000);
        p.on_insert(0, 0, 400); // small_bytes 400 > target 100
        p.on_insert(1, 1, 400);
        p.on_hit(0, 0); // 0 earns promotion
        let v = p.victim().unwrap();
        assert_eq!(v, 1, "untouched probationary entry evicts first");
        p.on_remove(v);
        // 0 was promoted to main during the victim scan.
        assert_eq!(p.victim(), Some(0));
    }

    #[test]
    fn s3fifo_ghost_resurrects_into_main() {
        let mut p = S3Fifo::new(1000);
        p.on_insert(0, 42, 400);
        p.on_insert(1, 43, 400);
        let v = p.victim().unwrap(); // evicts 1 (FIFO tail is 0... or 0)
        p.on_remove(v);
        let ghosted = if v == 0 { 42 } else { 43 };
        // Re-inserting the ghosted key goes straight to main.
        p.on_insert(2, ghosted, 10);
        assert_eq!(p.queue[2], Queue::Main);
    }

    #[test]
    fn policy_kind_parses_and_round_trips() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()), Ok(kind));
        }
        assert_eq!(PolicyKind::parse("S3-FIFO"), Ok(PolicyKind::S3Fifo));
        assert!(PolicyKind::parse("arc").is_err());
    }

    #[test]
    fn sketch_ages_without_losing_order() {
        let mut s = FrequencySketch::new(1 << 20, 1);
        for _ in 0..10 {
            s.increment(1);
        }
        s.increment(2);
        assert!(s.estimate(1) > s.estimate(2));
        s.age();
        assert!(s.estimate(1) > s.estimate(2), "halving preserves order");
    }
}
