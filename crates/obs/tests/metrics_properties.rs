//! Property tests for the snapshot merge algebra.
//!
//! Shard merging relies on `MetricsSnapshot::merge` forming a commutative
//! monoid over the counter/gauge/histogram triple: counters add, gauges
//! take the max, histograms add bucket-wise. Any shard count then folds
//! the same per-shard snapshots to the same total, in any order — which
//! is what makes the manifest's counter section shard-invariant.

use jcdn_obs::metrics::{Histogram, MetricsSnapshot};
use proptest::prelude::*;

/// A small arbitrary snapshot: a handful of counters, gauges, and
/// histogram observations drawn from a shared key space so merges
/// actually collide.
fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    let counter = (0u8..5, 0u64..1_000_000);
    let gauge = (0u8..3, 0u64..1_000_000);
    let observation = (0u8..3, 0u64..u64::MAX / 2);
    (
        prop::collection::vec(counter, 0..8),
        prop::collection::vec(gauge, 0..6),
        prop::collection::vec(observation, 0..12),
    )
        .prop_map(|(counters, gauges, observations)| {
            let mut s = MetricsSnapshot::new();
            for (k, v) in counters {
                s.inc(&format!("counter.{k}"), v);
            }
            for (k, v) in gauges {
                s.gauge_max(&format!("gauge.{k}"), v);
            }
            for (k, v) in observations {
                s.observe(&format!("hist.{k}"), v);
            }
            s
        })
}

/// Full observable state of a snapshot, for equality up to serialization.
fn fingerprint(s: &MetricsSnapshot) -> (String, String) {
    (s.counters_json(), s.perf_json())
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(fingerprint(&merged(&a, &b)), fingerprint(&merged(&b, &a)));
    }

    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
    }

    #[test]
    fn empty_snapshot_is_the_identity(a in arb_snapshot()) {
        let empty = MetricsSnapshot::new();
        prop_assert_eq!(fingerprint(&merged(&a, &empty)), fingerprint(&a));
        prop_assert_eq!(fingerprint(&merged(&empty, &a)), fingerprint(&a));
    }

    #[test]
    fn histogram_merge_preserves_count_and_sum(
        xs in prop::collection::vec(0u64..u64::MAX / 2, 0..32),
        split in 0usize..32,
    ) {
        let split = split.min(xs.len());
        let mut whole = Histogram::default();
        let mut left = Histogram::default();
        let mut right = Histogram::default();
        for (i, &x) in xs.iter().enumerate() {
            whole.observe(x);
            if i < split { left.observe(x) } else { right.observe(x) }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.sum(), whole.sum());
        prop_assert_eq!(left.max(), whole.max());
        prop_assert_eq!(left.to_json(), whole.to_json());
    }
}
