//! Property tests for the windowed-counter merge algebra.
//!
//! The time-series layer extends the shard-merge contract to buckets:
//! `WindowedCounters::merge` must form a commutative monoid (bucket-wise
//! snapshot merge), sliding-window rows must equal the merge of their
//! constituent base buckets, and the JSONL serialization must be a pure
//! function of the merged state — so any shard count folds the same
//! per-shard series to the same bytes.

use jcdn_obs::timeseries::{WindowSpec, WindowedCounters};
use proptest::prelude::*;

fn spec_1m() -> WindowSpec {
    match WindowSpec::parse("1m") {
        Ok(s) => s,
        Err(e) => unreachable!("static spec: {e}"),
    }
}

fn spec_sliding() -> WindowSpec {
    match WindowSpec::parse("3m/1m") {
        Ok(s) => s,
        Err(e) => unreachable!("static spec: {e}"),
    }
}

/// A small arbitrary series: increments at bounded sim-times over a
/// shared key space so merges actually collide on buckets and names.
fn arb_series(spec: WindowSpec) -> impl Strategy<Value = WindowedCounters> {
    let event = (0u64..600_000_000, 0u8..4, 1u64..1_000);
    prop::collection::vec(event, 0..24).prop_map(move |events| {
        let mut series = WindowedCounters::new(spec);
        for (t_us, key, by) in events {
            series.inc(t_us, &format!("k.{key}"), by);
        }
        series
    })
}

fn merged(a: &WindowedCounters, b: &WindowedCounters) -> WindowedCounters {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Full observable state: the canonical JSONL stream (covers bucket
/// contents, window indexing, and serialization order in one string).
fn fingerprint(s: &WindowedCounters) -> String {
    s.to_jsonl("t")
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_series(spec_1m()), b in arb_series(spec_1m())) {
        prop_assert_eq!(fingerprint(&merged(&a, &b)), fingerprint(&merged(&b, &a)));
    }

    #[test]
    fn merge_is_associative(
        a in arb_series(spec_1m()),
        b in arb_series(spec_1m()),
        c in arb_series(spec_1m()),
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
    }

    #[test]
    fn empty_series_is_identity(a in arb_series(spec_1m())) {
        let empty = WindowedCounters::new(spec_1m());
        prop_assert_eq!(fingerprint(&merged(&a, &empty)), fingerprint(&a));
        prop_assert_eq!(fingerprint(&merged(&empty, &a)), fingerprint(&a));
    }

    #[test]
    fn sliding_windows_merge_their_base_buckets(a in arb_series(spec_sliding())) {
        // Every emitted sliding row must equal the snapshot merge of the
        // base buckets it covers — the invariant that lets sliding state
        // stay slide-width buckets.
        let per = spec_sliding().buckets_per_window();
        for row in a.rows() {
            let mut expected = jcdn_obs::MetricsSnapshot::new();
            for (bucket, snapshot) in a.buckets() {
                if bucket >= row.window && bucket < row.window + per {
                    expected.merge(snapshot);
                }
            }
            prop_assert_eq!(row.counters.counters_json(), expected.counters_json());
        }
    }

    #[test]
    fn total_equals_sum_of_buckets(a in arb_series(spec_1m())) {
        let mut expected = jcdn_obs::MetricsSnapshot::new();
        for (_, snapshot) in a.buckets() {
            expected.merge(snapshot);
        }
        prop_assert_eq!(a.total().counters_json(), expected.counters_json());
    }

    #[test]
    fn split_accumulation_merges_to_whole(
        events in prop::collection::vec((0u64..600_000_000, 0u8..4, 1u64..1_000), 0..24),
        cut in 0usize..24,
    ) {
        // Accumulating one event stream in two halves and merging must be
        // indistinguishable from accumulating it whole — the shard story.
        let cut = cut.min(events.len());
        let mut whole = WindowedCounters::new(spec_1m());
        let mut left = WindowedCounters::new(spec_1m());
        let mut right = WindowedCounters::new(spec_1m());
        for (i, (t_us, key, by)) in events.iter().enumerate() {
            let name = format!("k.{key}");
            whole.inc(*t_us, &name, *by);
            if i < cut {
                left.inc(*t_us, &name, *by);
            } else {
                right.inc(*t_us, &name, *by);
            }
        }
        prop_assert_eq!(fingerprint(&merged(&left, &right)), fingerprint(&whole));
    }
}
