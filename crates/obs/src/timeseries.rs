//! Sim-clock-driven windowed metrics: tumbling and sliding windows over
//! the simulated timeline, with deterministic bucket retirement.
//!
//! A [`WindowedCounters`] is the time-series sibling of
//! [`MetricsSnapshot`]: the same mergeable-partials discipline (counters
//! add, merge is associative and commutative, serialization is
//! BTreeMap-ordered), except every increment carries a **simulated
//! timestamp** and lands in the base bucket covering it. Because bucket
//! assignment depends only on the record's sim time — never on which
//! shard or thread processed it — per-window counters are byte-identical
//! across shard and thread counts, exactly like the run totals.
//!
//! Window semantics:
//!
//! * A [`WindowSpec`] has a *width* and a *slide*, both in simulated
//!   microseconds. `slide == width` is a **tumbling** window; `slide <
//!   width` (with `width % slide == 0`) is a **sliding** window.
//! * State is always stored as *base buckets* of `slide` width. A
//!   sliding window's row is the merge of the `width / slide`
//!   consecutive buckets it covers, computed at emission time. Storing
//!   only base buckets keeps merge trivially associative: merging two
//!   partials is a bucket-index merge-join.
//! * Buckets exist only once something non-zero lands in them, so an
//!   idle stretch of simulated time costs nothing and produces no rows.
//!
//! Retirement ([`WindowedCounters::retire_completed`]) pops finished
//! windows in index order as the simulated clock advances, so a
//! long-lived consumer (the future `jcdn serve`) holds only the live
//! tail instead of the whole run. Retirement is driven by the simulated
//! clock passed in by the caller — this module never reads wall time.

use std::collections::BTreeMap;
use std::fmt;

use crate::json;
use crate::metrics::MetricsSnapshot;

/// Microseconds per second, the base of the duration grammar.
const US_PER_SECOND: u64 = 1_000_000;

/// Duration suffixes accepted by [`WindowSpec::parse`], largest first so
/// [`format_duration_us`] renders the most compact exact unit.
const UNITS: [(&str, u64); 6] = [
    ("d", 86_400 * US_PER_SECOND),
    ("h", 3_600 * US_PER_SECOND),
    ("m", 60 * US_PER_SECOND),
    ("s", US_PER_SECOND),
    ("ms", 1_000),
    ("us", 1),
];

/// Renders a microsecond duration in its largest exact unit (`60s` →
/// `"1m"`, `1500ms` stays `"1500ms"`).
pub fn format_duration_us(us: u64) -> String {
    for (suffix, scale) in UNITS {
        if us >= scale && us.is_multiple_of(scale) {
            return format!("{}{}", us / scale, suffix);
        }
    }
    format!("{us}us")
}

/// Parses a duration like `"60s"`, `"5m"`, `"250ms"` into microseconds.
pub fn parse_duration_us(s: &str) -> Result<u64, WindowSpecError> {
    let s = s.trim();
    // Longest-suffix match first so "5ms" is not read as "5m" + "s".
    for (suffix, scale) in [("us", 1), ("ms", 1_000)] {
        if let Some(digits) = s.strip_suffix(suffix) {
            return finish_duration(s, digits, scale);
        }
    }
    for (suffix, scale) in UNITS {
        if let Some(digits) = s.strip_suffix(suffix) {
            return finish_duration(s, digits, scale);
        }
    }
    Err(WindowSpecError::BadDuration(s.to_string()))
}

fn finish_duration(whole: &str, digits: &str, scale: u64) -> Result<u64, WindowSpecError> {
    let n: u64 = digits
        .parse()
        .map_err(|_| WindowSpecError::BadDuration(whole.to_string()))?;
    let us = n
        .checked_mul(scale)
        .ok_or_else(|| WindowSpecError::BadDuration(whole.to_string()))?;
    if us == 0 {
        return Err(WindowSpecError::ZeroWidth);
    }
    Ok(us)
}

/// Why a window specification was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WindowSpecError {
    /// A duration string did not parse (`"60x"`, `"-5s"`, overflow).
    BadDuration(String),
    /// Width or slide was zero.
    ZeroWidth,
    /// Slide exceeds width, or width is not a multiple of slide.
    BadSlide {
        /// Window width, µs.
        width_us: u64,
        /// Window slide, µs.
        slide_us: u64,
    },
}

impl fmt::Display for WindowSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSpecError::BadDuration(s) => {
                write!(f, "bad duration {s:?} (expected e.g. 60s, 5m, 250ms)")
            }
            WindowSpecError::ZeroWidth => write!(f, "window width and slide must be non-zero"),
            WindowSpecError::BadSlide { width_us, slide_us } => write!(
                f,
                "window width ({}) must be a positive multiple of slide ({})",
                format_duration_us(*width_us),
                format_duration_us(*slide_us)
            ),
        }
    }
}

impl std::error::Error for WindowSpecError {}

/// A window shape on the simulated timeline: width and slide in
/// simulated microseconds. Tumbling when `slide == width`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSpec {
    width_us: u64,
    slide_us: u64,
}

impl WindowSpec {
    /// A tumbling window of `width_us` microseconds.
    pub fn tumbling(width_us: u64) -> Result<WindowSpec, WindowSpecError> {
        WindowSpec::sliding(width_us, width_us)
    }

    /// A sliding window: `width_us` wide, advancing by `slide_us`.
    /// Requires `0 < slide_us <= width_us` and `width_us % slide_us == 0`.
    pub fn sliding(width_us: u64, slide_us: u64) -> Result<WindowSpec, WindowSpecError> {
        if width_us == 0 || slide_us == 0 {
            return Err(WindowSpecError::ZeroWidth);
        }
        if slide_us > width_us || !width_us.is_multiple_of(slide_us) {
            return Err(WindowSpecError::BadSlide { width_us, slide_us });
        }
        Ok(WindowSpec { width_us, slide_us })
    }

    /// Parses `"60s"` (tumbling) or `"5m/1m"` (width/slide sliding).
    pub fn parse(s: &str) -> Result<WindowSpec, WindowSpecError> {
        match s.split_once('/') {
            None => WindowSpec::tumbling(parse_duration_us(s)?),
            Some((width, slide)) => {
                WindowSpec::sliding(parse_duration_us(width)?, parse_duration_us(slide)?)
            }
        }
    }

    /// Window width, µs.
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    /// Window slide (bucket width), µs.
    pub fn slide_us(&self) -> u64 {
        self.slide_us
    }

    /// True when the window tumbles (`slide == width`).
    pub fn is_tumbling(&self) -> bool {
        self.slide_us == self.width_us
    }

    /// Number of base buckets one window covers (`width / slide`).
    pub fn buckets_per_window(&self) -> u64 {
        self.width_us / self.slide_us
    }

    /// The base-bucket index covering simulated time `t_us`.
    pub fn bucket_of(&self, t_us: u64) -> u64 {
        t_us / self.slide_us
    }

    /// Start of window `index` on the simulated timeline, µs (saturating).
    pub fn window_start_us(&self, index: u64) -> u64 {
        index.saturating_mul(self.slide_us)
    }

    /// Exclusive end of window `index`, µs (saturating). A window starts
    /// at its index times the slide and spans one full width.
    pub fn window_end_us(&self, index: u64) -> u64 {
        self.window_start_us(index).saturating_add(self.width_us)
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_tumbling() {
            f.write_str(&format_duration_us(self.width_us))
        } else {
            write!(
                f,
                "{}/{}",
                format_duration_us(self.width_us),
                format_duration_us(self.slide_us)
            )
        }
    }
}

impl std::str::FromStr for WindowSpec {
    type Err = WindowSpecError;

    fn from_str(s: &str) -> Result<WindowSpec, WindowSpecError> {
        WindowSpec::parse(s)
    }
}

/// One emitted window: its index, simulated time bounds, and the merged
/// counters of every base bucket it covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowRow {
    /// Window index (`start_us / slide_us`).
    pub window: u64,
    /// Window start on the simulated timeline, µs.
    pub start_us: u64,
    /// Exclusive window end, µs.
    pub end_us: u64,
    /// Counters accumulated inside the window.
    pub counters: MetricsSnapshot,
}

impl WindowRow {
    /// Serializes the row as one canonical JSONL line (no trailing
    /// newline): fixed key order, integers only, counters in BTreeMap
    /// order. `stream` tags which series the row belongs to (`"sim"`,
    /// `"section4"`, `"workload"`), so multiple series can share a file.
    pub fn to_jsonl(&self, stream: &str) -> String {
        let mut out = String::new();
        let mut w = json::ObjectWriter::begin(&mut out);
        w.field_str("stream", stream);
        w.field_u64("window", self.window);
        w.field_u64("start_us", self.start_us);
        w.field_u64("end_us", self.end_us);
        w.field_raw("counters", &self.counters.counters_json());
        w.end();
        out
    }
}

/// Windowed counters: a [`MetricsSnapshot`] per base bucket of the
/// simulated timeline. See the module docs for the window semantics and
/// the determinism argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowedCounters {
    spec: WindowSpec,
    /// Base buckets, keyed by bucket index. Created lazily on first
    /// non-zero increment.
    buckets: BTreeMap<u64, MetricsSnapshot>,
    /// First window index not yet emitted by retirement. Rows below this
    /// have already been handed out; [`rows`][Self::rows] resumes here.
    emitted_below: u64,
    /// Windows retired so far (monotone; survives merge as a max).
    retired: u64,
}

impl WindowedCounters {
    /// An empty series with the given window shape.
    pub fn new(spec: WindowSpec) -> WindowedCounters {
        WindowedCounters {
            spec,
            buckets: BTreeMap::new(),
            emitted_below: 0,
            retired: 0,
        }
    }

    /// The window shape.
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// True when no bucket holds anything.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Number of live (non-retired) base buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of windows retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Adds `by` to counter `name` in the bucket covering simulated time
    /// `t_us`. Zero increments create no bucket and no key, matching
    /// [`MetricsSnapshot::inc`].
    pub fn inc(&mut self, t_us: u64, name: &str, by: u64) {
        if by > 0 {
            self.buckets
                .entry(self.spec.bucket_of(t_us))
                .or_default()
                .inc(name, by);
        }
    }

    /// Merges a pre-built snapshot into bucket `bucket`: how bulk
    /// producers (per-edge tallies in `cdnsim`) fold a whole bucket in
    /// one call instead of re-keying every increment.
    pub fn merge_bucket(&mut self, bucket: u64, snapshot: &MetricsSnapshot) {
        if !snapshot.is_empty() {
            self.buckets.entry(bucket).or_default().merge(snapshot);
        }
    }

    /// Merges another partial into `self`, bucket-index-wise. Associative
    /// and commutative because [`MetricsSnapshot::merge`] is; the
    /// `timeseries_properties` suite holds it to that. Merge partials
    /// *before* retiring — retirement hands rows out and drops their
    /// buckets, so late-arriving increments for a retired window would be
    /// lost (debug-visible via the retirement high-water mark, kept as a
    /// max across merges).
    pub fn merge(&mut self, other: &WindowedCounters) {
        for (&bucket, snapshot) in &other.buckets {
            self.buckets.entry(bucket).or_default().merge(snapshot);
        }
        self.emitted_below = self.emitted_below.max(other.emitted_below);
        self.retired = self.retired.max(other.retired);
    }

    /// Iterates live base buckets in index order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, &MetricsSnapshot)> {
        self.buckets.iter().map(|(&i, s)| (i, s))
    }

    /// Folds every live bucket into one run-total snapshot.
    pub fn total(&self) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::new();
        for snapshot in self.buckets.values() {
            total.merge(snapshot);
        }
        total
    }

    /// The merged row for window `index`, when any covered bucket holds
    /// data: the merge of buckets `index .. index + width/slide`.
    fn window_row(&self, index: u64) -> Option<WindowRow> {
        let hi = index.saturating_add(self.spec.buckets_per_window());
        let mut counters = MetricsSnapshot::new();
        let mut any = false;
        for (_, snapshot) in self.buckets.range(index..hi) {
            counters.merge(snapshot);
            any = true;
        }
        any.then(|| WindowRow {
            window: index,
            start_us: self.spec.window_start_us(index),
            end_us: self.spec.window_end_us(index),
            counters,
        })
    }

    /// Every not-yet-retired window that overlaps at least one non-empty
    /// bucket, in index order. Deterministic: depends only on bucket
    /// contents, never on accumulation or merge order.
    pub fn rows(&self) -> Vec<WindowRow> {
        let (Some(&lo), Some(&hi)) = (self.buckets.keys().next(), self.buckets.keys().next_back())
        else {
            return Vec::new();
        };
        let per = self.spec.buckets_per_window();
        let first = lo.saturating_sub(per - 1).max(self.emitted_below);
        (first..=hi).filter_map(|w| self.window_row(w)).collect()
    }

    /// Retires every window fully in the past at simulated time `now_us`:
    /// emits their rows in index order, drops base buckets no unemitted
    /// window still covers, and advances the emission cursor. The clock
    /// is the *simulated* one — callers pass the timeline position they
    /// have fully processed, so the same inputs retire the same windows
    /// regardless of shard/thread schedule.
    pub fn retire_completed(&mut self, now_us: u64) -> Vec<WindowRow> {
        let mut rows = Vec::new();
        let (Some(&lo), Some(&hi)) = (self.buckets.keys().next(), self.buckets.keys().next_back())
        else {
            return rows;
        };
        let per = self.spec.buckets_per_window();
        let first = lo.saturating_sub(per - 1).max(self.emitted_below);
        for w in first..=hi {
            if self.spec.window_end_us(w) > now_us {
                // Window ends are monotone in the index; the first still-
                // open window ends the sweep.
                break;
            }
            if let Some(row) = self.window_row(w) {
                rows.push(row);
                self.retired += 1;
            }
            self.emitted_below = w + 1;
        }
        // Buckets below the emission cursor can never contribute to an
        // unemitted window again; drop them.
        self.buckets = self.buckets.split_off(&self.emitted_below);
        rows
    }

    /// Serializes [`rows`][Self::rows] as canonical JSONL lines tagged
    /// with `stream`, one per line, newline-terminated.
    pub fn to_jsonl(&self, stream: &str) -> String {
        let mut out = String::new();
        for row in self.rows() {
            out.push_str(&row.to_jsonl(stream));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> WindowSpec {
        match WindowSpec::parse(s) {
            Ok(spec) => spec,
            Err(e) => unreachable!("bad test spec {s}: {e}"),
        }
    }

    #[test]
    fn durations_parse_and_render() {
        assert_eq!(parse_duration_us("60s"), Ok(60 * US_PER_SECOND));
        assert_eq!(parse_duration_us("5m"), Ok(300 * US_PER_SECOND));
        assert_eq!(parse_duration_us("250ms"), Ok(250_000));
        assert_eq!(parse_duration_us("7us"), Ok(7));
        assert_eq!(parse_duration_us("1h"), Ok(3_600 * US_PER_SECOND));
        assert!(parse_duration_us("0s").is_err());
        assert!(parse_duration_us("5x").is_err());
        assert!(parse_duration_us("-5s").is_err());
        assert_eq!(format_duration_us(60 * US_PER_SECOND), "1m");
        assert_eq!(format_duration_us(1_500), "1500us");
        assert_eq!(format_duration_us(250_000), "250ms");
    }

    #[test]
    fn specs_parse_tumbling_and_sliding() {
        let t = spec("60s");
        assert!(t.is_tumbling());
        assert_eq!(t.buckets_per_window(), 1);
        assert_eq!(t.to_string(), "1m");

        let s = spec("5m/1m");
        assert!(!s.is_tumbling());
        assert_eq!(s.buckets_per_window(), 5);
        assert_eq!(s.to_string(), "5m/1m");

        assert!(WindowSpec::parse("1m/7s").is_err(), "width % slide != 0");
        assert!(WindowSpec::parse("1m/2m").is_err(), "slide > width");
    }

    #[test]
    fn increments_land_in_sim_time_buckets() {
        let mut w = WindowedCounters::new(spec("1m"));
        w.inc(0, "req", 1);
        w.inc(59_999_999, "req", 1);
        w.inc(60_000_000, "req", 5);
        w.inc(61_000_000, "other", 0); // zero: no bucket, no key
        assert_eq!(w.bucket_count(), 2);
        let rows = w.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].window, 0);
        assert_eq!(rows[0].counters.counter("req"), 2);
        assert_eq!(rows[1].window, 1);
        assert_eq!(rows[1].start_us, 60_000_000);
        assert_eq!(rows[1].end_us, 120_000_000);
        assert_eq!(rows[1].counters.counter("req"), 5);
    }

    #[test]
    fn sliding_rows_merge_covered_buckets() {
        let mut w = WindowedCounters::new(spec("2m/1m"));
        w.inc(30_000_000, "req", 1); // bucket 0
        w.inc(90_000_000, "req", 2); // bucket 1
        w.inc(210_000_000, "req", 4); // bucket 3
        let rows = w.rows();
        let by_window: BTreeMap<u64, u64> = rows
            .iter()
            .map(|r| (r.window, r.counters.counter("req")))
            .collect();
        // Window w covers buckets [w, w+2).
        assert_eq!(by_window.get(&0), Some(&3));
        assert_eq!(by_window.get(&1), Some(&2));
        assert_eq!(by_window.get(&2), Some(&4), "bucket 3 via window 2..4");
        assert_eq!(by_window.get(&3), Some(&4));
        // Window 2 has no data in buckets 2..4 only if bucket 3 empty —
        // it is not; but window 4+ has nothing.
        assert!(!by_window.contains_key(&4));
    }

    #[test]
    fn merge_is_bucketwise_and_matches_single_writer() {
        let s = spec("1m");
        let mut all = WindowedCounters::new(s);
        let mut a = WindowedCounters::new(s);
        let mut b = WindowedCounters::new(s);
        for (t, n) in [(10u64, 1u64), (61_000_000, 2), (190_000_000, 3)] {
            all.inc(t, "req", n);
            if t < 100_000_000 {
                a.inc(t, "req", n);
            } else {
                b.inc(t, "req", n);
            }
        }
        let mut merged = WindowedCounters::new(s);
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, all);
        assert_eq!(merged.to_jsonl("sim"), all.to_jsonl("sim"));
        assert_eq!(merged.total().counter("req"), 6);
    }

    #[test]
    fn retirement_pops_finished_windows_and_drops_buckets() {
        let mut w = WindowedCounters::new(spec("1m"));
        w.inc(10, "req", 1);
        w.inc(60_000_001, "req", 2);
        w.inc(120_000_001, "req", 3);
        // At t=2m, windows 0 and 1 are fully past (ends are exclusive).
        let rows = w.retire_completed(120_000_000);
        assert_eq!(
            rows.iter().map(|r| r.window).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(w.bucket_count(), 1);
        assert_eq!(w.retired(), 2);
        // rows() resumes after the cursor.
        assert_eq!(w.rows().first().map(|r| r.window), Some(2));
        // Finishing the run retires the rest.
        let rest = w.retire_completed(u64::MAX);
        assert_eq!(rest.iter().map(|r| r.window).collect::<Vec<_>>(), vec![2]);
        assert!(w.is_empty());
        assert_eq!(w.retired(), 3);
    }

    #[test]
    fn retirement_then_rows_never_duplicates_windows() {
        let mut w = WindowedCounters::new(spec("2m/1m"));
        for t in (0..10).map(|i| i * 60_000_000) {
            w.inc(t, "req", 1);
        }
        let mut seen: Vec<u64> = Vec::new();
        seen.extend(w.retire_completed(5 * 60_000_000).iter().map(|r| r.window));
        seen.extend(w.retire_completed(8 * 60_000_000).iter().map(|r| r.window));
        seen.extend(w.rows().iter().map(|r| r.window));
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seen, sorted, "windows emitted once, in order: {seen:?}");
    }

    #[test]
    fn jsonl_is_canonical() {
        let mut w = WindowedCounters::new(spec("1m"));
        w.inc(5, "b", 2);
        w.inc(5, "a", 1);
        assert_eq!(
            w.to_jsonl("sim"),
            "{\"stream\":\"sim\",\"window\":0,\"start_us\":0,\"end_us\":60000000,\
             \"counters\":{\"a\":1,\"b\":2}}\n"
        );
    }
}
