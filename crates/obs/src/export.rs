//! Exporters: Prometheus text exposition and chrome-trace span dumps.
//!
//! Both formats are *views* over data the crate already holds — a
//! [`MetricsSnapshot`] or a drained span list — so exporting never
//! perturbs the determinism contract: counters render byte-identically
//! for byte-identical snapshots, and spans (wall-clock perf data) only
//! ever feed the trace export.
//!
//! * [`prometheus_text`] renders the standard text exposition format
//!   (`# TYPE` headers, one sample per line). Our metric keys
//!   (`sim.hits{edge=3}`) map to Prometheus names (`jcdn_sim_hits`) with
//!   quoted label values; counters export as `counter`, gauges as
//!   `gauge`, and the fixed-bucket histograms as cumulative `histogram`
//!   families with `le` labels.
//! * [`chrome_trace`] renders the span ring as a Chrome trace-event JSON
//!   object (load it in `about://tracing` or Perfetto), with the ring's
//!   eviction count surfaced in the `otherData` footer so a truncated
//!   timeline is never mistaken for a complete one.

use std::collections::BTreeMap;

use crate::json;
use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;

/// Maps a metric family name to a Prometheus metric name: `jcdn_` prefix,
/// every character outside `[A-Za-z0-9_:]` folded to `_`
/// (`sim.tier_hits` → `jcdn_sim_tier_hits`).
pub fn prometheus_name(family: &str) -> String {
    let mut out = String::with_capacity(family.len() + 5);
    out.push_str("jcdn_");
    for c in family.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Splits a metric key into its family and label pairs:
/// `"sim.hits{edge=3,tier=1}"` → `("sim.hits", [("edge","3"),("tier","1")])`.
fn split_key(key: &str) -> (&str, Vec<(&str, &str)>) {
    let Some((family, rest)) = key.split_once('{') else {
        return (key, Vec::new());
    };
    let body = rest.strip_suffix('}').unwrap_or(rest);
    let labels = body
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| part.split_once('=').unwrap_or((part, "")))
        .collect();
    (family, labels)
}

/// Renders a Prometheus label set: `{edge="3",tier="1"}`, empty string
/// when there are no labels. Values are escaped per the exposition
/// format (`\\`, `\"`, `\n`).
fn prometheus_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (name, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(name);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// One exposition family: every sample sharing a metric name, collected
/// before emission so interleaved key orders (`cache.tier{…}` sorts
/// *after* `cache.tier_hits{…}`) still produce contiguous families.
type Families = BTreeMap<String, Vec<(String, u64)>>;

fn collect_families<'a>(pairs: impl Iterator<Item = (&'a str, u64)>) -> Families {
    let mut families = Families::new();
    for (key, value) in pairs {
        let (family, labels) = split_key(key);
        families
            .entry(prometheus_name(family))
            .or_default()
            .push((prometheus_labels(&labels), value));
    }
    families
}

fn emit_families(out: &mut String, families: &Families, kind: &str) {
    for (name, samples) in families {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for (labels, value) in samples {
            out.push_str(&format!("{name}{labels} {value}\n"));
        }
    }
}

/// Renders a snapshot in the Prometheus text exposition format:
/// counters, then gauges, then histograms (cumulative `_bucket` series
/// plus `_sum` and `_count`), each family under its `# TYPE` header.
/// Deterministic for deterministic snapshots — families and samples
/// emit in BTreeMap order.
pub fn prometheus_text(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    emit_families(&mut out, &collect_families(metrics.counters()), "counter");
    emit_families(&mut out, &collect_families(metrics.gauges()), "gauge");
    for (key, hist) in metrics.histograms() {
        let (family, labels) = split_key(key);
        let name = prometheus_name(family);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (edge, count) in hist.buckets() {
            cumulative += count;
            let le = if edge == "inf" { "+Inf" } else { edge };
            let mut with_le: Vec<(&str, &str)> = labels.clone();
            with_le.push(("le", le));
            out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                prometheus_labels(&with_le)
            ));
        }
        let plain = prometheus_labels(&labels);
        out.push_str(&format!("{name}_sum{plain} {}\n", hist.sum()));
        out.push_str(&format!("{name}_count{plain} {}\n", hist.count()));
    }
    out
}

/// Renders drained spans as a Chrome trace-event JSON object — complete
/// (`ph:"X"`) events on one process/thread track, microsecond
/// timestamps, with the ring's eviction count in the `otherData` footer
/// (a ring that wrapped shows `spans_dropped > 0`, so a truncated
/// timeline is self-describing).
pub fn chrome_trace(spans: &[SpanRecord], spans_dropped: u64) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut event = String::new();
        let mut w = json::ObjectWriter::begin(&mut event);
        w.field_str("name", &span.name);
        w.field_str("cat", "jcdn");
        w.field_str("ph", "X");
        w.field_u64("ts", span.start_us);
        w.field_u64("dur", span.duration_us);
        w.field_u64("pid", 1);
        w.field_u64("tid", 1);
        w.end();
        out.push_str(&event);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    let mut footer = String::new();
    let mut w = json::ObjectWriter::begin(&mut footer);
    w.field_str("spans_dropped", &spans_dropped.to_string());
    w.end();
    // ObjectWriter wraps in braces; splice its body into the footer.
    out.push_str(footer.trim_start_matches('{').trim_end_matches('}'));
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_sanitize_and_prefix() {
        assert_eq!(prometheus_name("sim.hits"), "jcdn_sim_hits");
        assert_eq!(prometheus_name("cache.tier_hits"), "jcdn_cache_tier_hits");
    }

    #[test]
    fn keys_split_into_family_and_labels() {
        assert_eq!(split_key("sim.hits"), ("sim.hits", vec![]));
        assert_eq!(
            split_key("sim.hits{edge=3,tier=1}"),
            ("sim.hits", vec![("edge", "3"), ("tier", "1")])
        );
    }

    #[test]
    fn counters_and_gauges_expose_with_type_headers() {
        let mut m = MetricsSnapshot::new();
        m.inc("sim.requests{edge=0}", 7);
        m.inc("sim.requests{edge=1}", 3);
        m.inc("sim.retries", 2);
        m.gauge_max("pool.depth", 5);
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE jcdn_sim_requests counter\n"));
        assert!(text.contains("jcdn_sim_requests{edge=\"0\"} 7\n"));
        assert!(text.contains("jcdn_sim_requests{edge=\"1\"} 3\n"));
        assert!(text.contains("jcdn_sim_retries 2\n"));
        assert!(text.contains("# TYPE jcdn_pool_depth gauge\n"));
        assert!(text.contains("jcdn_pool_depth 5\n"));
    }

    #[test]
    fn families_stay_contiguous_despite_brace_sort_order() {
        // "cache.tier{…}" sorts after "cache.tier_hits" in BTreeMap key
        // order; the exposition must still group by family.
        let mut m = MetricsSnapshot::new();
        m.inc("cache.tier{edge=0}", 1);
        m.inc("cache.tier_hits", 2);
        let text = prometheus_text(&m);
        let headers: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        assert_eq!(
            headers,
            vec![
                "# TYPE jcdn_cache_tier counter",
                "# TYPE jcdn_cache_tier_hits counter"
            ]
        );
    }

    #[test]
    fn histograms_expose_cumulative_buckets() {
        let mut m = MetricsSnapshot::new();
        m.observe("task.latency_us", 2);
        m.observe("task.latency_us", 1_000_000_000);
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE jcdn_task_latency_us histogram\n"));
        assert!(text.contains("jcdn_task_latency_us_bucket{le=\"3\"} 1\n"));
        assert!(text.contains("jcdn_task_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("jcdn_task_latency_us_count 2\n"));
    }

    #[test]
    fn chrome_trace_carries_events_and_drop_footer() {
        let spans = vec![SpanRecord {
            name: "simulate.edge{edge=3}".to_string(),
            start_us: 10,
            duration_us: 250,
        }];
        let trace = chrome_trace(&spans, 7);
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"simulate.edge{edge=3}\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ts\":10"));
        assert!(trace.contains("\"dur\":250"));
        assert!(trace.contains("\"otherData\":{\"spans_dropped\":\"7\"}"));
        let empty = chrome_trace(&[], 0);
        assert!(empty.contains("\"traceEvents\":[]"));
    }
}
