//! The wall-clock boundary: the only module in the workspace that reads
//! `Instant::now`.
//!
//! Everything this module produces is **non-deterministic by
//! construction** and must stay out of seed-reproducible output: timings
//! flow into span records, pool reports, and the `"perf"` section of a
//! [`crate::RunManifest`], never into [`crate::MetricsSnapshot`] counters.
//! `allowlist.toml` carries the single D1 exemption for this file; any
//! other `Instant::now` in the tree is a lint finding.

use std::sync::OnceLock;
use std::time::Instant;

/// The process epoch: the first time anything asked for the clock.
/// Monotonic microsecond readings are relative to this instant, so they
/// are small, comparable within one process, and meaningless across
/// processes — which is the point.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds elapsed since the process epoch (first clock use).
/// Monotonic within one process; never comparable across processes.
pub fn monotonic_us() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(Instant::now().duration_since(epoch).as_micros()).unwrap_or(u64::MAX)
}

/// A started wall-clock timer. The one sanctioned way to measure elapsed
/// real time outside this crate.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        // Touch the epoch so `monotonic_us` readings taken later share a
        // base that predates this stopwatch.
        EPOCH.get_or_init(Instant::now);
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_us();
        let b = sw.elapsed_us();
        assert!(b >= a);
    }

    #[test]
    fn monotonic_us_never_goes_backwards() {
        let a = monotonic_us();
        let b = monotonic_us();
        assert!(b >= a);
    }
}
