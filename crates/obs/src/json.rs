//! Minimal JSON emission for manifests and snapshots.
//!
//! `jcdn-obs` is dependency-free (it sits below `jcdn-json` in the crate
//! graph), so it carries its own ~hundred-line writer: objects with
//! already-ordered keys, string escaping per RFC 8259, and integers only —
//! every value the observability layer emits is a count, a microsecond
//! reading, or a label.

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An object writer that tracks comma placement. Keys are emitted in call
/// order; callers iterate `BTreeMap`s so the order is deterministic.
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Opens `{` on `out`.
    pub fn begin(out: &'a mut String) -> ObjectWriter<'a> {
        out.push('{');
        ObjectWriter { out, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_string(self.out, key);
        self.out.push(':');
    }

    /// Writes `"key": <integer>`.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// Writes `"key": "<value>"` with escaping.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        push_string(self.out, value);
    }

    /// Writes `"key": <already-serialized JSON>`. The caller vouches that
    /// `raw` is valid JSON (a nested object or array it just built).
    pub fn field_raw(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.out.push_str(raw);
    }

    /// Closes the object with `}`.
    pub fn end(self) {
        self.out.push('}');
    }
}

/// Serializes an iterator of `(key, integer)` pairs as one JSON object.
/// Callers pass `BTreeMap` iterators, so key order is deterministic.
pub fn object_of_u64<'k>(pairs: impl Iterator<Item = (&'k str, u64)>) -> String {
    let mut out = String::new();
    let mut w = ObjectWriter::begin(&mut out);
    for (k, v) in pairs {
        w.field_u64(k, v);
    }
    w.end();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        push_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn object_writer_places_commas() {
        let mut out = String::new();
        let mut w = ObjectWriter::begin(&mut out);
        w.field_u64("a", 1);
        w.field_str("b", "x");
        w.field_raw("c", "{}");
        w.end();
        assert_eq!(out, "{\"a\":1,\"b\":\"x\",\"c\":{}}");
    }

    #[test]
    fn empty_object() {
        let mut out = String::new();
        ObjectWriter::begin(&mut out).end();
        assert_eq!(out, "{}");
    }
}
