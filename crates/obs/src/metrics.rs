//! Mergeable metrics: counters, gauges, and fixed-bucket histograms.
//!
//! The shape mirrors the workspace's existing partial-statistics idiom
//! (`SimStats::merge`, `PartialReport::merge`): a [`MetricsSnapshot`] is a
//! *value* accumulated by one shard/edge/worker and merged in any order
//! into the run total. Merging is associative and commutative — counters
//! add, gauges take the maximum (they record high-water marks), histogram
//! buckets add — so parallel runs aggregate deterministically.
//!
//! The determinism contract covers **counters only**: they count events of
//! the seeded computation and must be byte-identical across shard and
//! thread counts. Gauges and histograms may carry scheduling-dependent
//! perf data (queue depths, task latencies) and are serialized under the
//! manifest's non-deterministic `"perf"` section.

use std::collections::BTreeMap;

use crate::json;

/// Number of exponential histogram buckets. Bucket `i` holds values whose
/// bit length is `i` (`0` lands in bucket 0, `1` in bucket 1, `2..=3` in
/// bucket 2, …), so bucket 23 starts at ~4.2M — plenty for microsecond
/// latencies and byte counts alike; larger values clamp into the last
/// bucket.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// A fixed-bucket exponential histogram (power-of-two bucket edges).
/// Merging adds bucket-wise, so shard histograms pool exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        let bits = (u64::BITS - value.leading_zeros()) as usize;
        let bucket = bits.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observed value, when any were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper edge of the bucket containing quantile `q` (0.0–1.0): a
    /// bucket-resolution approximation, good enough for summary lines.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i holds values of bit length i: its upper edge is
                // 2^i - 1 (bucket 0 holds only zero). The final bucket is
                // open-ended; its only honest bound is the observed max.
                return Some(match i {
                    0 => 0,
                    _ if i == HISTOGRAM_BUCKETS - 1 => self.max,
                    _ => (1u64 << i) - 1,
                });
            }
        }
        Some(self.max)
    }

    /// Iterates every bucket as `(inclusive upper-edge label, count)` in
    /// edge order, empty buckets included — the raw material for
    /// cumulative Prometheus exposition ([`crate::export`]).
    pub fn buckets(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| (BUCKET_LABELS[i], n))
    }

    /// Adds `other` bucket-wise (associative, commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Serializes as a JSON object (count/sum/max plus non-empty buckets).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut w = json::ObjectWriter::begin(&mut out);
        w.field_u64("count", self.count);
        w.field_u64("sum", self.sum);
        w.field_u64("max", self.max);
        let buckets = json::object_of_u64(
            self.buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (BUCKET_LABELS[i], n)),
        );
        w.field_raw("buckets", &buckets);
        w.end();
        out
    }
}

/// Bucket labels: the inclusive upper edge of each bucket, as a string
/// (static so JSON emission allocates nothing per bucket).
const BUCKET_LABELS: [&str; HISTOGRAM_BUCKETS] = [
    "0", "1", "3", "7", "15", "31", "63", "127", "255", "511", "1023", "2047", "4095", "8191",
    "16383", "32767", "65535", "131071", "262143", "524287", "1048575", "2097151", "4194303",
    "inf",
];

/// A mergeable metrics registry snapshot: named counters, gauges, and
/// histograms. See the module docs for the determinism split.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Formats a metric key with labels: `key("sim.hits", &[("edge", 3)])` →
/// `"sim.hits{edge=3}"`. Labels render in the given order; pass them
/// pre-sorted when building keys from multiple call sites.
pub fn key(name: &str, labels: &[(&str, u64)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + labels.len() * 8);
    out.push_str(name);
    out.push('{');
    for (i, (label, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(label);
        out.push('=');
        out.push_str(&value.to_string());
    }
    out.push('}');
    out
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `by` to counter `name`. Counters are part of the determinism
    /// contract: increment them only from seed-driven events.
    pub fn inc(&mut self, name: &str, by: u64) {
        if by > 0 {
            *self.counters.entry(name.to_string()).or_default() += by;
        }
    }

    /// Raises gauge `name` to `value` if larger (high-water-mark
    /// semantics; merge takes the max). Gauges are perf data, excluded
    /// from the determinism contract.
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        let slot = self.gauges.entry(name.to_string()).or_default();
        *slot = (*slot).max(value);
    }

    /// Records `value` into histogram `name`. Histograms are perf data,
    /// excluded from the determinism contract.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Merges an already-built histogram into the one registered under
    /// `name` (bucket counts pool exactly).
    pub fn merge_histogram(&mut self, name: &str, hist: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, when set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The histogram registered under `name`, when present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Sum of all counters whose key starts with `prefix` — how per-edge
    /// label fan-outs roll up (`sim.hits{edge=0}` + `sim.hits{edge=1}`…).
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Adds `other` into `self`: counters add, gauges max, histogram
    /// buckets add. Associative and commutative (the `metrics_properties`
    /// suite holds it to that), so shard snapshots merge in any order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_default();
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// The deterministic counter section as canonical JSON: keys in
    /// BTreeMap order, integers only. Byte-identical across same-seed runs
    /// regardless of shard/thread count — the `obs_invariance` suite and
    /// the manifest's `"counters"` section both rest on this.
    pub fn counters_json(&self) -> String {
        json::object_of_u64(self.counters())
    }

    /// The non-deterministic perf section (gauges + histograms) as JSON.
    pub fn perf_json(&self) -> String {
        let mut out = String::new();
        let mut w = json::ObjectWriter::begin(&mut out);
        let gauges = json::object_of_u64(self.gauges.iter().map(|(k, &v)| (k.as_str(), v)));
        w.field_raw("gauges", &gauges);
        let mut hists = String::new();
        let mut hw = json::ObjectWriter::begin(&mut hists);
        for (name, hist) in &self.histograms {
            hw.field_raw(name, &hist.to_json());
        }
        hw.end();
        w.field_raw("histograms", &hists);
        w.end();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_query() {
        let mut m = MetricsSnapshot::new();
        m.inc("a", 2);
        m.inc("a", 3);
        m.inc("b", 0); // no-op: zero increments create no key
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 0);
        assert_eq!(m.counters_json(), "{\"a\":5}");
    }

    #[test]
    fn gauges_keep_the_high_water_mark() {
        let mut m = MetricsSnapshot::new();
        m.gauge_max("depth", 4);
        m.gauge_max("depth", 2);
        assert_eq!(m.gauge("depth"), Some(4));
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = MetricsSnapshot::new();
        a.inc("x", 1);
        a.gauge_max("g", 5);
        a.observe("h", 100);
        let mut b = MetricsSnapshot::new();
        b.inc("x", 2);
        b.inc("y", 7);
        b.gauge_max("g", 3);
        b.observe("h", 1000);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        assert_eq!(a.gauge("g"), Some(5));
        let h = a.histogram("h").expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1100);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1_000_000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
        // p50 of 7 values (rank 4) lands in the bucket of value 3.
        assert_eq!(h.quantile_upper_bound(0.5), Some(3));
        assert_eq!(h.quantile_upper_bound(1.0), Some(u64::MAX));
        assert_eq!(Histogram::default().quantile_upper_bound(0.5), None);
    }

    #[test]
    fn keys_render_labels_in_order() {
        assert_eq!(key("sim.hits", &[]), "sim.hits");
        assert_eq!(
            key("sim.hits", &[("edge", 3), ("tier", 1)]),
            "sim.hits{edge=3,tier=1}"
        );
    }

    #[test]
    fn prefix_sum_rolls_up_labeled_counters() {
        let mut m = MetricsSnapshot::new();
        m.inc(&key("sim.hits", &[("edge", 0)]), 2);
        m.inc(&key("sim.hits", &[("edge", 1)]), 3);
        m.inc("sim.misses{edge=0}", 9);
        assert_eq!(m.counter_prefix_sum("sim.hits"), 5);
    }
}
