//! Lightweight span tracing with a ring-buffer recorder.
//!
//! A span is one timed region of the pipeline: `span!("simulate.edge",
//! edge = 3)` starts a wall-clock stopwatch and records `(name, start,
//! duration)` into a process-global ring buffer when the guard drops.
//! Spans carry **wall-clock time and nothing else** — they are perf data,
//! aggregated into the `"perf"` section of a run manifest and excluded
//! from the determinism contract (see the crate docs).
//!
//! The recorder is a fixed-capacity ring: recording is O(1), never
//! allocates past the cap, and overflow evicts the oldest span while
//! counting how many were dropped, so a pathologically chatty phase can't
//! balloon memory. Aggregation ([`phase_timings`]) folds the buffer into
//! per-name totals for the manifest.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::clock::{monotonic_us, Stopwatch};

/// Ring capacity. Per-shard pipelines emit a handful of spans per stage;
/// 4096 holds hundreds of shards' worth before eviction starts.
pub const RING_CAPACITY: usize = 4096;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, plus rendered labels when the [`span!`] call had any
    /// (`"simulate.edge{edge=3}"`).
    pub name: String,
    /// Start, µs since the process clock epoch.
    pub start_us: u64,
    /// Wall-clock duration in µs.
    pub duration_us: u64,
}

#[derive(Default)]
struct Ring {
    spans: Vec<SpanRecord>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
}

static RING: Mutex<Option<Ring>> = Mutex::new(None);

fn with_ring<R>(f: impl FnOnce(&mut Ring) -> R) -> R {
    let mut guard = RING
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    f(guard.get_or_insert_with(Ring::default))
}

/// Records a completed span. Called by [`SpanGuard::drop`]; callers that
/// measure time themselves (e.g. around an FFI boundary) may call it
/// directly.
pub fn record(name: String, start_us: u64, duration_us: u64) {
    with_ring(|ring| {
        let record = SpanRecord {
            name,
            start_us,
            duration_us,
        };
        if ring.spans.len() < RING_CAPACITY {
            ring.spans.push(record);
        } else {
            ring.spans[ring.head] = record;
            ring.head = (ring.head + 1) % RING_CAPACITY;
            ring.dropped += 1;
        }
    });
}

/// Drains and returns every recorded span in record order, plus the count
/// of spans the ring evicted. Resets the recorder.
pub fn drain() -> (Vec<SpanRecord>, u64) {
    with_ring(|ring| {
        let mut spans = std::mem::take(&mut ring.spans);
        spans.rotate_left(ring.head);
        let dropped = ring.dropped;
        ring.head = 0;
        ring.dropped = 0;
        (spans, dropped)
    })
}

/// Discards all recorded spans (start-of-command hygiene, so one CLI run's
/// manifest never carries a previous run's timings in tests).
pub fn reset() {
    let _ = drain();
}

/// Aggregated wall time for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans with this name.
    pub count: u64,
    /// Summed wall time, µs.
    pub total_us: u64,
    /// Longest single span, µs.
    pub max_us: u64,
}

/// Folds a drained span list into per-name wall-time attribution, in name
/// order. Phase timings are wall-clock perf data — deterministic keys,
/// non-deterministic values.
pub fn phase_timings(spans: &[SpanRecord]) -> BTreeMap<String, PhaseStat> {
    let mut phases: BTreeMap<String, PhaseStat> = BTreeMap::new();
    for span in spans {
        let stat = phases.entry(span.name.clone()).or_default();
        stat.count += 1;
        stat.total_us += span.duration_us;
        stat.max_us = stat.max_us.max(span.duration_us);
    }
    phases
}

/// An in-flight span: records itself into the global ring when dropped.
/// Construct via [`span!`] or [`SpanGuard::enter`].
#[derive(Debug)]
pub struct SpanGuard {
    name: String,
    start_us: u64,
    stopwatch: Stopwatch,
}

impl SpanGuard {
    /// Starts a span with an already-rendered name.
    pub fn enter(name: String) -> SpanGuard {
        SpanGuard {
            name,
            start_us: monotonic_us(),
            stopwatch: Stopwatch::start(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        record(
            std::mem::take(&mut self.name),
            self.start_us,
            self.stopwatch.elapsed_us(),
        );
    }
}

/// Opens a span that records wall time into the global ring buffer when
/// the returned guard drops:
///
/// ```
/// let _span = jcdn_obs::span!("workload.generate");
/// // ... timed work ...
/// drop(_span);
/// let (spans, _) = jcdn_obs::span::drain();
/// assert_eq!(spans.last().unwrap().name, "workload.generate");
/// ```
///
/// Labels render into the name: `span!("simulate.edge", edge = 3)` records
/// as `simulate.edge{edge=3}`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter(($name).to_string())
    };
    ($name:expr, $($label:ident = $value:expr),+ $(,)?) => {
        $crate::span::SpanGuard::enter($crate::metrics::key(
            $name,
            &[$((stringify!($label), ($value) as u64)),+],
        ))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The ring is process-global and `cargo test` runs tests on threads;
    // every assertion here filters to names unique to its own test.
    #[test]
    fn spans_record_on_drop_with_labels() {
        {
            let _a = crate::span!("test.span.outer");
            let _b = crate::span!("test.span.inner", edge = 3, shard = 1);
        }
        let (spans, _) = drain();
        let names: Vec<&str> = spans
            .iter()
            .map(|s| s.name.as_str())
            .filter(|n| n.starts_with("test.span."))
            .collect();
        assert!(names.contains(&"test.span.inner{edge=3,shard=1}"));
        assert!(names.contains(&"test.span.outer"));
    }

    #[test]
    fn phase_timings_aggregate_by_name() {
        let spans = vec![
            SpanRecord {
                name: "p".into(),
                start_us: 0,
                duration_us: 10,
            },
            SpanRecord {
                name: "p".into(),
                start_us: 5,
                duration_us: 30,
            },
            SpanRecord {
                name: "q".into(),
                start_us: 9,
                duration_us: 1,
            },
        ];
        let phases = phase_timings(&spans);
        assert_eq!(phases["p"].count, 2);
        assert_eq!(phases["p"].total_us, 40);
        assert_eq!(phases["p"].max_us, 30);
        assert_eq!(phases["q"].count, 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = Ring::default();
        for i in 0..(RING_CAPACITY + 10) {
            let record = SpanRecord {
                name: format!("s{i}"),
                start_us: i as u64,
                duration_us: 1,
            };
            if ring.spans.len() < RING_CAPACITY {
                ring.spans.push(record);
            } else {
                ring.spans[ring.head] = record;
                ring.head = (ring.head + 1) % RING_CAPACITY;
                ring.dropped += 1;
            }
        }
        assert_eq!(ring.spans.len(), RING_CAPACITY);
        assert_eq!(ring.dropped, 10);
        // Oldest surviving span is s10.
        assert_eq!(ring.spans[ring.head].name, "s10");
    }
}
