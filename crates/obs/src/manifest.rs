//! Run manifests: the structured artifact every CLI command emits.
//!
//! A [`RunManifest`] is one run's observability record, split along the
//! crate's determinism boundary:
//!
//! * the **`"counters"` section** serializes the deterministic
//!   [`MetricsSnapshot`] counters — byte-identical across same-seed runs
//!   and across shard/thread counts (the acceptance test diffs it);
//! * the **`"perf"` section** carries everything wall-clock: total run
//!   time, per-phase span attribution, worker-pool reports, perf gauges
//!   and histograms, and peak RSS from `/proc/self/status`.
//!
//! The CLI writes the JSON with `--obs-out <path>` and prints the human
//! summary on stderr at `--obs summary|full` ([`ObsLevel`]).

use std::collections::BTreeMap;

use crate::clock::Stopwatch;
use crate::json;
use crate::metrics::MetricsSnapshot;
use crate::pool::PoolReport;
use crate::span::{self, PhaseStat};

/// Manifest schema version, bumped when the JSON layout changes shape.
pub const MANIFEST_VERSION: u32 = 1;

/// How much observability output the user asked for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsLevel {
    /// No stderr summary, no pool logging (the default).
    #[default]
    Off,
    /// Counter totals and phase timings on stderr, pool summary lines on.
    Summary,
    /// Everything `Summary` prints plus every counter and pool report.
    Full,
}

impl std::str::FromStr for ObsLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<ObsLevel, String> {
        match s {
            "off" => Ok(ObsLevel::Off),
            "summary" => Ok(ObsLevel::Summary),
            "full" => Ok(ObsLevel::Full),
            other => Err(format!("--obs: expected off|summary|full, got {other:?}")),
        }
    }
}

/// FNV-1a 64-bit hash — the manifest's digest primitive (fault plans,
/// configs). Deterministic, dependency-free, not cryptographic.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Peak resident set size in KiB, from `/proc/self/status` (`VmHWM`).
/// `None` off Linux (the read is compiled out rather than attempted and
/// failed) or when the field is missing. Non-deterministic — perf
/// section only; a `None` here sets the `obs.rss_unavailable` perf gauge
/// at [`RunManifest::finish`] so manifests stay honest instead of
/// carrying a silent zero.
pub fn peak_rss_kb() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                return rest.trim().trim_end_matches("kB").trim().parse().ok();
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// One run's observability record. Build with [`RunManifest::start`],
/// accumulate counters into [`RunManifest::metrics`], then
/// [`RunManifest::finish`] to capture spans, pool reports, and RSS.
#[derive(Clone, Debug)]
pub struct RunManifest {
    /// The subcommand that ran (`"generate"`, `"characterize"`, …).
    pub command: String,
    /// Run parameters worth reproducing the run from (seed, preset,
    /// shards, threads, paths), in insertion-independent key order.
    pub params: BTreeMap<String, String>,
    /// Trace codec version in play.
    pub codec_version: u16,
    /// FNV-1a digest of the fault plan (hex), when the run had one.
    pub fault_digest: Option<String>,
    /// The deterministic counters plus any perf gauges/histograms filed
    /// by instrumented code.
    pub metrics: MetricsSnapshot,
    /// Per-phase wall-time attribution, captured at [`finish`][Self::finish].
    pub phases: BTreeMap<String, PhaseStat>,
    /// Worker-pool reports, captured at [`finish`][Self::finish].
    pub pools: Vec<PoolReport>,
    /// The raw spans drained from the ring at [`finish`][Self::finish],
    /// kept so exports (chrome trace) can run after the ring is reset.
    pub spans: Vec<span::SpanRecord>,
    /// Spans evicted from the ring before capture.
    pub spans_dropped: u64,
    /// Pool reports dropped by the sink before capture.
    pub pools_dropped: u64,
    /// Peak RSS (KiB), when readable.
    pub peak_rss_kb: Option<u64>,
    /// End-to-end wall time of the command, µs.
    pub wall_us: u64,
    stopwatch: Stopwatch,
}

impl RunManifest {
    /// Starts a manifest for `command`: resets the span ring and pool sink
    /// (so this run's perf data is its own) and starts the run stopwatch.
    pub fn start(command: &str) -> RunManifest {
        span::reset();
        crate::pool::reset();
        RunManifest {
            command: command.to_string(),
            params: BTreeMap::new(),
            codec_version: 0,
            fault_digest: None,
            metrics: MetricsSnapshot::new(),
            phases: BTreeMap::new(),
            pools: Vec::new(),
            spans: Vec::new(),
            spans_dropped: 0,
            pools_dropped: 0,
            peak_rss_kb: None,
            wall_us: 0,
            stopwatch: Stopwatch::start(),
        }
    }

    /// Records one reproduction parameter (seed, preset, shard count, …).
    pub fn param(&mut self, key: &str, value: impl ToString) {
        self.params.insert(key.to_string(), value.to_string());
    }

    /// Captures the perf side: stops the run clock, drains the span ring
    /// into phase timings (keeping the raw spans for chrome-trace
    /// export), drains the pool sink, folds pool perf into the metrics
    /// gauges, and reads peak RSS. Ring eviction and an unreadable RSS
    /// both surface as perf gauges (`obs.spans_dropped`,
    /// `obs.rss_unavailable`) so the manifest records its own blind
    /// spots.
    pub fn finish(&mut self) {
        self.wall_us = self.stopwatch.elapsed_us();
        let (spans, spans_dropped) = span::drain();
        self.phases = span::phase_timings(&spans);
        self.spans = spans;
        self.spans_dropped = spans_dropped;
        if spans_dropped > 0 {
            self.metrics.gauge_max("obs.spans_dropped", spans_dropped);
        }
        let (pools, pools_dropped) = crate::pool::drain();
        for pool in &pools {
            pool.record_into(&mut self.metrics);
        }
        self.pools = pools;
        self.pools_dropped = pools_dropped;
        self.peak_rss_kb = peak_rss_kb();
        if self.peak_rss_kb.is_none() {
            self.metrics.gauge_max("obs.rss_unavailable", 1);
        }
    }

    /// Renders the manifest metrics in the Prometheus text exposition
    /// format (`--obs-prom`): see [`crate::export::prometheus_text`].
    pub fn prometheus_text(&self) -> String {
        crate::export::prometheus_text(&self.metrics)
    }

    /// Renders the captured spans as a chrome-trace JSON object
    /// (`--obs-trace`), with the ring's eviction count in the footer:
    /// see [`crate::export::chrome_trace`].
    pub fn chrome_trace_json(&self) -> String {
        crate::export::chrome_trace(&self.spans, self.spans_dropped)
    }

    /// The deterministic counter section, exactly as embedded in
    /// [`to_json`][Self::to_json]. Byte-identical across same-seed runs
    /// for any shard/thread count.
    pub fn counters_json(&self) -> String {
        self.metrics.counters_json()
    }

    /// Serializes the whole manifest as JSON: header fields, the
    /// deterministic `"counters"` section, then the non-deterministic
    /// `"perf"` section.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut w = json::ObjectWriter::begin(&mut out);
        w.field_u64("manifest_version", u64::from(MANIFEST_VERSION));
        w.field_str("command", &self.command);
        let mut params = String::new();
        let mut pw = json::ObjectWriter::begin(&mut params);
        for (key, value) in &self.params {
            pw.field_str(key, value);
        }
        pw.end();
        w.field_raw("params", &params);
        w.field_u64("codec_version", u64::from(self.codec_version));
        match &self.fault_digest {
            Some(digest) => w.field_str("fault_digest", digest),
            None => w.field_raw("fault_digest", "null"),
        }
        w.field_raw("counters", &self.counters_json());

        let mut perf = String::new();
        let mut fw = json::ObjectWriter::begin(&mut perf);
        fw.field_u64("wall_us", self.wall_us);
        match self.peak_rss_kb {
            Some(kb) => fw.field_u64("peak_rss_kb", kb),
            None => fw.field_raw("peak_rss_kb", "null"),
        }
        let mut phases = String::new();
        let mut phw = json::ObjectWriter::begin(&mut phases);
        for (name, stat) in &self.phases {
            let mut one = String::new();
            let mut ow = json::ObjectWriter::begin(&mut one);
            ow.field_u64("count", stat.count);
            ow.field_u64("total_us", stat.total_us);
            ow.field_u64("max_us", stat.max_us);
            ow.end();
            phw.field_raw(name, &one);
        }
        phw.end();
        fw.field_raw("phases", &phases);
        let pools = format!(
            "[{}]",
            self.pools
                .iter()
                .map(PoolReport::to_json)
                .collect::<Vec<_>>()
                .join(",")
        );
        fw.field_raw("pools", &pools);
        fw.field_u64("spans_dropped", self.spans_dropped);
        fw.field_u64("pools_dropped", self.pools_dropped);
        fw.field_raw("metrics", &self.metrics.perf_json());
        fw.end();
        w.field_raw("perf", &perf);
        w.end();
        out
    }

    /// The human summary printed to stderr at `--obs summary|full`.
    /// `full` appends every counter and pool report.
    pub fn summary_text(&self, level: ObsLevel) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "obs[{}]: {} counters, wall {}ms",
            self.command,
            self.metrics.counters().count(),
            self.wall_us / 1000
        ));
        if let Some(kb) = self.peak_rss_kb {
            out.push_str(&format!(", peak RSS {}MiB", kb / 1024));
        }
        out.push('\n');
        for (name, stat) in &self.phases {
            out.push_str(&format!(
                "  phase {name}: {}ms over {} span(s)\n",
                stat.total_us / 1000,
                stat.count
            ));
        }
        if level == ObsLevel::Full {
            for (name, value) in self.metrics.counters() {
                out.push_str(&format!("  counter {name} = {value}\n"));
            }
            for pool in &self.pools {
                out.push_str(&format!("  {}\n", pool.summary_line()));
            }
        }
        if self.spans_dropped > 0 || self.pools_dropped > 0 {
            out.push_str(&format!(
                "  (ring overflow: {} span(s), {} pool report(s) dropped)\n",
                self.spans_dropped, self.pools_dropped
            ));
        }
        out.truncate(out.trim_end().len());
        out
    }

    /// Writes the JSON manifest to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn obs_level_parses() {
        assert_eq!("off".parse::<ObsLevel>().unwrap(), ObsLevel::Off);
        assert_eq!("summary".parse::<ObsLevel>().unwrap(), ObsLevel::Summary);
        assert_eq!("full".parse::<ObsLevel>().unwrap(), ObsLevel::Full);
        assert!("verbose".parse::<ObsLevel>().is_err());
    }

    #[test]
    fn manifest_json_sections_split_determinism() {
        let mut m = RunManifest::start("generate");
        m.param("seed", 42u64);
        m.codec_version = 3;
        m.metrics.inc("sim.hits{edge=0}", 7);
        m.metrics.gauge_max("pool.x.depth", 3);
        m.finish();
        let json = m.to_json();
        assert!(
            json.contains("\"counters\":{\"sim.hits{edge=0}\":7}"),
            "{json}"
        );
        // The gauge lives under perf, not counters.
        assert!(!m.counters_json().contains("pool.x.depth"));
        assert!(json.contains("\"perf\":{"), "{json}");
        assert!(json.contains("\"params\":{\"seed\":\"42\"}"), "{json}");
    }

    #[test]
    fn counter_section_ignores_wall_time() {
        let mut a = RunManifest::start("x");
        a.metrics.inc("n", 1);
        a.finish();
        let mut b = RunManifest::start("x");
        b.metrics.inc("n", 1);
        b.finish();
        // Wall times differ; the counter sections are byte-identical.
        assert_eq!(a.counters_json(), b.counters_json());
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_kb().unwrap_or(0) > 0);
        }
    }
}
