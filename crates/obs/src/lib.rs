//! # jcdn-obs — deterministic metrics, span tracing, and run manifests
//!
//! The workspace's determinism contract says: same seed, same output,
//! bit-for-bit, for any shard or thread count. Observability naturally
//! pulls against that — wall-clock timings differ between runs by
//! definition. This crate resolves the tension by **segregating the two
//! kinds of signal** instead of mixing them:
//!
//! * **Counters** ([`MetricsSnapshot`]) are event counts driven purely by
//!   the (seeded) computation: cache hits per edge, retries, decoded and
//!   dropped codec records. They are part of the determinism contract —
//!   `merge` is associative and commutative, serialization is
//!   BTreeMap-ordered, and the `obs_invariance` suite holds the counter
//!   section of a [`RunManifest`] byte-identical across shard counts.
//! * **Perf data** (span timings, pool utilization, queue high-water
//!   marks, peak RSS) is explicitly non-deterministic. It lives in
//!   separate gauge/histogram/span channels, is serialized under a
//!   distinct `"perf"` manifest section, and is never compared across
//!   runs by tests.
//!
//! The crate is also the **single owner of the wall clock**: `Instant::now`
//! appears in this workspace only inside [`clock`], which carries the one
//! D1 exemption in `allowlist.toml`. Everything else measures time through
//! [`clock::Stopwatch`] or the [`span!`] macro, so `jcdn-lint` can continue
//! to ban ambient time everywhere it matters.
//!
//! Modules:
//!
//! * [`clock`] — the wall-clock boundary ([`clock::Stopwatch`]).
//! * [`metrics`] — mergeable counters/gauges/histograms with fixed
//!   buckets, mirroring the `SimStats`/`PartialReport` merge idiom.
//! * [`span`] — lightweight span tracing into a global ring buffer with
//!   per-phase wall-time attribution.
//! * [`pool`] — worker-pool reports (queue depth, starvation, task
//!   latency) recorded by `jcdn-exec`.
//! * [`manifest`] — the [`RunManifest`] every CLI command emits, with its
//!   deterministic counter section and non-deterministic perf section.
//! * [`timeseries`] — sim-clock-driven windowed counters (tumbling and
//!   sliding windows with deterministic bucket retirement), the
//!   time-series extension of the same mergeable-partials discipline.
//! * [`export`] — Prometheus text exposition and chrome-trace dumps of
//!   the span ring.
//!
//! `jcdn-obs` has zero dependencies (it sits below every crate in the hot
//! path), so JSON emission is hand-rolled in [`json`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The wall-clock boundary: the workspace's only `Instant::now`.
pub mod clock;
/// Exporters: Prometheus text exposition and chrome-trace span dumps.
pub mod export;
/// Minimal hand-rolled JSON emission (the crate has zero dependencies).
pub mod json;
/// Run manifests: the per-command observability artifact.
pub mod manifest;
/// Mergeable counters, gauges, and fixed-bucket histograms.
pub mod metrics;
/// Worker-pool reports (queue depth, starvation, task latency).
pub mod pool;
/// Span tracing into a global ring buffer, with phase attribution.
pub mod span;
/// Sim-clock-driven windowed counters (tumbling + sliding windows).
pub mod timeseries;

pub use manifest::{ObsLevel, RunManifest};
pub use metrics::{Histogram, MetricsSnapshot};
pub use pool::PoolReport;
pub use span::SpanGuard;
pub use timeseries::{WindowRow, WindowSpec, WindowedCounters};
