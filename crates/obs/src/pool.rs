//! Worker-pool observability: the reports `jcdn-exec::scatter_gather`
//! files after every fan-out.
//!
//! Before this module existed the pool was silent: a starved worker or a
//! backed-up gather channel looked exactly like healthy parallelism. A
//! [`PoolReport`] captures what actually happened — per-worker task
//! counts (starvation shows as zeros), the gather-channel high-water mark
//! (backpressure shows as a depth near `items`), and a task-latency
//! histogram. All of it is scheduling-dependent perf data, so it flows
//! into the manifest's `"perf"` section, never into counters.
//!
//! Reports land in a process-global sink (bounded, like the span ring)
//! that the CLI drains into the run manifest. Optional summary-line
//! logging is gated on [`set_logging`], which the CLI wires to
//! `--obs summary|full` — the default stays quiet so library users and
//! tests see no stderr chatter.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::json;
use crate::metrics::{Histogram, MetricsSnapshot};

/// Maximum buffered reports; older reports are dropped (counted) past it.
pub const SINK_CAPACITY: usize = 1024;

/// What one `scatter_gather` fan-out did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolReport {
    /// Call-site label (`"workload.generate"`, `"sim.edges"`, …).
    pub label: String,
    /// Items scattered.
    pub items: u64,
    /// Workers actually spawned (1 = sequential path).
    pub workers: u64,
    /// Tasks each worker completed, indexed by worker. A zero entry is a
    /// starved worker: it never won a single job against its siblings.
    pub worker_tasks: Vec<u64>,
    /// High-water mark of results waiting in the gather channel — how far
    /// the workers ran ahead of the gatherer before it caught up.
    pub queue_high_water: u64,
    /// Summed task wall time across workers, µs.
    pub busy_us: u64,
    /// End-to-end wall time of the fan-out, µs.
    pub wall_us: u64,
    /// Panics caught at the pool's unwind boundary (a retried-and-
    /// recovered item counts 1; a quarantined item counts both attempts).
    pub task_panics: u64,
    /// Per-task wall-time histogram (µs).
    pub task_latency_us: Histogram,
}

impl PoolReport {
    /// Fraction of worker wall-time capacity spent on tasks (1.0 = every
    /// worker busy for the whole fan-out).
    pub fn utilization(&self) -> Option<f64> {
        let capacity = self.wall_us.saturating_mul(self.workers.max(1));
        (capacity > 0).then(|| self.busy_us as f64 / capacity as f64)
    }

    /// Workers that completed zero tasks.
    pub fn starved_workers(&self) -> u64 {
        self.worker_tasks.iter().filter(|&&t| t == 0).count() as u64
    }

    /// One-line human summary (the "stop staying silent" line).
    pub fn summary_line(&self) -> String {
        let util = self
            .utilization()
            .map(|u| format!("{:.0}%", u * 100.0))
            .unwrap_or_else(|| "-".to_string());
        let p99 = self
            .task_latency_us
            .quantile_upper_bound(0.99)
            .map(|v| format!("{v}µs"))
            .unwrap_or_else(|| "-".to_string());
        let mut line = format!(
            "pool {}: {} items on {} workers in {}µs (util {util}, task p99 ≤ {p99}, \
             gather high-water {})",
            self.label, self.items, self.workers, self.wall_us, self.queue_high_water
        );
        let starved = self.starved_workers();
        if starved > 0 && self.items >= self.workers {
            line.push_str(&format!(", {starved} starved worker(s)"));
        }
        if self.task_panics > 0 {
            line.push_str(&format!(", {} caught panic(s)", self.task_panics));
        }
        line
    }

    /// Folds this report into a snapshot's perf channels (gauges and
    /// histograms keyed by the pool label).
    pub fn record_into(&self, snapshot: &mut MetricsSnapshot) {
        let prefix = format!("pool.{}", self.label);
        snapshot.gauge_max(&format!("{prefix}.queue_high_water"), self.queue_high_water);
        snapshot.gauge_max(&format!("{prefix}.workers"), self.workers);
        snapshot.gauge_max(&format!("{prefix}.starved_workers"), self.starved_workers());
        snapshot.merge_histogram(&format!("{prefix}.task_us"), &self.task_latency_us);
    }

    /// Serializes as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let mut w = json::ObjectWriter::begin(&mut out);
        w.field_str("label", &self.label);
        w.field_u64("items", self.items);
        w.field_u64("workers", self.workers);
        let tasks = format!(
            "[{}]",
            self.worker_tasks
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        w.field_raw("worker_tasks", &tasks);
        w.field_u64("queue_high_water", self.queue_high_water);
        w.field_u64("starved_workers", self.starved_workers());
        w.field_u64("busy_us", self.busy_us);
        w.field_u64("wall_us", self.wall_us);
        w.field_u64("task_panics", self.task_panics);
        w.field_raw("task_latency_us", &self.task_latency_us.to_json());
        w.end();
        out
    }
}

struct Sink {
    reports: Vec<PoolReport>,
    dropped: u64,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);
static LOGGING: AtomicBool = AtomicBool::new(false);

/// Enables or disables the per-fan-out stderr summary line (wired to
/// `--obs summary|full` by the CLI; off by default).
pub fn set_logging(enabled: bool) {
    LOGGING.store(enabled, Ordering::Relaxed);
}

/// Whether summary-line logging is on.
pub fn logging_enabled() -> bool {
    LOGGING.load(Ordering::Relaxed)
}

/// Files a report into the global sink (and logs its summary line when
/// logging is enabled). Called by `jcdn-exec` after every fan-out.
pub fn record(report: PoolReport) {
    if logging_enabled() {
        eprintln!("{}", report.summary_line());
    }
    let mut guard = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let sink = guard.get_or_insert_with(|| Sink {
        reports: Vec::new(),
        dropped: 0,
    });
    if sink.reports.len() < SINK_CAPACITY {
        sink.reports.push(report);
    } else {
        sink.dropped += 1;
    }
}

/// Drains all filed reports (in filing order) plus the overflow count,
/// resetting the sink.
pub fn drain() -> (Vec<PoolReport>, u64) {
    let mut guard = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match guard.as_mut() {
        None => (Vec::new(), 0),
        Some(sink) => {
            let reports = std::mem::take(&mut sink.reports);
            let dropped = sink.dropped;
            sink.dropped = 0;
            (reports, dropped)
        }
    }
}

/// Discards all filed reports.
pub fn reset() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PoolReport {
        let mut hist = Histogram::default();
        hist.observe(10);
        hist.observe(1000);
        PoolReport {
            label: "test.pool".into(),
            items: 8,
            workers: 4,
            worker_tasks: vec![3, 5, 0, 0],
            queue_high_water: 2,
            busy_us: 800,
            wall_us: 400,
            task_panics: 0,
            task_latency_us: hist,
        }
    }

    #[test]
    fn starvation_and_utilization() {
        let report = sample();
        assert_eq!(report.starved_workers(), 2);
        let util = report.utilization().expect("nonzero wall");
        assert!((util - 0.5).abs() < 1e-9, "util {util}");
        let line = report.summary_line();
        assert!(line.contains("2 starved"), "{line}");
        assert!(line.contains("high-water 2"), "{line}");
    }

    #[test]
    fn json_carries_worker_tasks() {
        let json = sample().to_json();
        assert!(json.contains("\"worker_tasks\":[3,5,0,0]"), "{json}");
        assert!(json.contains("\"label\":\"test.pool\""), "{json}");
    }
}
