//! Property tests for the statistics substrate.

use jcdn_stats::dist::{weighted_index, Exponential, LogNormal, Poisson, Sample, Zipf};
use jcdn_stats::{Ecdf, ExactQuantiles, Histogram, Summary, TimeSeries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn summary_merge_equals_sequential(
        xs in prop::collection::vec(-1e6f64..1e6, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let all: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..split].iter().copied().collect();
        let right: Summary = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), all.count());
        if !xs.is_empty() {
            prop_assert!((left.mean().unwrap() - all.mean().unwrap()).abs() < 1e-6);
            prop_assert_eq!(left.min(), all.min());
            prop_assert_eq!(left.max(), all.max());
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        xs in prop::collection::vec(-1e9f64..1e9, 1..300),
    ) {
        let mut q: ExactQuantiles = xs.iter().copied().collect();
        let lo = q.quantile(0.0).unwrap();
        let hi = q.quantile(1.0).unwrap();
        let mut prev = lo;
        for i in 1..=10 {
            let v = q.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(v >= prev - 1e-9, "quantiles must be non-decreasing");
            prev = v;
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(lo, min);
        prop_assert_eq!(hi, max);
    }

    #[test]
    fn histogram_conserves_observations(
        xs in prop::collection::vec(-100f64..200.0, 0..500),
    ) {
        let mut h = Histogram::new(0.0, 100.0, 13);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
    }

    #[test]
    fn ecdf_eval_is_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let e = Ecdf::from_samples(xs.iter().copied());
        let mut prev = 0.0;
        for i in -10..=10 {
            let p = e.eval(i as f64 * 100.0).unwrap();
            prop_assert!(p >= prev);
            prop_assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn ecdf_inverse_roundtrip(xs in prop::collection::vec(-1e3f64..1e3, 1..100), p in 0.01f64..1.0) {
        let e = Ecdf::from_samples(xs.iter().copied());
        let x = e.inverse(p).unwrap();
        // F(F^-1(p)) >= p by definition of the generalized inverse.
        prop_assert!(e.eval(x).unwrap() >= p - 1e-12);
    }

    #[test]
    fn timeseries_total_counts_in_range_events(
        events in prop::collection::vec(0u64..1000, 0..200),
    ) {
        let mut ts = TimeSeries::new(100, 10, 50); // covers [100, 600)
        let in_range = events.iter().filter(|&&t| (100..600).contains(&t)).count();
        for &t in &events {
            ts.record(t);
        }
        prop_assert_eq!(ts.total(), in_range as u64);
    }

    #[test]
    fn zipf_samples_stay_in_support(n in 1usize..500, s in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    #[test]
    fn samplers_produce_finite_positive_values(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ln = LogNormal::new(5.0, 1.5);
        let ex = Exponential::new(0.5);
        let po = Poisson::new(4.0);
        for _ in 0..50 {
            let v = ln.sample(&mut rng);
            prop_assert!(v.is_finite() && v > 0.0);
            let v = ex.sample(&mut rng);
            prop_assert!(v.is_finite() && v >= 0.0);
            let _ = po.sample(&mut rng);
        }
    }

    #[test]
    fn weighted_index_returns_positive_weight(
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        match weighted_index(&mut rng, &weights) {
            Some(i) => prop_assert!(weights[i] > 0.0),
            None => prop_assert!(weights.iter().all(|&w| w <= 0.0)),
        }
    }
}
