//! # jcdn-stats — descriptive statistics and sampling distributions
//!
//! Shared numeric substrate for the jcdn workspace:
//!
//! * [`Summary`] — streaming count/mean/variance/min/max (Welford),
//! * [`ExactQuantiles`] — exact order statistics over collected samples,
//! * [`Histogram`] / [`LogHistogram`] — fixed-bin and log-spaced histograms
//!   with ASCII rendering (used to print Figure 5 of the paper),
//! * [`Ecdf`] — empirical CDFs with evaluation and inverse (Figure 6),
//! * [`P2Quantile`] — O(1)-space streaming quantile estimation (P²) for
//!   trace scales where retaining samples is not an option,
//! * [`TimeSeries`] — fixed-width time buckets (Figure 1's monthly series),
//! * [`dist`] — seedable sampling distributions (Zipf, log-normal,
//!   exponential, Poisson, Pareto) implemented on top of `rand`'s core RNG,
//!   since the workspace deliberately avoids `rand_distr`.
//!
//! Everything here is deterministic given a seeded RNG; nothing reads the
//! wall clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Sampling distributions (Zipf, Pareto, weighted choice) over a seeded RNG.
pub mod dist;
mod ecdf;
mod histogram;
mod p2;
mod quantile;
mod summary;
mod timeseries;

pub use ecdf::Ecdf;
pub use histogram::{Histogram, LogHistogram};
pub use p2::P2Quantile;
pub use quantile::ExactQuantiles;
pub use summary::Summary;
pub use timeseries::TimeSeries;
