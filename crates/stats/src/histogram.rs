//! Fixed-bin and log-spaced histograms with ASCII rendering.

use std::fmt::Write as _;

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics when `bins == 0` or `lo >= hi` or either bound is non-finite —
    /// these are programming errors, not data errors.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid bounds"
        );
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against floating point landing exactly on the upper edge.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Adds every count of `other` into `self`. Merging is associative and
    /// commutative, so per-shard histograms combine into exactly the
    /// histogram a single pass would have produced.
    ///
    /// # Panics
    /// Panics when the two histograms have different bounds or bin counts —
    /// merging incompatible binnings is a programming error.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different binnings"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Per-bin counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// The half-open range `[start, end)` covered by bin `idx`.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let start = self.lo + width * idx as f64;
        (start, start + width)
    }

    /// Observations below `lo` (plus non-finite ones).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Index of the fullest bin, or `None` when all in-range bins are empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let (idx, &count) = self.bins.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        (count > 0).then_some(idx)
    }

    /// Renders an ASCII bar chart, one row per bin, bars scaled to `width`
    /// characters. Rows outside `[first_nonzero ..= last_nonzero]` are
    /// omitted to keep sparse histograms readable.
    pub fn render(&self, width: usize) -> String {
        render_rows(
            (0..self.bins.len()).map(|i| {
                let (start, _) = self.bin_range(i);
                (format!("{start:>10.1}"), self.bins[i])
            }),
            width,
        )
    }
}

/// A histogram whose bin edges grow geometrically: bin `i` covers
/// `[base·ratio^i, base·ratio^(i+1))`.
///
/// Response sizes and detected periods both span several orders of
/// magnitude; log-spaced bins keep every decade visible (Figure 5 uses a
/// log-x histogram of periods).
#[derive(Clone, Debug)]
pub struct LogHistogram {
    base: f64,
    ratio: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// Creates a log histogram with `bins` bins starting at `base`, each
    /// `ratio` times wider than the previous.
    ///
    /// # Panics
    /// Panics when `base <= 0`, `ratio <= 1`, or `bins == 0`.
    pub fn new(base: f64, ratio: f64, bins: usize) -> Self {
        assert!(base > 0.0 && base.is_finite(), "base must be positive");
        assert!(ratio > 1.0 && ratio.is_finite(), "ratio must exceed 1");
        assert!(bins > 0, "need at least one bin");
        LogHistogram {
            base,
            ratio,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x < self.base {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.base).ln() / self.ratio.ln()).floor() as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Adds every count of `other` into `self`; see [`Histogram::merge`].
    ///
    /// # Panics
    /// Panics when `base`, `ratio`, or bin count differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.base == other.base
                && self.ratio == other.ratio
                && self.bins.len() == other.bins.len(),
            "cannot merge log histograms with different binnings"
        );
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// The half-open range covered by bin `idx`.
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        let start = self.base * self.ratio.powi(idx as i32);
        (start, start * self.ratio)
    }

    /// Observations below `base` (plus non-finite ones).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Renders an ASCII bar chart like [`Histogram::render`].
    pub fn render(&self, width: usize) -> String {
        render_rows(
            (0..self.bins.len()).map(|i| {
                let (start, _) = self.bin_range(i);
                (format!("{start:>10.1}"), self.bins[i])
            }),
            width,
        )
    }
}

fn render_rows(rows: impl Iterator<Item = (String, u64)>, width: usize) -> String {
    let rows: Vec<(String, u64)> = rows.collect();
    let first = rows.iter().position(|&(_, c)| c > 0);
    let last = rows.iter().rposition(|&(_, c)| c > 0);
    let (Some(first), Some(last)) = (first, last) else {
        return String::from("(empty histogram)\n");
    };
    let max = rows[first..=last]
        .iter()
        .map(|&(_, c)| c)
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::new();
    for (label, count) in &rows[first..=last] {
        let bar_len = ((count * width as u64) as f64 / max as f64).round() as usize;
        let _ = writeln!(out, "{label} | {:<width$} {count}", "#".repeat(bar_len));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.999);
        h.record(5.0);
        h.record(9.999);
        h.record(10.0); // overflow (hi is exclusive)
        h.record(-0.1); // underflow
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn bin_range_is_consistent_with_record() {
        let mut h = Histogram::new(2.0, 4.0, 4);
        let (s, e) = h.bin_range(1);
        assert!((s - 2.5).abs() < 1e-12 && (e - 3.0).abs() < 1e-12);
        h.record(2.5);
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn nan_goes_to_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    fn mode_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        assert!(h.mode_bin().is_none());
        h.record(1.5);
        h.record(1.6);
        h.record(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn log_binning_covers_decades() {
        let mut h = LogHistogram::new(1.0, 2.0, 10); // 1,2,4,...,512
        h.record(1.0);
        h.record(1.99);
        h.record(2.0);
        h.record(500.0);
        h.record(0.5); // underflow
        h.record(2000.0); // overflow
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[8], 1); // 256..512
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn log_bin_range() {
        let h = LogHistogram::new(1.0, 10.0, 3);
        let (s, e) = h.bin_range(2);
        assert!((s - 100.0).abs() < 1e-9 && (e - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn render_trims_empty_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(4.5);
        h.record(4.6);
        h.record(5.5);
        let rendered = h.render(20);
        assert_eq!(rendered.lines().count(), 2);
        assert!(rendered.contains('#'));
    }

    #[test]
    fn render_empty() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.render(10).contains("empty"));
    }

    #[test]
    fn merge_matches_single_pass() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.3 - 1.0).collect();
        let mut whole = Histogram::new(0.0, 10.0, 10);
        let mut left = Histogram::new(0.0, 10.0, 10);
        let mut right = Histogram::new(0.0, 10.0, 10);
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i % 2 == 0 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.counts(), whole.counts());
        assert_eq!(left.underflow(), whole.underflow());
        assert_eq!(left.overflow(), whole.overflow());
        assert_eq!(left.total(), whole.total());
    }

    #[test]
    fn log_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..60).map(|i| 0.5 * 1.4f64.powi(i % 20)).collect();
        let mut whole = LogHistogram::new(1.0, 2.0, 8);
        let mut left = LogHistogram::new(1.0, 2.0, 8);
        let mut right = LogHistogram::new(1.0, 2.0, 8);
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i % 3 == 0 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.counts(), whole.counts());
        assert_eq!(left.total(), whole.total());
    }

    #[test]
    #[should_panic(expected = "different binnings")]
    fn merge_rejects_incompatible_binnings() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let b = Histogram::new(0.0, 10.0, 5);
        a.merge(&b);
    }
}
