//! Empirical cumulative distribution functions.

use std::fmt::Write as _;

/// An empirical CDF over collected samples.
///
/// Figure 6 of the paper is a CDF of "percent of periodic clients across
/// objects"; [`Ecdf`] provides evaluation (`F(x)`), the inverse
/// (`F⁻¹(p)`), and an ASCII rendering used by the reproduction harness.
#[derive(Clone, Debug, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples; non-finite values are dropped.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        Ecdf { sorted }
    }

    /// Absorbs all samples of `other`, keeping the sorted invariant via a
    /// linear two-way merge. Associative and commutative, so per-shard
    /// ECDFs combine into exactly the single-pass distribution.
    pub fn merge(&mut self, other: &Ecdf) {
        if other.sorted.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.sorted.len() + other.sorted.len());
        let (mut a, mut b) = (
            self.sorted.iter().peekable(),
            other.sorted.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    if x <= y {
                        merged.push(x);
                        a.next();
                    } else {
                        merged.push(y);
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    merged.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.sorted = merged;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — the fraction of samples ≤ `x`. Returns `None` when empty.
    pub fn eval(&self, x: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        Some(count as f64 / self.sorted.len() as f64)
    }

    /// `F⁻¹(p)` — the smallest sample `x` with `F(x) ≥ p`, for `p ∈ (0, 1]`.
    /// Returns `None` when empty or `p` out of range.
    pub fn inverse(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&p) || p == 0.0 {
            return None;
        }
        let rank = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// The fraction of samples strictly greater than `x` (complementary
    /// CDF). Returns `None` when empty.
    pub fn survival(&self, x: f64) -> Option<f64> {
        self.eval(x).map(|p| 1.0 - p)
    }

    /// Renders the CDF as `rows` ASCII lines, sampling `F` at evenly spaced
    /// sample values between min and max.
    pub fn render(&self, rows: usize, width: usize) -> String {
        let (Some(&lo), Some(&hi)) = (self.sorted.first(), self.sorted.last()) else {
            return String::from("(empty cdf)\n");
        };
        let mut out = String::new();
        for i in 0..rows {
            let x = if rows == 1 {
                hi
            } else {
                lo + (hi - lo) * i as f64 / (rows - 1) as f64
            };
            let p = self.eval(x).unwrap_or(0.0);
            let bar = (p * width as f64).round() as usize;
            let _ = writeln!(out, "{x:>10.2} | {:<width$} {:.3}", "█".repeat(bar), p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let e = Ecdf::from_samples([]);
        assert!(e.eval(0.0).is_none());
        assert!(e.inverse(0.5).is_none());
        assert!(e.is_empty());
    }

    #[test]
    fn step_function_semantics() {
        let e = Ecdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), Some(0.0));
        assert_eq!(e.eval(1.0), Some(0.25));
        assert_eq!(e.eval(2.5), Some(0.5));
        assert_eq!(e.eval(4.0), Some(1.0));
        assert_eq!(e.eval(100.0), Some(1.0));
    }

    #[test]
    fn inverse_is_left_continuous_quantile() {
        let e = Ecdf::from_samples([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(e.inverse(0.25), Some(10.0));
        assert_eq!(e.inverse(0.26), Some(20.0));
        assert_eq!(e.inverse(1.0), Some(40.0));
        assert!(e.inverse(0.0).is_none());
        assert!(e.inverse(1.5).is_none());
    }

    #[test]
    fn survival_complements_eval() {
        let e = Ecdf::from_samples([1.0, 2.0, 3.0, 4.0, 5.0]);
        // Paper's Figure 6 highlight: share of objects with >50% periodic
        // clients is a survival query.
        assert_eq!(e.survival(3.0), Some(0.4));
    }

    #[test]
    fn duplicates_and_unsorted_input() {
        let e = Ecdf::from_samples([3.0, 1.0, 3.0, 2.0]);
        assert_eq!(e.eval(3.0), Some(1.0));
        assert_eq!(e.eval(2.9), Some(0.5));
    }

    #[test]
    fn render_has_requested_rows() {
        let e = Ecdf::from_samples([0.0, 0.5, 1.0]);
        assert_eq!(e.render(5, 20).lines().count(), 5);
    }

    #[test]
    fn merge_equals_pooled_samples() {
        let xs = [5.0, 1.0, 3.0, 3.0, 9.0, 2.0, 8.0];
        let whole = Ecdf::from_samples(xs);
        let mut left = Ecdf::from_samples(xs[..3].iter().copied());
        let right = Ecdf::from_samples(xs[3..].iter().copied());
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        for x in [0.0, 1.0, 2.5, 3.0, 8.5, 10.0] {
            assert_eq!(left.eval(x), whole.eval(x));
        }
        // Merging an empty ECDF is the identity, both ways.
        let mut e = Ecdf::from_samples([1.0, 2.0]);
        e.merge(&Ecdf::default());
        assert_eq!(e.len(), 2);
        let mut empty = Ecdf::default();
        empty.merge(&e);
        assert_eq!(empty.eval(1.5), Some(0.5));
    }
}
