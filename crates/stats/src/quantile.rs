//! Exact quantiles over collected samples.

/// Collects samples and answers exact quantile queries.
///
/// The paper reports medians and 75th percentiles of response sizes (§4);
/// at the scales this reproduction runs (≤ a few million samples) exact
/// order statistics are affordable and avoid sketch error in the comparison.
///
/// Samples are kept unsorted until the first query; sorting is done lazily
/// and cached.
#[derive(Clone, Debug, Default)]
pub struct ExactQuantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl ExactQuantiles {
    /// Creates an empty collector.
    pub fn new() -> Self {
        ExactQuantiles::default()
    }

    /// Creates a collector with preallocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ExactQuantiles {
            samples: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Adds an observation. Non-finite values are ignored (they would poison
    /// the sort order).
    pub fn record(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    /// Absorbs all samples of `other`. Quantile queries over the merged
    /// collector equal queries over a single collector fed both sample
    /// streams (order statistics are order-insensitive).
    pub fn merge(&mut self, other: &ExactQuantiles) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
    }

    /// Returns the `q`-quantile (0 ≤ q ≤ 1) using linear interpolation
    /// between closest ranks (type-7, the R/NumPy default), or `None` when
    /// empty or `q` is out of range.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] + (self.samples[hi] - self.samples[lo]) * frac)
    }

    /// The median (`quantile(0.5)`).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: several quantiles at once.
    pub fn quantiles(&mut self, qs: &[f64]) -> Vec<Option<f64>> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }
}

impl FromIterator<f64> for ExactQuantiles {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut qs = ExactQuantiles::new();
        for x in iter {
            qs.record(x);
        }
        qs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_out_of_range() {
        let mut q = ExactQuantiles::new();
        assert!(q.quantile(0.5).is_none());
        q.record(1.0);
        assert!(q.quantile(-0.1).is_none());
        assert!(q.quantile(1.1).is_none());
    }

    #[test]
    fn single_sample_everywhere() {
        let mut q: ExactQuantiles = [7.0].into_iter().collect();
        assert_eq!(q.quantile(0.0), Some(7.0));
        assert_eq!(q.quantile(0.5), Some(7.0));
        assert_eq!(q.quantile(1.0), Some(7.0));
    }

    #[test]
    fn interpolated_median_of_even_count() {
        let mut q: ExactQuantiles = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(q.median(), Some(2.5));
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(4.0));
        // Type-7: pos = 0.75 * 3 = 2.25 → 3 + 0.25*(4-3) = 3.25
        assert_eq!(q.quantile(0.75), Some(3.25));
    }

    #[test]
    fn order_of_insertion_is_irrelevant() {
        let mut a: ExactQuantiles = [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().collect();
        let mut b: ExactQuantiles = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(a.quantile(0.25), b.quantile(0.25));
        assert_eq!(a.median(), Some(3.0));
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut q = ExactQuantiles::new();
        q.record(f64::NAN);
        q.record(f64::INFINITY);
        q.record(2.0);
        assert_eq!(q.count(), 1);
        assert_eq!(q.median(), Some(2.0));
    }

    #[test]
    fn querying_then_recording_then_querying() {
        let mut q: ExactQuantiles = [3.0, 1.0].into_iter().collect();
        assert_eq!(q.median(), Some(2.0));
        q.record(5.0);
        assert_eq!(q.median(), Some(3.0));
    }

    #[test]
    fn merge_equals_pooled_samples() {
        let xs = [9.0, 2.0, 7.0, 1.0, 5.0, 5.0, 3.0];
        let mut whole: ExactQuantiles = xs.into_iter().collect();
        let mut left: ExactQuantiles = xs[..4].iter().copied().collect();
        let right: ExactQuantiles = xs[4..].iter().copied().collect();
        // Querying before the merge must not poison later results.
        let _ = left.median();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_eq!(left.quantile(q), whole.quantile(q));
        }
        left.merge(&ExactQuantiles::new());
        assert_eq!(left.count(), whole.count());
    }
}
