//! Seedable sampling distributions.
//!
//! The workspace's only external RNG dependency is `rand`'s core generator;
//! the distributions themselves live here so that every sampling decision in
//! the synthetic workload is visible, documented, and reproducible.
//!
//! All samplers implement [`Sample`] and draw from any `rand::Rng`.

use rand::Rng;

/// A distribution that can be sampled with any RNG.
pub trait Sample {
    /// The sample type.
    type Output;
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Output;
}

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^(-s)`.
///
/// Object popularity on CDNs is classically Zipfian; the workload generator
/// uses this for per-domain object popularity. Sampling is by inverse CDF
/// over a precomputed cumulative table (O(log n) per draw), which is exact
/// and fast for the `n ≤ 10^6` universes used here.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s ≥ 0`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cumulative.push(total);
        }
        // Normalize so the final entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative }
    }

    /// Support size `n`.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Probability of rank `k` (1-based), or 0 outside the support.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cumulative.len() {
            return 0.0;
        }
        let hi = self.cumulative[k - 1];
        let lo = if k >= 2 { self.cumulative[k - 2] } else { 0.0 };
        hi - lo
    }
}

impl Sample for Zipf {
    type Output = usize;

    /// Draws a 1-based rank.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cumulative >= u.
        self.cumulative.partition_point(|&c| c < u) + 1
    }
}

/// Standard normal via the Box–Muller transform.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdNormal;

impl Sample for StdNormal {
    type Output = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen::<f64>() is in [0,1); shift to (0,1] so ln() is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Log-normal distribution: `exp(μ + σ·Z)`.
///
/// HTTP response sizes are heavy-tailed and well modelled log-normally; §4
/// of the paper compares JSON and HTML size distributions at the median and
/// 75th percentile, which this reproduction regenerates from log-normal
/// models with different (μ, σ).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with location `mu` and scale `sigma ≥ 0`
    /// (parameters of the underlying normal).
    ///
    /// # Panics
    /// Panics on non-finite parameters or negative `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Constructs the log-normal whose *median* is `median` and whose
    /// underlying normal has scale `sigma`. The median of `exp(μ+σZ)` is
    /// `exp(μ)`, so this is just a readable way to calibrate size models.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// The distribution median, `exp(μ)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// The distribution mean, `exp(μ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// The `q`-quantile via the probit function.
    pub fn quantile(&self, q: f64) -> f64 {
        (self.mu + self.sigma * probit(q)).exp()
    }
}

impl Sample for LogNormal {
    type Output = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * StdNormal.sample(rng)).exp()
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// Inter-arrival times of human-triggered (Poisson) traffic.
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with rate `λ > 0`.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite rates.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }

    /// The distribution mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Sample for Exponential {
    type Output = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        -u.ln() / self.rate
    }
}

/// Poisson distribution with mean `λ`.
///
/// Used for per-bucket request counts in synthetic noise flows. Knuth's
/// multiplication method below `λ = 30`; above that a rounded
/// normal approximation (error < 1% there, irrelevant for our use).
#[derive(Clone, Copy, Debug)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson with mean `λ > 0`.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite `λ`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "lambda must be positive"
        );
        Poisson { lambda }
    }
}

impl Sample for Poisson {
    type Output = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen();
            let mut count = 0;
            while product > limit {
                product *= rng.gen::<f64>();
                count += 1;
            }
            count
        } else {
            let z = StdNormal.sample(rng);
            let x = self.lambda + self.lambda.sqrt() * z;
            x.round().max(0.0) as u64
        }
    }
}

/// Pareto distribution with scale `x_m` and shape `α`.
///
/// Heavy-tailed client activity: a few clients issue most requests.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto with minimum `scale > 0` and shape `α > 0`.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite parameters.
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0 && scale.is_finite());
        assert!(shape > 0.0 && shape.is_finite());
        Pareto { scale, shape }
    }
}

impl Sample for Pareto {
    type Output = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        self.scale / u.powf(1.0 / self.shape)
    }
}

/// Inverse standard normal CDF (probit), Acklam's rational approximation
/// (relative error < 1.15e-9 over (0,1)).
///
/// # Panics
/// Panics when `p` is outside `(0, 1)`.
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit needs p in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Picks an index from `weights` proportionally to the weight values.
///
/// Handy for categorical draws (device mix, industry mix). Zero total weight
/// returns `None`.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if !(w.is_finite() && w > 0.0) {
            continue;
        }
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating-point slop: fall back to the last positive weight.
    weights.iter().rposition(|&w| w.is_finite() && w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..100 {
            assert!(z.pmf(k) >= z.pmf(k + 1), "pmf must decay with rank");
        }
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(101), 0.0);
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = rng();
        let mut counts = [0u64; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for k in 1..=10 {
            let expected = z.pmf(k);
            let observed = counts[k - 1] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn lognormal_median_and_mean() {
        let ln = LogNormal::from_median(900.0, 0.8);
        assert!((ln.median() - 900.0).abs() < 1e-9);
        let mut rng = rng();
        let s: Summary = (0..100_000).map(|_| ln.sample(&mut rng)).collect();
        assert!((s.mean().unwrap() - ln.mean()).abs() / ln.mean() < 0.05);
    }

    #[test]
    fn lognormal_quantile_matches_samples() {
        let ln = LogNormal::new(0.0, 1.0);
        let mut rng = rng();
        let samples: Vec<f64> = (0..100_000).map(|_| ln.sample(&mut rng)).collect();
        let mut q = crate::ExactQuantiles::new();
        for &s in &samples {
            q.record(s);
        }
        let p75 = q.quantile(0.75).unwrap();
        assert!((p75 - ln.quantile(0.75)).abs() / ln.quantile(0.75) < 0.05);
    }

    #[test]
    fn exponential_mean() {
        let e = Exponential::new(0.25);
        assert_eq!(e.mean(), 4.0);
        let mut rng = rng();
        let s: Summary = (0..100_000).map(|_| e.sample(&mut rng)).collect();
        assert!((s.mean().unwrap() - 4.0).abs() < 0.1);
        assert!(s.min().unwrap() >= 0.0);
    }

    #[test]
    fn poisson_small_lambda() {
        let p = Poisson::new(3.0);
        let mut rng = rng();
        let s: Summary = (0..100_000).map(|_| p.sample(&mut rng) as f64).collect();
        assert!((s.mean().unwrap() - 3.0).abs() < 0.05);
        assert!((s.variance().unwrap() - 3.0).abs() < 0.15);
    }

    #[test]
    fn poisson_large_lambda_normal_approx() {
        let p = Poisson::new(400.0);
        let mut rng = rng();
        let s: Summary = (0..50_000).map(|_| p.sample(&mut rng) as f64).collect();
        assert!((s.mean().unwrap() - 400.0).abs() < 2.0);
        assert!((s.variance().unwrap() - 400.0).abs() < 20.0);
    }

    #[test]
    fn pareto_respects_scale() {
        let p = Pareto::new(10.0, 2.0);
        let mut rng = rng();
        for _ in 0..1000 {
            assert!(p.sample(&mut rng) >= 10.0);
        }
    }

    #[test]
    fn probit_known_values() {
        assert!((probit(0.5)).abs() < 1e-9);
        assert!((probit(0.975) - 1.959964).abs() < 1e-5);
        assert!((probit(0.025) + 1.959964).abs() < 1e-5);
        assert!((probit(0.999) - 3.090232).abs() < 1e-4);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u64; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_zero_total_is_none() {
        let mut rng = rng();
        assert!(weighted_index(&mut rng, &[0.0, 0.0]).is_none());
        assert!(weighted_index(&mut rng, &[]).is_none());
        assert!(weighted_index(&mut rng, &[f64::NAN]).is_none());
    }

    #[test]
    fn determinism_with_same_seed() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
