//! Fixed-width time-bucketed counters.

/// Counts events into fixed-width buckets along a `u64` time axis.
///
/// Used for Figure 1 (monthly JSON:HTML request counts over a multi-year
/// trend) and for the 1-second sampling step of the periodicity detector
/// (§5.1) — the detector operates on the per-bucket counts as a discrete
/// signal.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    origin: u64,
    bucket_width: u64,
    counts: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series starting at `origin` with `buckets` buckets of
    /// `bucket_width` ticks each.
    ///
    /// # Panics
    /// Panics when `bucket_width == 0` or `buckets == 0`.
    pub fn new(origin: u64, bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "need at least one bucket");
        TimeSeries {
            origin,
            bucket_width,
            counts: vec![0; buckets],
        }
    }

    /// Creates a series sized to cover `[origin, end]`.
    pub fn covering(origin: u64, end: u64, bucket_width: u64) -> Self {
        assert!(end >= origin, "end must not precede origin");
        let span = end - origin;
        let buckets = (span / bucket_width + 1) as usize;
        TimeSeries::new(origin, bucket_width, buckets)
    }

    /// Records one event at time `t`. Events outside the covered range are
    /// counted in neither bucket and reported via the return value.
    pub fn record(&mut self, t: u64) -> bool {
        match self.bucket_index(t) {
            Some(idx) => {
                self.counts[idx] += 1;
                true
            }
            None => false,
        }
    }

    /// Adds `n` events at time `t`.
    pub fn record_n(&mut self, t: u64, n: u64) -> bool {
        match self.bucket_index(t) {
            Some(idx) => {
                self.counts[idx] += n;
                true
            }
            None => false,
        }
    }

    /// The bucket index covering time `t`, if in range.
    pub fn bucket_index(&self, t: u64) -> Option<usize> {
        if t < self.origin {
            return None;
        }
        let idx = ((t - self.origin) / self.bucket_width) as usize;
        (idx < self.counts.len()).then_some(idx)
    }

    /// The start time of bucket `idx`.
    pub fn bucket_start(&self, idx: usize) -> u64 {
        self.origin + self.bucket_width * idx as u64
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Counts as `f64`, the input format of the signal-processing pipeline.
    pub fn as_signal(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }

    /// Total events recorded in range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the series has zero buckets (impossible by construction,
    /// kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Element-wise ratio of this series to `other` (`None` where `other`
    /// is zero). The Figure 1 "JSON:HTML ratio" series is produced this way.
    pub fn ratio_to(&self, other: &TimeSeries) -> Vec<Option<f64>> {
        self.counts
            .iter()
            .zip(other.counts.iter())
            .map(|(&a, &b)| (b > 0).then(|| a as f64 / b as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut ts = TimeSeries::new(100, 10, 3); // [100,110) [110,120) [120,130)
        assert!(ts.record(100));
        assert!(ts.record(109));
        assert!(ts.record(110));
        assert!(ts.record(129));
        assert!(!ts.record(99));
        assert!(!ts.record(130));
        assert_eq!(ts.counts(), &[2, 1, 1]);
        assert_eq!(ts.total(), 4);
    }

    #[test]
    fn covering_spans_inclusive_end() {
        let ts = TimeSeries::covering(0, 100, 10);
        assert_eq!(ts.len(), 11);
        assert_eq!(ts.bucket_index(100), Some(10));
    }

    #[test]
    fn bucket_start_inverts_index() {
        let ts = TimeSeries::new(50, 7, 4);
        for i in 0..4 {
            assert_eq!(ts.bucket_index(ts.bucket_start(i)), Some(i));
        }
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut json = TimeSeries::new(0, 1, 3);
        let mut html = TimeSeries::new(0, 1, 3);
        json.record_n(0, 8);
        html.record_n(0, 2);
        json.record_n(1, 5);
        // html bucket 1 stays zero
        html.record_n(2, 4);
        let ratio = json.ratio_to(&html);
        assert_eq!(ratio[0], Some(4.0));
        assert_eq!(ratio[1], None);
        assert_eq!(ratio[2], Some(0.0));
    }

    #[test]
    fn as_signal_matches_counts() {
        let mut ts = TimeSeries::new(0, 5, 2);
        ts.record_n(1, 3);
        assert_eq!(ts.as_signal(), vec![3.0, 0.0]);
    }
}
