//! Streaming moment statistics.

/// Single-pass summary statistics using Welford's online algorithm.
///
/// Numerically stable for long streams (the CDN characterization summarizes
/// millions of response sizes per run) and mergeable, so per-shard summaries
/// can be combined.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (Chan et al. parallel variant).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance, or `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (n−1 denominator), or `None` with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population standard deviation, or `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_none() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.variance().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [3.5].into_iter().collect();
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.variance(), Some(0.0));
        assert!(s.sample_variance().is_none());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Summary = xs.iter().copied().collect();
        let mut left: Summary = xs[..37].iter().copied().collect();
        let right: Summary = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean().unwrap() - all.mean().unwrap()).abs() < 1e-12);
        assert!((left.variance().unwrap() - all.variance().unwrap()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), Some(1.5));
    }
}
