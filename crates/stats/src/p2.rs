//! The P² streaming quantile estimator (Jain & Chlamtac, 1985).
//!
//! [`ExactQuantiles`] keeps every sample; at the paper's real scale (25M
//! logs) that is gigabytes per distribution. [`P2Quantile`] estimates a
//! single quantile in O(1) space with five markers whose positions are
//! adjusted by a piecewise-parabolic formula — the classic streaming
//! estimator used in production telemetry systems.

/// Streaming estimator of one quantile.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    /// The target quantile in (0, 1).
    q: f64,
    /// Marker heights (estimates of the quantile positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen so far.
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics when `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The target quantile.
    pub fn quantile_target(&self) -> f64 {
        self.q
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_unstable_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        self.count += 1;

        // Find the cell k containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]
            (0..4).find(|&i| x < self.heights[i + 1]).unwrap_or(3)
        };

        // Increment positions of markers above the cell.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the three middle markers if they drifted.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let direction = d.signum();
                let candidate = self.parabolic(i, direction);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, direction)
                    };
                self.positions[i] += direction;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (p_prev, p, p_next) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        let (h_prev, h, h_next) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        h + d / (p_next - p_prev)
            * ((p - p_prev + d) * (h_next - h) / (p_next - p)
                + (p_next - p - d) * (h - h_prev) / (p - p_prev))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current estimate, or `None` before any observation. With fewer
    /// than five observations the exact order statistic is returned.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                let mut seen: Vec<f64> = self.heights[..n as usize].to_vec();
                seen.sort_unstable_by(|a, b| a.total_cmp(b));
                let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n as usize);
                Some(seen[rank - 1])
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{LogNormal, Sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_tiny_streams() {
        let mut p = P2Quantile::new(0.5);
        assert!(p.estimate().is_none());
        p.record(10.0);
        assert_eq!(p.estimate(), Some(10.0));
        p.record(20.0);
        p.record(30.0);
        // Exact median of {10,20,30} (rank ceil(0.5*3)=2).
        assert_eq!(p.estimate(), Some(20.0));
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut p = P2Quantile::new(0.5);
        // Deterministic low-discrepancy walk over (0, 1000).
        for i in 0..100_000u64 {
            p.record((i.wrapping_mul(6364136223846793005) >> 11) as f64 % 1000.0);
        }
        let estimate = p.estimate().unwrap();
        assert!(
            (estimate - 500.0).abs() < 20.0,
            "median estimate {estimate}"
        );
    }

    #[test]
    fn p75_of_lognormal_matches_exact() {
        let ln = LogNormal::from_median(900.0, 0.8);
        let mut rng = StdRng::seed_from_u64(7);
        let mut p2 = P2Quantile::new(0.75);
        let mut exact = crate::ExactQuantiles::new();
        for _ in 0..200_000 {
            let x = ln.sample(&mut rng);
            p2.record(x);
            exact.record(x);
        }
        let approx = p2.estimate().unwrap();
        let truth = exact.quantile(0.75).unwrap();
        let err = (approx - truth).abs() / truth;
        assert!(err < 0.03, "P2 {approx} vs exact {truth} (err {err})");
    }

    #[test]
    fn extreme_quantiles() {
        let mut p99 = P2Quantile::new(0.99);
        let mut p01 = P2Quantile::new(0.01);
        for i in 1..=10_000 {
            // Shuffled-ish order via multiplicative hashing.
            let v = ((i as u64).wrapping_mul(2654435761) % 10_000) as f64;
            p99.record(v);
            p01.record(v);
        }
        assert!((p99.estimate().unwrap() - 9_900.0).abs() < 150.0);
        assert!((p01.estimate().unwrap() - 100.0).abs() < 150.0);
    }

    #[test]
    fn non_finite_values_ignored() {
        let mut p = P2Quantile::new(0.5);
        p.record(f64::NAN);
        p.record(f64::INFINITY);
        assert!(p.estimate().is_none());
        assert_eq!(p.count(), 0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_out_of_range_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
