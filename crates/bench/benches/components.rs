//! Criterion microbenchmarks for the substrate components: FFT,
//! autocorrelation, LRU cache, JSON parsing, URL clustering, n-gram
//! prediction, and the trace codec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jcdn_cdnsim::cache::LruCache;
use jcdn_cdnsim::{run_default, FaultPlan, OriginOutage, SimConfig, Window};
use jcdn_ngram::NgramModel;
use jcdn_signal::acf::Autocorrelation;
use jcdn_signal::fft::{fft_in_place, Complex};
use jcdn_signal::spectrum::Periodogram;
use jcdn_trace::codec::{decode, encode};
use jcdn_trace::{
    CacheStatus, ClientId, LogRecord, Method, MimeType, RecordFlags, SimDuration, SimTime, Trace,
};
use jcdn_url::cluster::Clusterer;
use jcdn_url::Url;
use jcdn_workload::{build, WorkloadConfig};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[1024usize, 8192, 65536] {
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut data = signal.clone();
                fft_in_place(&mut data);
                std::hint::black_box(data[1])
            })
        });
    }
    group.finish();
}

fn bench_acf_and_periodogram(c: &mut Criterion) {
    let signal: Vec<f64> = (0..8192)
        .map(|i| if i % 30 == 0 { 1.0 } else { 0.0 })
        .collect();
    c.bench_function("acf_8192", |b| {
        b.iter(|| std::hint::black_box(Autocorrelation::compute(&signal).values[30]))
    });
    c.bench_function("periodogram_8192", |b| {
        b.iter(|| std::hint::black_box(Periodogram::compute(&signal).peak()))
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru_mixed_ops_10k", |b| {
        b.iter(|| {
            let mut cache: LruCache<u32> = LruCache::new(64 * 1024);
            let ttl = SimDuration::from_secs(3600);
            for i in 0u32..10_000 {
                let key = i * 2654435761 % 1024;
                let now = SimTime::from_millis(u64::from(i));
                if i % 3 == 0 {
                    cache.insert(key, 100, ttl, now, false);
                } else {
                    std::hint::black_box(cache.get(key, now));
                }
            }
            std::hint::black_box(cache.len())
        })
    });
}

fn bench_json(c: &mut Criterion) {
    let manifest = {
        let stories: Vec<String> = (0..50)
            .map(|i| {
                format!(
                    r#"{{"article_id":{i},"article_title":"Story {i}","article_url":"https://news.example/api/articles/{i}","image_url":"https://news.example/media/image{i}.jpg"}}"#
                )
            })
            .collect();
        format!("[{}]", stories.join(","))
    };
    c.bench_function("json_parse_manifest_50", |b| {
        b.iter(|| std::hint::black_box(jcdn_json::parse(&manifest).unwrap()))
    });
    let doc = jcdn_json::parse(&manifest).unwrap();
    c.bench_function("json_extract_refs_50", |b| {
        b.iter(|| std::hint::black_box(jcdn_json::extract_url_refs(&doc).len()))
    });
}

fn bench_url_cluster(c: &mut Criterion) {
    let clusterer = Clusterer::default();
    let urls: Vec<Url> = (0..100)
        .map(|i| {
            Url::parse(&format!(
                "https://api-{}.example/user/{:016x}/feed?page={}&session=ab{}cd34ef99",
                i % 7,
                i * 0x9e3779b97f4a7c15u64,
                i,
                i
            ))
            .unwrap()
        })
        .collect();
    c.bench_function("url_cluster_100", |b| {
        b.iter(|| {
            let total: usize = urls.iter().map(|u| clusterer.cluster(u).len()).sum();
            std::hint::black_box(total)
        })
    });
}

fn bench_ngram(c: &mut Criterion) {
    let mut model = NgramModel::new(2);
    // 200 clients × 60-step walks over a 500-token vocabulary.
    for client in 0..200u32 {
        let seq: Vec<u32> = (0..60)
            .map(|i| (client.wrapping_mul(31).wrapping_add(i * 7)) % 500)
            .collect();
        model.train_sequence(&seq);
    }
    c.bench_function("ngram_predict_top10", |b| {
        let history = [3u32, 10];
        b.iter(|| std::hint::black_box(model.predict(&history, 10)))
    });
}

fn bench_codec(c: &mut Criterion) {
    let mut trace = Trace::new();
    let urls: Vec<_> = (0..200)
        .map(|i| trace.intern_url(&format!("https://h{}.example/api/{}", i % 20, i)))
        .collect();
    let ua = trace.intern_ua("okhttp/3.12.1");
    for i in 0..50_000u64 {
        trace.push(LogRecord {
            time: SimTime::from_millis(i * 13),
            client: ClientId(i % 500),
            ua: Some(ua),
            url: urls[(i % 200) as usize],
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 500 + i % 1000,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        });
    }
    c.bench_function("codec_encode_50k", |b| {
        b.iter(|| std::hint::black_box(encode(&trace).expect("time-sorted").len()))
    });
    let encoded = encode(&trace).expect("time-sorted");
    c.bench_function("codec_decode_50k", |b| {
        b.iter(|| std::hint::black_box(decode(encoded.clone()).unwrap().len()))
    });
}

fn bench_fault_sim(c: &mut Criterion) {
    // The resilience machinery (retries, serve-stale, negative cache,
    // coalescing) all fire under an outage; this times that hot path
    // against the fault-free baseline.
    let workload = build(&WorkloadConfig::tiny(77).scaled(0.2));
    let clean = SimConfig::default();
    let faulted = SimConfig {
        fault: FaultPlan {
            outages: vec![OriginOutage {
                domain: 0,
                window: Window::from_secs(0, 600),
            }],
            ..FaultPlan::default()
        },
        ..SimConfig::default()
    };
    c.bench_function("sim_tiny_fault_free", |b| {
        b.iter(|| std::hint::black_box(run_default(&workload, &clean).stats.requests))
    });
    c.bench_function("sim_tiny_outage_resilient", |b| {
        b.iter(|| std::hint::black_box(run_default(&workload, &faulted).stats.end_user_failures))
    });
}

criterion_group!(
    components,
    bench_fft,
    bench_acf_and_periodogram,
    bench_lru,
    bench_json,
    bench_url_cluster,
    bench_ngram,
    bench_codec,
    bench_fault_sim,
);
criterion_main!(components);
