//! Criterion benchmarks: one per reproduced table/figure, timing the
//! analysis that regenerates it (dataset simulation happens once, outside
//! the timed section).

use criterion::{criterion_group, criterion_main, Criterion};
use jcdn_core::characterize::{
    CacheabilityHeatmap, RequestTypeBreakdown, ResponseTypeBreakdown, TokenCategoryProvider,
    TrafficSourceBreakdown,
};
use jcdn_core::dataset::{simulate, Dataset};
use jcdn_core::periodicity::{run_study as run_periodicity, PeriodicityStudyConfig};
use jcdn_core::prediction::{run_study as run_prediction, PredictionStudyConfig};
use jcdn_signal::periodicity::PeriodicityConfig;
use jcdn_trace::summary::DatasetSummary;
use jcdn_trace::SimDuration;
use jcdn_workload::trend::TrendModel;
use jcdn_workload::WorkloadConfig;

fn small_dataset() -> Dataset {
    simulate(&WorkloadConfig::tiny(99))
}

fn periodic_dataset() -> Dataset {
    let mut config = WorkloadConfig::tiny(99);
    config.duration = SimDuration::from_secs(3600);
    config.clients = 300;
    config.target_events = 30_000;
    simulate(&config)
}

fn fig1_content_ratio(c: &mut Criterion) {
    c.bench_function("fig1_content_ratio", |b| {
        b.iter(|| {
            let series = TrendModel::default().generate();
            std::hint::black_box(series.last().unwrap().ratio())
        })
    });
}

fn table2_datasets(c: &mut Criterion) {
    let data = small_dataset();
    c.bench_function("table2_dataset_summary", |b| {
        b.iter(|| std::hint::black_box(DatasetSummary::compute("bench", &data.trace)))
    });
}

fn fig3_device_mix(c: &mut Criterion) {
    let data = small_dataset();
    c.bench_function("fig3_device_mix", |b| {
        b.iter(|| std::hint::black_box(TrafficSourceBreakdown::compute(&data.trace)))
    });
}

fn sec4_request_response(c: &mut Criterion) {
    let data = small_dataset();
    c.bench_function("sec4_request_types", |b| {
        b.iter(|| std::hint::black_box(RequestTypeBreakdown::compute(&data.trace)))
    });
    c.bench_function("sec4_response_types", |b| {
        b.iter(|| std::hint::black_box(ResponseTypeBreakdown::compute(&data.trace)))
    });
}

fn fig4_heatmap(c: &mut Criterion) {
    let data = small_dataset();
    c.bench_function("fig4_cacheability_heatmap", |b| {
        b.iter(|| {
            std::hint::black_box(CacheabilityHeatmap::compute(
                &data.trace,
                &TokenCategoryProvider,
                10,
            ))
        })
    });
}

fn fig5_fig6_periodicity(c: &mut Criterion) {
    let data = periodic_dataset();
    let config = PeriodicityStudyConfig {
        detector: PeriodicityConfig {
            permutations: 20,
            parallel: true,
            max_bins: 1 << 12,
            ..PeriodicityConfig::default()
        },
        ..PeriodicityStudyConfig::default()
    };
    let mut group = c.benchmark_group("fig5_fig6_periodicity");
    group.sample_size(10);
    group.bench_function("study_x20", |b| {
        b.iter(|| std::hint::black_box(run_periodicity(&data.trace, &config)))
    });
    group.finish();
}

fn table3_ngram(c: &mut Criterion) {
    let data = small_dataset();
    let mut group = c.benchmark_group("table3_ngram");
    group.sample_size(10);
    group.bench_function("train_and_eval", |b| {
        b.iter(|| {
            std::hint::black_box(run_prediction(
                &data.trace,
                &PredictionStudyConfig::default(),
            ))
        })
    });
    group.finish();
}

fn ext_prefetch(c: &mut Criterion) {
    use jcdn_cdnsim::{run, SimConfig};
    use jcdn_prefetch::NgramPrefetcher;
    let data = small_dataset();
    let mut group = c.benchmark_group("ext_prefetch");
    group.sample_size(10);
    group.bench_function("ngram_policy_simulation", |b| {
        b.iter(|| {
            let mut policy = NgramPrefetcher::train_from_trace(&data.trace, 1, 5);
            policy.bind_universe(&data.workload.objects);
            std::hint::black_box(run(&data.workload, &SimConfig::default(), &mut policy).stats)
        })
    });
    group.finish();
}

criterion_group!(
    analyses,
    fig1_content_ratio,
    table2_datasets,
    fig3_device_mix,
    sec4_request_response,
    fig4_heatmap,
    fig5_fig6_periodicity,
    table3_ngram,
    ext_prefetch,
);
criterion_main!(analyses);
