//! Scatter–gather pipeline benchmarks: the same generate and characterize
//! work at one worker versus the full pool. The shard-invariance tests
//! prove the outputs are identical for every thread count; these benches
//! time the two paths so the speedup is measurable (expect ≥2× at 8
//! threads on an 8-core machine for the 1M-record workload).
//!
//! Under `cargo bench -- --test` (the CI smoke mode, which runs each body
//! exactly once) the workload is scaled down so the smoke stays fast; a
//! full `cargo bench` uses the ≥1M-record configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jcdn_cdnsim::SimConfig;
use jcdn_core::characterize::TokenCategoryProvider;
use jcdn_core::dataset::simulate_workload_parallel;
use jcdn_core::pipeline::CharacterizationReport;
use jcdn_trace::{ShardedTrace, SimDuration};
use jcdn_workload::{build_parallel, WorkloadConfig};

const THREAD_COUNTS: &[usize] = &[1, 8];

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// The benchmark workload: ~1M request events (50K in smoke mode).
fn pipeline_config() -> WorkloadConfig {
    let mut config = WorkloadConfig::short_term(4242);
    config.duration = SimDuration::from_secs(3_600);
    if smoke_mode() {
        config.target_events = 50_000;
        config.clients = 1_200;
    } else {
        config.target_events = 1_000_000;
        config.clients = 24_000;
    }
    config
}

/// Eight edges so the per-edge simulation fan-out has work to scatter.
fn sim_config() -> SimConfig {
    SimConfig {
        edges: 8,
        ..SimConfig::default()
    }
}

fn sharded_generate(c: &mut Criterion) {
    let config = pipeline_config();
    let sim = sim_config();
    let mut group = c.benchmark_group("sharded_generate_1m");
    group.sample_size(10);
    for &threads in THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let workload = build_parallel(&config, t);
                std::hint::black_box(simulate_workload_parallel(workload, &sim, t).trace.len())
            })
        });
    }
    group.finish();
}

fn sharded_characterize(c: &mut Criterion) {
    let config = pipeline_config();
    let workload = build_parallel(&config, 8);
    let data = simulate_workload_parallel(workload, &sim_config(), 8);
    let sharded = ShardedTrace::from_trace(data.trace, 8);
    let mut group = c.benchmark_group("sharded_characterize_1m");
    group.sample_size(10);
    for &threads in THREAD_COUNTS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                std::hint::black_box(CharacterizationReport::compute_sharded(
                    &sharded,
                    &TokenCategoryProvider,
                    t,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(sharded, sharded_generate, sharded_characterize);
criterion_main!(sharded);
