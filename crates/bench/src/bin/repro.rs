//! The reproduction harness: regenerates every table and figure of the
//! paper from synthetic datasets and prints paper-vs-measured comparisons.
//!
//! ```sh
//! cargo run --release -p jcdn-bench --bin repro              # everything
//! cargo run --release -p jcdn-bench --bin repro -- fig5      # one experiment
//! cargo run --release -p jcdn-bench --bin repro -- --scale 0.5 --seed 7 all
//! cargo run --release -p jcdn-bench --bin repro -- --markdown EXPERIMENTS.md all
//! ```
//!
//! Exits non-zero when any shape check fails, so CI can gate on it.

use std::process::ExitCode;

use jcdn_bench::experiments::{self, ExperimentResult};
use jcdn_bench::Context;

const ALL: &[&str] = &[
    "fig1",
    "table2",
    "fig3",
    "sec4_requests",
    "sec4_responses",
    "fig4",
    "fig5",
    "fig6",
    "table3",
    "ext_prefetch",
    "ext_depri",
    "ext_outage",
    "abl_permutations",
    "abl_history",
    "abl_parent",
    "abl_cache",
    "ext_leadtime",
    "ext_anomaly",
    "ext_traffic_mix",
];

fn main() -> ExitCode {
    let mut scale = 1.0f64;
    let mut seed = 2019u64;
    let mut markdown: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--markdown" => {
                markdown = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--markdown needs a path")),
                );
            }
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a positive number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => {
                usage("");
            }
            "all" => selected.extend(ALL.iter().map(|s| s.to_string())),
            other if ALL.contains(&other) => selected.push(other.to_string()),
            other => usage(&format!("unknown experiment {other:?}")),
        }
    }
    if selected.is_empty() {
        selected.extend(ALL.iter().map(|s| s.to_string()));
    }

    let needs_context = selected.iter().any(|s| s != "fig1");
    let context = if needs_context {
        eprintln!("[repro] simulating datasets (seed {seed}, scale {scale})...");
        Some(Context::new(seed, scale))
    } else {
        None
    };

    // The periodicity study is shared by fig5/fig6; run it once.
    let needs_periodicity = selected.iter().any(|s| s == "fig5" || s == "fig6");
    let periodicity_report = if needs_periodicity {
        eprintln!("[repro] running the periodicity study (x = 100)...");
        Some(experiments::periodicity(
            context.as_ref().expect("context exists"),
            100,
        ))
    } else {
        None
    };

    let mut failures = 0;
    let mut md = String::new();
    if markdown.is_some() {
        md.push_str(&markdown_preamble(seed, scale));
    }
    for id in &selected {
        let ctx = context.as_ref();
        let result: ExperimentResult = match id.as_str() {
            "fig1" => experiments::fig1(),
            "table2" => experiments::table2(ctx.expect("ctx")),
            "fig3" => experiments::fig3(ctx.expect("ctx")),
            "sec4_requests" => experiments::sec4_requests(ctx.expect("ctx")),
            "sec4_responses" => experiments::sec4_responses(ctx.expect("ctx")),
            "fig4" => experiments::fig4(ctx.expect("ctx")),
            "fig5" => experiments::fig5(
                ctx.expect("ctx"),
                periodicity_report.as_ref().expect("report"),
            ),
            "fig6" => experiments::fig6(periodicity_report.as_ref().expect("report")),
            "table3" => experiments::table3(ctx.expect("ctx")),
            "ext_prefetch" => experiments::ext_prefetch(ctx.expect("ctx")),
            "ext_depri" => experiments::ext_depri(ctx.expect("ctx")),
            "ext_outage" => experiments::ext_outage(ctx.expect("ctx")),
            "abl_permutations" => experiments::abl_permutations(ctx.expect("ctx")),
            "abl_history" => experiments::abl_history(ctx.expect("ctx")),
            "abl_parent" => experiments::abl_parent_tier(ctx.expect("ctx")),
            "ext_leadtime" => experiments::ext_leadtime(ctx.expect("ctx")),
            "abl_cache" => experiments::abl_cache(ctx.expect("ctx")),
            "ext_anomaly" => experiments::ext_anomaly(ctx.expect("ctx")),
            "ext_traffic_mix" => experiments::ext_traffic_mix(ctx.expect("ctx")),
            _ => unreachable!("validated above"),
        };

        println!("\n=== [{}] {} ===\n", result.id, result.title);
        println!("{}", result.rendered.trim_end());
        println!();
        for (name, ok) in &result.checks {
            println!("  [{}] {name}", if *ok { "PASS" } else { "FAIL" });
            if !ok {
                failures += 1;
            }
        }
        if markdown.is_some() {
            md.push_str(&format!("## `{}` — {}\n\n", result.id, result.title));
            md.push_str("```text\n");
            md.push_str(result.rendered.trim_end());
            md.push_str("\n```\n\n");
            for (name, ok) in &result.checks {
                md.push_str(&format!("- [{}] {name}\n", if *ok { "x" } else { " " }));
            }
            md.push('\n');
        }
    }

    if let Some(path) = &markdown {
        if let Err(e) = std::fs::write(path, md) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[repro] wrote {path}");
    }

    println!();
    if failures == 0 {
        println!("repro: all shape checks passed");
        ExitCode::SUCCESS
    } else {
        println!("repro: {failures} shape check(s) FAILED");
        ExitCode::FAILURE
    }
}

fn markdown_preamble(seed: u64, scale: f64) -> String {
    format!(
        "# EXPERIMENTS — paper vs. measured\n\n\
         Generated by `cargo run --release -p jcdn-bench --bin repro -- \
         --markdown EXPERIMENTS.md all` (seed {seed}, volume scale {scale}).\n\n\
         The traces are synthetic (see DESIGN.md §2): the comparison targets \
         are the paper's *shapes* — who wins, by roughly what factor, where \
         the spikes fall — not its absolute counts. Every `- [x]` line is a \
         machine-checked shape assertion; the harness exits non-zero if any \
         fails.\n\n\
         Dataset scale: the paper's short-term dataset is 25M logs and its \
         long-term dataset 10M; the defaults here generate ~0.5M/0.4M \
         (×`--scale`), i.e. roughly 1:50 / 1:25. Domain counts keep the \
         paper's shape (short-term ≫ long-term ≈ 170).\n\n"
    )
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: repro [--scale F] [--seed N] [all | {}]",
        ALL.join(" | ")
    );
    std::process::exit(2);
}
