//! Emits `BENCH_codec_v4.json`: before/after codec round-trip times for
//! the columnar v4 format against the retired row-major v3 layout, on the
//! same ~1M-record workload the pipeline baseline uses, at 1 and 8 shards.
//!
//! ```sh
//! cargo run --release -p jcdn-bench --bin codec                 # 1M records
//! cargo run --release -p jcdn-bench --bin codec -- --scale 0.1  # quick look
//! ```
//!
//! The v3 side encodes through the frozen [`jcdn_trace::compat`] writers
//! (the live codec no longer produces v3) and decodes through the live
//! decoder's back-compat path — exactly what a v3 file on disk pays today.

use std::process::ExitCode;

use jcdn_cdnsim::SimConfig;
use jcdn_core::dataset::simulate_workload_parallel;
use jcdn_obs::clock::Stopwatch;
use jcdn_obs::json::ObjectWriter;
use jcdn_obs::manifest::peak_rss_kb;
use jcdn_trace::ShardedTrace;
use jcdn_workload::{build_parallel, WorkloadConfig};

struct RoundTrip {
    encode_us: u64,
    decode_us: u64,
    bytes: u64,
}

fn time_round_trip(
    encode: impl FnOnce() -> Result<bytes::Bytes, jcdn_trace::codec::EncodeError>,
    decode: impl FnOnce(bytes::Bytes) -> Result<ShardedTrace, jcdn_trace::codec::DecodeError>,
    expect_records: usize,
) -> Result<RoundTrip, String> {
    let clock = Stopwatch::start();
    let encoded = encode().map_err(|e| format!("encode failed: {e}"))?;
    let encode_us = clock.elapsed_us().max(1);
    let bytes = encoded.len() as u64;
    let clock = Stopwatch::start();
    let decoded = decode(encoded).map_err(|e| format!("own encoding failed to decode: {e}"))?;
    let decode_us = clock.elapsed_us().max(1);
    if decoded.len() != expect_records {
        return Err(format!(
            "round-trip lost records: {} != {expect_records}",
            decoded.len()
        ));
    }
    Ok(RoundTrip {
        encode_us,
        decode_us,
        bytes,
    })
}

fn main() -> ExitCode {
    let mut scale = 2.0f64;
    let mut seed = 2019u64;
    let mut threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let mut out = String::from("BENCH_codec_v4.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => scale = parse(&value("--scale"), "--scale"),
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--threads" => threads = parse(&value("--threads"), "--threads"),
            "--out" => out = value("--out"),
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let config = WorkloadConfig::short_term(seed).scaled(scale);
    eprintln!(
        "codec bench: ~{} events, {} threads",
        config.target_events, threads
    );
    let workload = build_parallel(&config, threads);
    let data = simulate_workload_parallel(workload, &SimConfig::default(), threads);
    let records = data.trace.len();

    let mut body = String::new();
    let mut w = ObjectWriter::begin(&mut body);
    w.field_str("benchmark", "codec-v3-vs-v4-roundtrip");
    w.field_str("preset", "short");
    w.field_raw("scale", &format!("{scale}"));
    w.field_u64("seed", seed);
    w.field_u64("threads", threads as u64);
    w.field_u64("records", records as u64);

    for shards in [1usize, 8] {
        let sharded = ShardedTrace::from_trace(data.trace.clone(), shards);
        let v3 = match time_round_trip(
            || jcdn_trace::compat::encode_sharded_v3(&sharded),
            |b| jcdn_trace::codec::decode_sharded_parallel(&b, threads),
            records,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("v3 shards={shards}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let v4 = match time_round_trip(
            || jcdn_trace::codec::encode_sharded_parallel(&sharded, threads),
            |b| jcdn_trace::codec::decode_sharded_parallel(&b, threads),
            records,
        ) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("v4 shards={shards}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let v3_total = v3.encode_us + v3.decode_us;
        let v4_total = v4.encode_us + v4.decode_us;
        w.field_u64(&format!("v3_shards{shards}_encode_us"), v3.encode_us);
        w.field_u64(&format!("v3_shards{shards}_decode_us"), v3.decode_us);
        w.field_u64(&format!("v3_shards{shards}_roundtrip_us"), v3_total);
        w.field_u64(&format!("v3_shards{shards}_bytes"), v3.bytes);
        w.field_u64(&format!("v4_shards{shards}_encode_us"), v4.encode_us);
        w.field_u64(&format!("v4_shards{shards}_decode_us"), v4.decode_us);
        w.field_u64(&format!("v4_shards{shards}_roundtrip_us"), v4_total);
        w.field_u64(&format!("v4_shards{shards}_bytes"), v4.bytes);
        w.field_raw(
            &format!("v4_shards{shards}_speedup"),
            &format!("{:.2}", v3_total as f64 / v4_total as f64),
        );
        eprintln!(
            "shards={shards}: v3 {v3_total} µs, v4 {v4_total} µs ({:.2}x), \
             bytes {} -> {}",
            v3_total as f64 / v4_total as f64,
            v3.bytes,
            v4.bytes
        );
    }
    match peak_rss_kb() {
        Some(kb) => w.field_u64("peak_rss_kb", kb),
        None => w.field_raw("peak_rss_kb", "null"),
    }
    w.end();

    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(raw: &str, what: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{what}: cannot parse {raw:?}");
        std::process::exit(2)
    })
}
