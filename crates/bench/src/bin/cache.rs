//! Emits `BENCH_cache.json`: per-eviction-policy get/insert throughput
//! and hit rate on a deterministic Zipf trace.
//!
//! ```sh
//! cargo run --release -p jcdn-bench --bin cache                 # 2M ops
//! cargo run --release -p jcdn-bench --bin cache -- --ops 100000 # quick look
//! cargo run --release -p jcdn-bench --bin cache -- --out BENCH_cache.json
//! ```
//!
//! Every policy sees the *same* access sequence (seeded Zipf over a fixed
//! object universe, log-normal-ish mixed sizes), so hit rates are directly
//! comparable across policies and across runs. As with the pipeline
//! baseline, the committed artifact is a reference shape, not a CI gate:
//! ops/sec moves with hardware, hit rates do not.

use std::process::ExitCode;

use jcdn_cdnsim::cache::PolicyCache;
use jcdn_cdnsim::PolicyKind;
use jcdn_obs::clock::Stopwatch;
use jcdn_obs::json::ObjectWriter;
use jcdn_obs::manifest::peak_rss_kb;
use jcdn_trace::{SimDuration, SimTime};

/// One pre-drawn access: object id, response size, arrival time.
struct Access {
    object: u32,
    size: u64,
    time: SimTime,
}

fn main() -> ExitCode {
    let mut ops = 2_000_000usize;
    let mut objects = 100_000usize;
    let mut alpha = 0.9f64;
    let mut seed = 2019u64;
    let mut capacity = 64u64 << 20;
    let mut out = String::from("BENCH_cache.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--ops" => ops = parse(&value("--ops"), "--ops"),
            "--objects" => objects = parse(&value("--objects"), "--objects"),
            "--alpha" => alpha = parse(&value("--alpha"), "--alpha"),
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--capacity" => capacity = parse(&value("--capacity"), "--capacity"),
            "--out" => out = value("--out"),
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    if ops == 0 || objects == 0 || capacity == 0 {
        eprintln!("--ops, --objects and --capacity must be positive");
        return ExitCode::from(2);
    }

    eprintln!(
        "cache bench: {ops} ops over {objects} objects (Zipf {alpha}), \
         capacity {capacity} bytes"
    );
    let trace = zipf_trace(ops, objects, alpha, seed);
    let footprint: u64 = {
        // Distinct-object footprint, for the summary line.
        let mut sizes = vec![0u64; objects];
        for a in &trace {
            sizes[a.object as usize] = a.size;
        }
        sizes.iter().sum()
    };
    eprintln!(
        "trace footprint: {footprint} bytes across touched objects \
         ({:.1}x capacity)",
        footprint as f64 / capacity as f64
    );

    let ttl = SimDuration::from_secs(86_400);
    let mut body = String::new();
    let mut w = ObjectWriter::begin(&mut body);
    w.field_str("benchmark", "eviction-policy-cache");
    w.field_u64("ops", ops as u64);
    w.field_u64("objects", objects as u64);
    w.field_raw("zipf_alpha", &format!("{alpha}"));
    w.field_u64("seed", seed);
    w.field_u64("capacity_bytes", capacity);
    w.field_u64("footprint_bytes", footprint);
    for policy in PolicyKind::ALL {
        // The same fixed policy seed the simulator would derive for a
        // single shared tier; any constant works, it only has to be stable.
        let mut cache: PolicyCache<u32> = PolicyCache::with_policy(capacity, policy, 0xBE7C);
        let clock = Stopwatch::start();
        let mut hits = 0u64;
        let mut inserts = 0u64;
        for access in &trace {
            if cache.get(access.object, access.time) {
                hits += 1;
            } else {
                inserts += 1;
                cache.insert(access.object, access.size, ttl, access.time, false);
            }
        }
        let elapsed_us = clock.elapsed_us().max(1);
        let ops_per_sec = (ops as u64).saturating_mul(1_000_000) / elapsed_us;
        let mut sub = String::new();
        let mut pw = ObjectWriter::begin(&mut sub);
        pw.field_u64("elapsed_us", elapsed_us);
        pw.field_u64("ops_per_sec", ops_per_sec);
        pw.field_u64("hits", hits);
        pw.field_u64("inserts", inserts);
        pw.field_raw("hit_rate", &format!("{:.4}", hits as f64 / ops as f64));
        pw.field_u64("evictions", cache.stats().evictions);
        pw.field_u64("resident_objects", cache.len() as u64);
        pw.end();
        w.field_raw(policy.label(), &sub);
        eprintln!(
            "  {:<8} {:>9} ops/s  hit rate {:.1}%  ({} evictions)",
            policy.label(),
            ops_per_sec,
            100.0 * hits as f64 / ops as f64,
            cache.stats().evictions
        );
    }
    match peak_rss_kb() {
        Some(kb) => w.field_u64("peak_rss_kb", kb),
        None => w.field_raw("peak_rss_kb", "null"),
    }
    w.end();

    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

/// Draws the shared access sequence: Zipf(`alpha`) object popularity over
/// a fixed universe, a per-object size from a skewed three-bucket mix
/// (many small JSON-ish bodies, some mid-size pages, a few large blobs),
/// and microsecond-spaced arrival times. SplitMix64 throughout — the
/// sequence depends only on the arguments.
fn zipf_trace(ops: usize, objects: usize, alpha: f64, seed: u64) -> Vec<Access> {
    let mut cum = Vec::with_capacity(objects);
    let mut total = 0.0f64;
    for i in 0..objects {
        total += 1.0 / ((i + 1) as f64).powf(alpha);
        cum.push(total);
    }
    for c in &mut cum {
        *c /= total;
    }
    // Object ids are shuffled so popularity rank is decoupled from id
    // order (S3-FIFO and TinyLFU hash ids; adjacency would be unrealistic).
    let mut ids: Vec<u32> = (0..objects as u32).collect();
    let mut state = seed ^ 0x5EED_CAC4;
    for i in (1..ids.len()).rev() {
        let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
        ids.swap(i, j);
    }
    let size_of = |id: u32| {
        let h = hash64(u64::from(id) ^ seed);
        match h % 100 {
            0..=69 => 500 + h % 3_500,     // ~70%: small JSON-ish
            70..=94 => 8_000 + h % 56_000, // ~25%: pages/scripts
            _ => 400_000 + h % 1_600_000,  // ~5%: large blobs
        }
    };
    (0..ops)
        .map(|i| {
            let u = to_f64(splitmix(&mut state));
            let rank = cum.partition_point(|&c| c < u).min(objects - 1);
            let object = ids[rank];
            Access {
                object,
                size: size_of(object),
                time: SimTime::from_micros(i as u64 * 50),
            }
        })
        .collect()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    hash64(*state)
}

fn hash64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn to_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

fn parse<T: std::str::FromStr>(raw: &str, what: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{what}: cannot parse {raw:?}");
        std::process::exit(2)
    })
}
