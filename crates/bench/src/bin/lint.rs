//! Emits `BENCH_lint.json`: full-workspace two-stage lint times at 1 and
//! 8 stage-1 threads, asserting each pass stays under the 5-second CI
//! budget the analyzer is designed to (see DESIGN.md §15).
//!
//! ```sh
//! cargo run --release -p jcdn-bench --bin lint
//! cargo run --release -p jcdn-bench --bin lint -- --out BENCH_lint.json
//! ```

use std::process::ExitCode;

use jcdn_lint::Config;
use jcdn_obs::clock::Stopwatch;
use jcdn_obs::json::ObjectWriter;
use jcdn_obs::manifest::peak_rss_kb;

const BUDGET_US: u64 = 5_000_000;

fn main() -> ExitCode {
    let mut out = String::from("BENCH_lint.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(cwd) => cwd,
        Err(e) => {
            eprintln!("cannot read cwd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = jcdn_lint::find_workspace_root(&cwd) else {
        eprintln!("no workspace root above {}", cwd.display());
        return ExitCode::FAILURE;
    };
    let mut cfg = Config::workspace_default();
    match std::fs::read_to_string(root.join("allowlist.toml")) {
        Ok(text) => match jcdn_lint::parse_allowlist(&text) {
            Ok(allow) => cfg.extend_allow(allow),
            Err(e) => {
                eprintln!("allowlist.toml: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("allowlist.toml: {e}");
            return ExitCode::FAILURE;
        }
    }

    let files = match jcdn_lint::workspace_files(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut body = String::new();
    let mut w = ObjectWriter::begin(&mut body);
    w.field_str("benchmark", "lint-two-stage-workspace");
    w.field_u64("files", files.len() as u64);
    w.field_u64("budget_us", BUDGET_US);

    let mut over_budget = false;
    for threads in [1usize, 8] {
        let clock = Stopwatch::start();
        let findings = match jcdn_lint::lint_workspace_threaded(&root, &cfg, threads) {
            Ok(findings) => findings,
            Err(e) => {
                eprintln!("lint at {threads} thread(s): {e}");
                return ExitCode::FAILURE;
            }
        };
        let elapsed_us = clock.elapsed_us().max(1);
        w.field_u64(&format!("threads{threads}_us"), elapsed_us);
        w.field_u64(&format!("threads{threads}_findings"), findings.len() as u64);
        eprintln!(
            "lint threads={threads}: {} file(s), {} finding(s), {elapsed_us} µs",
            files.len(),
            findings.len()
        );
        if elapsed_us >= BUDGET_US {
            eprintln!("lint threads={threads}: {elapsed_us} µs exceeds the {BUDGET_US} µs budget");
            over_budget = true;
        }
    }
    w.field_u64("peak_rss_kb", peak_rss_kb().unwrap_or(0));
    w.field_str("within_budget", if over_budget { "no" } else { "yes" });
    w.end();
    body.push('\n');

    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    if over_budget {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
