//! Emits `BENCH_baseline.json`: throughput and memory for the reference
//! sharded pipeline run (1M-record generate → simulate → shard-framed
//! codec round-trip → characterize).
//!
//! ```sh
//! cargo run --release -p jcdn-bench --bin baseline                # 1M records
//! cargo run --release -p jcdn-bench --bin baseline -- --scale 0.1 # quick look
//! cargo run --release -p jcdn-bench --bin baseline -- --out BENCH_baseline.json
//! ```
//!
//! The committed artifact is a *baseline*, not a gate: absolute numbers
//! move with hardware, so CI does not diff it. It exists to make
//! regressions visible in review ("records/sec halved in this PR") and to
//! anchor the perf section of run manifests to a known-good shape.

use std::process::ExitCode;

use jcdn_cdnsim::SimConfig;
use jcdn_core::characterize::TokenCategoryProvider;
use jcdn_core::dataset::simulate_workload_parallel;
use jcdn_core::pipeline::CharacterizationReport;
use jcdn_obs::clock::Stopwatch;
use jcdn_obs::json::ObjectWriter;
use jcdn_obs::manifest::peak_rss_kb;
use jcdn_trace::ShardedTrace;
use jcdn_workload::{build_parallel, WorkloadConfig};

fn main() -> ExitCode {
    // 500k-event short preset at 2x ≈ 1M records after retries.
    let mut scale = 2.0f64;
    let mut seed = 2019u64;
    let mut shards = 8usize;
    let mut threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let mut out = String::from("BENCH_baseline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => scale = parse(&value("--scale"), "--scale"),
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--shards" => shards = parse(&value("--shards"), "--shards"),
            "--threads" => threads = parse(&value("--threads"), "--threads"),
            "--out" => out = value("--out"),
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let config = WorkloadConfig::short_term(seed).scaled(scale);
    eprintln!(
        "baseline: ~{} events, {} shards, {} threads",
        config.target_events, shards, threads
    );

    let generate = Stopwatch::start();
    let workload = build_parallel(&config, threads);
    let sim = SimConfig::default();
    let data = simulate_workload_parallel(workload, &sim, threads);
    let generate_us = generate.elapsed_us().max(1);
    let records = data.trace.len() as u64;

    // Partitioning (a canonical sort of the full trace) is timed apart
    // from the codec: earlier baselines folded it into
    // `codec_roundtrip_us`, which hid ~1s of sort time inside the codec
    // number on this workload.
    let shard_clock = Stopwatch::start();
    let sharded = ShardedTrace::from_trace(data.trace, shards);
    let shard_us = shard_clock.elapsed_us().max(1);

    let codec = Stopwatch::start();
    let encoded = match jcdn_trace::codec::encode_sharded_parallel(&sharded, threads) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("encode failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let encoded_bytes = encoded.len() as u64;
    let decoded = match jcdn_trace::codec::decode_sharded_parallel(&encoded, threads) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("own encoding failed to decode: {e}");
            return ExitCode::FAILURE;
        }
    };
    let codec_us = codec.elapsed_us().max(1);

    let characterize = Stopwatch::start();
    let report = CharacterizationReport::compute_sharded(&decoded, &TokenCategoryProvider, threads);
    let characterize_us = characterize.elapsed_us().max(1);

    let per_sec = |us: u64| records.saturating_mul(1_000_000) / us;
    let mut body = String::new();
    let mut w = ObjectWriter::begin(&mut body);
    w.field_str("benchmark", "sharded-pipeline-baseline");
    w.field_str("preset", "short");
    w.field_raw("scale", &format!("{scale}"));
    w.field_u64("seed", seed);
    w.field_u64("shards", shards as u64);
    w.field_u64("threads", threads as u64);
    w.field_u64("records", records);
    w.field_u64("encoded_bytes", encoded_bytes);
    w.field_u64("generate_us", generate_us);
    w.field_u64("shard_us", shard_us);
    w.field_u64("codec_roundtrip_us", codec_us);
    w.field_u64("characterize_us", characterize_us);
    w.field_u64("generate_records_per_sec", per_sec(generate_us));
    w.field_u64("characterize_records_per_sec", per_sec(characterize_us));
    match peak_rss_kb() {
        Some(kb) => w.field_u64("peak_rss_kb", kb),
        None => w.field_raw("peak_rss_kb", "null"),
    }
    w.end();

    if let Err(e) = std::fs::write(&out, &body) {
        eprintln!("{out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {out}: {records} records, generate {}/s, characterize {}/s, \
         json:html ratio {}",
        per_sec(generate_us),
        per_sec(characterize_us),
        report
            .json_html_ratio()
            .map(|r| format!("{r:.2}x"))
            .unwrap_or_else(|| "n/a".into())
    );
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(raw: &str, what: &str) -> T {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{what}: cannot parse {raw:?}");
        std::process::exit(2)
    })
}
