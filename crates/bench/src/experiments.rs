//! The per-table/figure reproduction experiments.
//!
//! Every function returns an [`ExperimentResult`]: the rendered text that
//! the `repro` binary prints, plus named *shape checks* — the qualitative
//! properties that must hold for the reproduction to count (who wins, by
//! roughly what factor, where the spikes fall). Absolute numbers differ
//! from the paper (our substrate is a simulator; see DESIGN.md §2).

use jcdn_cdnsim::{
    run_default, FaultPlan, OriginOutage, ResilienceConfig, SimConfig, SimDuration, Window,
};
use jcdn_core::characterize::{
    json_html_ratio, CacheabilityHeatmap, RequestTypeBreakdown, ResponseTypeBreakdown,
    TokenCategoryProvider, TrafficSourceBreakdown,
};
use jcdn_core::periodicity::{run_study, PeriodicityReport, PeriodicityStudyConfig};
use jcdn_core::prediction::{run_study as run_prediction, PredictionStudyConfig};
use jcdn_core::report::{paper_vs_measured, pct, TextTable};
use jcdn_prefetch::anomaly::SequenceAnomalyDetector;
use jcdn_prefetch::eval::compare_policies;
use jcdn_prefetch::{DeprioritizePolicy, ManifestPrefetcher, NgramPrefetcher};
use jcdn_signal::periodicity::PeriodicityConfig;
use jcdn_ua::DeviceType;
use jcdn_workload::trend::TrendModel;
use jcdn_workload::IndustryCategory;

use crate::Context;

/// A rendered experiment plus its shape checks.
pub struct ExperimentResult {
    /// Experiment id (e.g. `fig5`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The rendered table/figure text.
    pub rendered: String,
    /// Named pass/fail shape checks.
    pub checks: Vec<(String, bool)>,
}

impl ExperimentResult {
    /// True when every shape check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }
}

/// E1 / Figure 1: the JSON:HTML request ratio, 2016 → 2019.
pub fn fig1() -> ExperimentResult {
    let series = TrendModel::default().generate();
    let mut rendered = String::from("month      ratio\n");
    for point in series.iter().step_by(3) {
        let bar = "#".repeat((point.ratio() * 8.0).round() as usize);
        rendered.push_str(&format!(
            "{}  {:>5.2}x {}\n",
            point.label(),
            point.ratio(),
            bar
        ));
    }
    let first = series.first().expect("non-empty").ratio();
    let last = series.last().expect("non-empty").ratio();
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "final JSON:HTML ratio",
        ">4x",
        &format!("{last:.2}x"),
    ));
    ExperimentResult {
        id: "fig1",
        title: "Figure 1 — ratio of JSON to HTML requests on the CDN",
        rendered,
        checks: vec![
            (
                "starts near parity (0.7..1.1)".into(),
                (0.7..1.1).contains(&first),
            ),
            ("ends above 4x".into(), last > 4.0),
            (
                "growth is monotone by quarters".into(),
                series.windows(9).all(|w| w[8].ratio() > w[0].ratio() * 0.9),
            ),
        ],
    }
}

/// E2 / Table 2: the dataset summaries.
pub fn table2(ctx: &Context) -> ExperimentResult {
    let short = ctx.short_term.summary();
    let long = ctx.long_term.summary();
    let mut table = TextTable::new(&["Dataset", "# of Logs", "Duration", "# of Domains"]);
    for s in [&short, &long] {
        table.row(&[
            s.name.clone(),
            s.logs.to_string(),
            s.duration.to_string(),
            s.domains.to_string(),
        ]);
    }
    let mut rendered = table.render();
    rendered.push_str(&format!(
        "\n(volume scaled {:.2}x relative to the paper's 25M/10M logs; see EXPERIMENTS.md)\n",
        ctx.scale
    ));
    ExperimentResult {
        id: "table2",
        title: "Table 2 — summary of the datasets",
        rendered,
        checks: vec![
            (
                "short-term spans ~10 min".into(),
                (550..=650).contains(&short.duration.as_secs()),
            ),
            (
                "long-term spans ~24 h".into(),
                (82_000..=90_000).contains(&long.duration.as_secs()),
            ),
            (
                "short-term covers more domains".into(),
                short.domains > long.domains,
            ),
            (
                "long-term has ~170 domains".into(),
                (120..=175).contains(&long.domains),
            ),
        ],
    }
}

/// E3 / Figure 3: categorization by device type.
pub fn fig3(ctx: &Context) -> ExperimentResult {
    let b = TrafficSourceBreakdown::compute(&ctx.short_term.trace);
    let mut table = TextTable::new(&[
        "Device",
        "Requests (paper)",
        "Requests",
        "UA strings (paper)",
        "UA strings",
    ]);
    let paper_requests = [
        ("Mobile", "55%"),
        ("Desktop", "9%"),
        ("Embedded", "12%"),
        ("Unknown", "24%"),
    ];
    let paper_uas = [
        ("Mobile", "73%"),
        ("Desktop", "3%"),
        ("Embedded", "17%"),
        ("Unknown", "7%"),
    ];
    for (device, (_, pr)) in DeviceType::ALL.iter().zip(paper_requests.iter()) {
        let pu = paper_uas
            .iter()
            .find(|(d, _)| *d == device.to_string())
            .map(|(_, v)| *v)
            .unwrap_or("-");
        table.row(&[
            device.to_string(),
            pr.to_string(),
            pct(b.request_share(*device)),
            pu.to_string(),
            pct(b.ua_share(*device)),
        ]);
    }
    let mut rendered = table.render();
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "non-browser traffic",
        "88%",
        &pct(b.non_browser_share()),
    ));
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "mobile browser share of all requests",
        "2.5%",
        &pct(b.mobile_browser_requests as f64 / b.total.max(1) as f64),
    ));
    let mobile = b.request_share(DeviceType::Mobile);
    let embedded = b.request_share(DeviceType::Embedded);
    let unknown = b.request_share(DeviceType::Unknown);
    ExperimentResult {
        id: "fig3",
        title: "Figure 3 — categorization by device type",
        rendered,
        checks: vec![
            ("mobile majority (>= 45%)".into(), mobile >= 0.45),
            (
                "embedded ~12% (7..20%)".into(),
                (0.07..0.20).contains(&embedded),
            ),
            (
                "unknown ~24% (15..33%)".into(),
                (0.15..0.33).contains(&unknown),
            ),
            ("non-browser >= 80%".into(), b.non_browser_share() >= 0.80),
            (
                "no browsers on embedded devices".into(),
                b.embedded_browser_requests == 0,
            ),
        ],
    }
}

/// E4 / §4 request types.
pub fn sec4_requests(ctx: &Context) -> ExperimentResult {
    let b = RequestTypeBreakdown::compute(&ctx.short_term.trace);
    let mut rendered = String::new();
    rendered.push_str(&paper_vs_measured(
        "GET share of JSON requests",
        "84%",
        &pct(b.download_share()),
    ));
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "POST share of the remainder",
        "96%",
        &pct(b.upload_share_of_rest()),
    ));
    ExperimentResult {
        id: "sec4_requests",
        title: "§4 — request types (uploads vs downloads)",
        rendered,
        checks: vec![
            (
                "GET dominates (78..90%)".into(),
                (0.78..0.90).contains(&b.download_share()),
            ),
            (
                "POST dominates the rest (>= 90%)".into(),
                b.upload_share_of_rest() >= 0.90,
            ),
        ],
    }
}

/// E5 / §4 response types: cacheability and sizes.
pub fn sec4_responses(ctx: &Context) -> ExperimentResult {
    let mut b = ResponseTypeBreakdown::compute(&ctx.short_term.trace);
    let uncacheable = b.uncacheable_share();
    let median_gap = b.json_smaller_than_html_at(0.5).unwrap_or(0.0);
    let p75_gap = b.json_smaller_than_html_at(0.75).unwrap_or(0.0);

    // Size trend over the multi-year window (the trace covers 10 minutes;
    // the trend model supplies the 2016→2019 axis).
    let series = TrendModel::default().generate();
    let size_drop = 1.0
        - series.last().expect("non-empty").json_mean_size
            / series.first().expect("non-empty").json_mean_size;

    let mut rendered = String::new();
    rendered.push_str(&paper_vs_measured(
        "uncacheable JSON traffic",
        "55%",
        &pct(uncacheable),
    ));
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "JSON smaller than HTML at median",
        "24%",
        &pct(median_gap),
    ));
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "JSON smaller than HTML at p75",
        "87%",
        &pct(p75_gap),
    ));
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "mean JSON size decrease since 2016",
        "28%",
        &pct(size_drop),
    ));
    if let Some(ratio) = json_html_ratio(&ctx.short_term.trace) {
        rendered.push('\n');
        rendered.push_str(&format!(
            "(JSON:HTML ratio inside this JSON-centric capture: {ratio:.1}x)"
        ));
    }
    ExperimentResult {
        id: "sec4_responses",
        title: "§4 — response types (cacheability, sizes)",
        rendered,
        checks: vec![
            (
                "majority uncacheable (45..70%)".into(),
                (0.45..0.70).contains(&uncacheable),
            ),
            (
                "JSON smaller at median (10..45%)".into(),
                (0.10..0.45).contains(&median_gap),
            ),
            ("JSON much smaller at p75 (> 60%)".into(), p75_gap > 0.60),
            ("p75 gap exceeds median gap".into(), p75_gap > median_gap),
            (
                "size decrease ~28% (20..36%)".into(),
                (0.20..0.36).contains(&size_drop),
            ),
        ],
    }
}

/// E6 / Figure 4: domain cacheability by industry category.
pub fn fig4(ctx: &Context) -> ExperimentResult {
    let h = CacheabilityHeatmap::compute(&ctx.short_term.trace, &TokenCategoryProvider, 10);
    let mut table = TextTable::new(&["Industry", "0-10%", "10-50%", "50-90%", "90-100%", "mean"]);
    for category in IndustryCategory::ALL {
        let Some(row) = h.rows.get(&category) else {
            continue;
        };
        let total: u64 = row.iter().sum();
        let group = |range: std::ops::Range<usize>| -> String {
            let count: u64 = row[range].iter().sum();
            pct(count as f64 / total.max(1) as f64)
        };
        table.row(&[
            category.label().to_string(),
            group(0..1),
            group(1..5),
            group(5..9),
            group(9..10),
            h.row_mean(category).map(pct).unwrap_or_default(),
        ]);
    }
    let mut rendered = table.render();
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "domains never cacheable",
        "~50%",
        &pct(h.never_cacheable_share()),
    ));
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "domains always cacheable",
        "~30%",
        &pct(h.always_cacheable_share()),
    ));

    let mean = |c: IndustryCategory| h.row_mean(c).unwrap_or(0.5);
    let content_mean = (mean(IndustryCategory::NewsMedia)
        + mean(IndustryCategory::Sports)
        + mean(IndustryCategory::Entertainment))
        / 3.0;
    let personalized_mean = (mean(IndustryCategory::FinancialServices)
        + mean(IndustryCategory::Streaming)
        + mean(IndustryCategory::Gaming))
        / 3.0;
    ExperimentResult {
        id: "fig4",
        title: "Figure 4 — heatmap of domain cacheability by category",
        rendered,
        checks: vec![
            (
                "~50% never cacheable (38..62%)".into(),
                (0.38..0.62).contains(&h.never_cacheable_share()),
            ),
            (
                "~30% always cacheable (18..42%)".into(),
                (0.18..0.42).contains(&h.always_cacheable_share()),
            ),
            (
                "News/Sports/Entertainment mostly cacheable".into(),
                content_mean > 0.6,
            ),
            (
                "Financial/Streaming/Gaming mostly uncacheable".into(),
                personalized_mean < 0.3,
            ),
            (
                "content vs personalized gap is wide".into(),
                content_mean - personalized_mean > 0.3,
            ),
        ],
    }
}

/// Shared §5.1 study over the long-term dataset.
pub fn periodicity(ctx: &Context, permutations: usize) -> PeriodicityReport {
    let config = PeriodicityStudyConfig {
        detector: PeriodicityConfig {
            permutations,
            parallel: true,
            max_bins: 1 << 15,
            ..PeriodicityConfig::default()
        },
        ..PeriodicityStudyConfig::default()
    };
    run_study(&ctx.long_term.trace, &config)
}

/// E7 / Figure 5: histogram of JSON object periods.
pub fn fig5(ctx: &Context, report: &PeriodicityReport) -> ExperimentResult {
    let mut rendered = report.period_histogram().render(40);
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "periodic share of JSON requests",
        "6.3%",
        &pct(report.periodic_share()),
    ));
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "periodic traffic uncacheable",
        "56.2%",
        &pct(report.periodic_uncacheable_share()),
    ));
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "periodic traffic uploads",
        "78%",
        &pct(report.periodic_upload_share()),
    ));

    // The planted spikes: every detected object period should land near one.
    let spikes = [30.0, 60.0, 120.0, 180.0, 600.0, 900.0, 1800.0];
    let on_spike = report
        .object_periods
        .values()
        .filter(|&&p| spikes.iter().any(|s| (p - s).abs() <= s * 0.12))
        .count();
    let spike_share = on_spike as f64 / report.object_periods.len().max(1) as f64;
    rendered.push('\n');
    rendered.push_str(&format!(
        "detected objects: {} ({} on even-interval spikes)",
        report.object_periods.len(),
        pct(spike_share)
    ));
    let truth = &ctx.long_term.workload.truth;
    ExperimentResult {
        id: "fig5",
        title: "Figure 5 — histogram of JSON object periods",
        rendered,
        checks: vec![
            (
                "some periodic objects detected".into(),
                !report.object_periods.is_empty(),
            ),
            (
                "periodic share ~6.3% (3..11%)".into(),
                (0.03..0.11).contains(&report.periodic_share()),
            ),
            (
                "detected periods sit on even intervals (>= 80%)".into(),
                spike_share >= 0.80,
            ),
            (
                "uploads dominate periodic traffic (>= 60%)".into(),
                report.periodic_upload_share() >= 0.60,
            ),
            (
                "majority of periodic traffic uncacheable (>= 45%)".into(),
                report.periodic_uncacheable_share() >= 0.45,
            ),
            (
                "ground truth planted periodic objects".into(),
                !truth.periodic_objects.is_empty(),
            ),
        ],
    }
}

/// E8 / Figure 6: CDF of the percent of periodic clients across objects.
pub fn fig6(report: &PeriodicityReport) -> ExperimentResult {
    let mut rendered = report.client_fraction_cdf().render(10, 40);
    rendered.push('\n');
    rendered.push_str(&paper_vs_measured(
        "objects with >50% periodic clients",
        "20%",
        &pct(report.majority_periodic_object_share()),
    ));
    let majority = report.majority_periodic_object_share();
    ExperimentResult {
        id: "fig6",
        title: "Figure 6 — CDF of percent of periodic clients across objects",
        rendered,
        checks: vec![
            (
                "CDF is non-degenerate".into(),
                report.periodic_client_fraction.len() >= 5,
            ),
            (
                "a minority of objects has periodic majority (5..45%)".into(),
                (0.05..0.45).contains(&majority),
            ),
        ],
    }
}

/// E9 / Table 3: n-gram accuracy for clustered vs actual URLs.
pub fn table3(ctx: &Context) -> ExperimentResult {
    let report = run_prediction(&ctx.long_term.trace, &PredictionStudyConfig::default());
    let paper = [(1, 0.65, 0.45), (5, 0.84, 0.64), (10, 0.87, 0.69)];
    let mut table = TextTable::new(&[
        "K",
        "Clustered (paper)",
        "Clustered",
        "Actual (paper)",
        "Actual",
        "Popularity baseline",
    ]);
    for (cell, (k, pc, pa)) in report.rows.iter().zip(paper.iter()) {
        assert_eq!(cell.k, *k);
        table.row(&[
            k.to_string(),
            format!("{pc:.2}"),
            format!("{:.2}", cell.clustered),
            format!("{pa:.2}"),
            format!("{:.2}", cell.actual),
            format!("{:.2}", cell.popularity_baseline),
        ]);
    }
    let mut rendered = table.render();
    rendered.push_str(&format!(
        "\n({} test transitions over {} held-out clients, N = {})\n",
        report.test_transitions, report.test_clients, report.history
    ));
    let k1 = &report.rows[0];
    let k10 = &report.rows[2];
    ExperimentResult {
        id: "table3",
        title: "Table 3 — n-gram model accuracy (clustered vs actual URLs)",
        rendered,
        checks: vec![
            (
                "clustered beats actual at every K".into(),
                report.rows.iter().all(|r| r.clustered >= r.actual),
            ),
            (
                "accuracy grows with K".into(),
                k10.actual >= k1.actual && k10.clustered >= k1.clustered,
            ),
            (
                "actual K=10 lands near 0.7 (0.5..0.9)".into(),
                (0.5..0.9).contains(&k10.actual),
            ),
            (
                "clustered K=10 lands near 0.87 (0.7..0.97)".into(),
                (0.7..0.97).contains(&k10.clustered),
            ),
            (
                "clustered K=1 gap is substantial (>= 0.08)".into(),
                k1.clustered - k1.actual >= 0.08,
            ),
            (
                "n-gram beats the popularity baseline at every K".into(),
                report.rows.iter().all(|r| r.actual > r.popularity_baseline),
            ),
        ],
    }
}

/// X1: prefetching uplift (n-gram and manifest policies vs baseline).
pub fn ext_prefetch(ctx: &Context) -> ExperimentResult {
    let workload = &ctx.short_term.workload;
    let sim = SimConfig::default();

    let mut ngram = NgramPrefetcher::train_from_trace(&ctx.short_term.trace, 1, 5);
    ngram.bind_universe(&workload.objects);
    let ngram_cmp = compare_policies(workload, &sim, &mut ngram);

    let mut manifest = ManifestPrefetcher::new();
    manifest.bind_universe(&workload.objects);
    let manifest_cmp = compare_policies(workload, &sim, &mut manifest);

    let base = ngram_cmp.baseline.cacheable_hit_ratio().unwrap_or(0.0);
    let mut table = TextTable::new(&["Policy", "Hit ratio", "Uplift", "Prefetches", "Precision"]);
    table.row(&[
        "baseline".into(),
        pct(base),
        "-".into(),
        "0".into(),
        "-".into(),
    ]);
    for (name, cmp) in [
        ("ngram top-5", &ngram_cmp),
        ("manifest push", &manifest_cmp),
    ] {
        table.row(&[
            name.into(),
            pct(cmp.with_policy.cacheable_hit_ratio().unwrap_or(0.0)),
            format!("{:+.1}pp", cmp.hit_ratio_uplift().unwrap_or(0.0) * 100.0),
            cmp.with_policy.prefetch_issued.to_string(),
            cmp.prefetch_precision()
                .map(pct)
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    ExperimentResult {
        id: "ext_prefetch",
        title: "Extension — prefetching lifts the cache hit ratio (§5.2 implication)",
        rendered: table.render(),
        checks: vec![
            (
                "ngram prefetch lifts hit ratio".into(),
                ngram_cmp.hit_ratio_uplift().unwrap_or(-1.0) > 0.0,
            ),
            (
                "manifest prefetch does not hurt".into(),
                manifest_cmp.hit_ratio_uplift().unwrap_or(-1.0) >= 0.0,
            ),
            (
                "prefetched entries get used".into(),
                ngram_cmp.with_policy.prefetch_useful > 0,
            ),
        ],
    }
}

/// X2: deprioritizing machine-to-machine traffic (§5.1/§7 implication).
pub fn ext_depri(ctx: &Context) -> ExperimentResult {
    let workload = &ctx.short_term.workload;
    // One edge, with the per-request service cost sized to ~90% utilization
    // for this workload's arrival rate: queues form and drain, so priority
    // matters without driving the system into divergence.
    let duration = workload.config.duration.as_secs_f64();
    let arrivals = workload.events.len().max(1) as f64;
    let service_us = (0.90 * duration / arrivals * 1e6) as u64;
    let sim = SimConfig {
        edges: 1,
        service_base: SimDuration::from_micros(service_us.max(1)),
        service_per_kb: SimDuration::ZERO,
        ..SimConfig::default()
    };
    let mut policy = DeprioritizePolicy::from_ground_truth(workload);
    let cmp = compare_policies(workload, &sim, &mut policy);

    let base = cmp.baseline.latency_normal.mean().unwrap_or(0.0) * 1e3;
    let human = cmp.with_policy.latency_normal.mean().unwrap_or(0.0) * 1e3;
    let machine = cmp.with_policy.latency_depri.mean().unwrap_or(0.0) * 1e3;
    let rendered = format!(
        "mean latency, undifferentiated baseline : {base:>8.2} ms\n\
         mean latency, human traffic (depri on)  : {human:>8.2} ms\n\
         mean latency, machine traffic (depri on): {machine:>8.2} ms\n\
         deprioritized pairs: {}",
        policy.pair_count()
    );
    ExperimentResult {
        id: "ext_depri",
        title: "Extension — deprioritizing machine-to-machine traffic",
        rendered,
        checks: vec![
            (
                "human latency does not regress".into(),
                human <= base * 1.02,
            ),
            ("machine traffic absorbs the wait".into(), machine > human),
        ],
    }
}

/// X-outage: a ten-minute origin outage on the busiest domain, with the
/// client/edge resilience machinery on vs off. The countermeasures must
/// strictly lower the end-user error rate.
pub fn ext_outage(ctx: &Context) -> ExperimentResult {
    let workload = &ctx.short_term.workload;
    let mut counts = vec![0u64; workload.domains.len()];
    for event in &workload.events {
        counts[workload.objects[event.object as usize].domain as usize] += 1;
    }
    let busiest = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    // Two minutes of warm-up before the outage so the edge holds entries
    // that can expire into the stale-if-error grace window.
    let config = |resilient: bool| SimConfig {
        fault: FaultPlan {
            outages: vec![OriginOutage {
                domain: busiest,
                window: Window::from_secs(120, 720),
            }],
            ..FaultPlan::default()
        },
        resilience: if resilient {
            ResilienceConfig::default()
        } else {
            ResilienceConfig::disabled()
        },
        ..SimConfig::default()
    };
    let with = run_default(workload, &config(true));
    let without = run_default(workload, &config(false));

    let rate = |stats: &jcdn_cdnsim::SimStats| stats.end_user_error_rate().unwrap_or(0.0);
    let mut table = TextTable::new(&[
        "resilience",
        "end-user errors",
        "retries",
        "stale serves",
        "neg-cache",
    ]);
    for (label, out) in [("on", &with), ("off", &without)] {
        table.row(&[
            format!("{label} ({})", pct(rate(&out.stats))),
            out.stats.end_user_failures.to_string(),
            out.stats.retries_issued.to_string(),
            out.stats.stale_serves.to_string(),
            out.stats.neg_cache_serves.to_string(),
        ]);
    }
    let rendered = format!(
        "10-minute outage on domain {busiest} ({} of {} events)\n\n{}",
        pct(counts[busiest as usize] as f64 / workload.events.len().max(1) as f64),
        workload.events.len(),
        table.render()
    );
    ExperimentResult {
        id: "ext_outage",
        title: "Extension — origin outage with client/edge resilience",
        rendered,
        checks: vec![
            (
                "the outage produces failures".into(),
                without.stats.end_user_failures > 0,
            ),
            (
                "resilience strictly lowers the end-user error rate".into(),
                rate(&with.stats) < rate(&without.stats),
            ),
            ("serve-stale fires".into(), with.stats.stale_serves > 0),
            (
                "retries amplify attempts".into(),
                with.stats.retries_issued > 0 && without.stats.retries_issued == 0,
            ),
        ],
    }
}

/// X3: ablation over the permutation count x (§5.1: "values of x greater
/// than 100 do not produce significantly different results").
pub fn abl_permutations(ctx: &Context) -> ExperimentResult {
    let mut table = TextTable::new(&["x", "periodic objects", "periodic share"]);
    let mut detected = Vec::new();
    for x in [10usize, 50, 100, 200] {
        let report = periodicity(ctx, x);
        detected.push(report.object_periods.len());
        table.row(&[
            x.to_string(),
            report.object_periods.len().to_string(),
            pct(report.periodic_share()),
        ]);
    }
    let at_100 = detected[2] as f64;
    let at_200 = detected[3] as f64;
    let stable = at_100 > 0.0 && (at_200 - at_100).abs() / at_100 <= 0.15;
    ExperimentResult {
        id: "abl_permutations",
        title: "Ablation — permutation count x in the periodicity detector",
        rendered: table.render(),
        checks: vec![
            ("x=100 and x=200 agree within 15%".into(), stable),
            (
                "detection works at every x".into(),
                detected.iter().all(|&d| d > 0),
            ),
        ],
    }
}

/// X4: ablation over the n-gram history length N (§5.2: "using larger N
/// like N=5 only marginally increases accuracy by up to 5%").
pub fn abl_history(ctx: &Context) -> ExperimentResult {
    let mut table = TextTable::new(&["N", "Actual K=10", "Clustered K=10"]);
    let mut at_k10 = Vec::new();
    for n in [1usize, 2, 3, 5] {
        let report = run_prediction(
            &ctx.long_term.trace,
            &PredictionStudyConfig {
                history: n,
                ..PredictionStudyConfig::default()
            },
        );
        let row = &report.rows[2];
        at_k10.push((row.actual, row.clustered));
        table.row(&[
            n.to_string(),
            format!("{:.3}", row.actual),
            format!("{:.3}", row.clustered),
        ]);
    }
    let (a1, c1) = at_k10[0];
    let (a5, c5) = at_k10[3];
    ExperimentResult {
        id: "abl_history",
        title: "Ablation — n-gram history length N",
        rendered: table.render(),
        checks: vec![
            (
                "N=5 within ±7pp of N=1 (actual)".into(),
                (a5 - a1).abs() <= 0.07,
            ),
            (
                "N=5 within ±7pp of N=1 (clustered)".into(),
                (c5 - c1).abs() <= 0.07,
            ),
        ],
    }
}

/// X6: ablation — a parent cache tier between edges and origin.
pub fn abl_parent_tier(ctx: &Context) -> ExperimentResult {
    use jcdn_cdnsim::run_default;
    let workload = &ctx.short_term.workload;
    let flat = run_default(workload, &SimConfig::default()).stats;
    let tiered = run_default(
        workload,
        &SimConfig {
            parent_cache: Some(1 << 30),
            ..SimConfig::default()
        },
    )
    .stats;
    let mut table = TextTable::new(&[
        "Topology",
        "Edge hit ratio",
        "Origin fetches",
        "Parent hits",
    ]);
    table.row(&[
        "edges only".into(),
        pct(flat.cacheable_hit_ratio().unwrap_or(0.0)),
        flat.origin_fetches.to_string(),
        "-".into(),
    ]);
    table.row(&[
        "edges + parent".into(),
        pct(tiered.cacheable_hit_ratio().unwrap_or(0.0)),
        tiered.origin_fetches.to_string(),
        tiered.parent_hits().to_string(),
    ]);
    let offload = 1.0 - tiered.origin_fetches as f64 / flat.origin_fetches.max(1) as f64;
    let mut rendered = table.render();
    rendered.push_str(&format!(
        "
origin offload from the parent tier: {}",
        pct(offload)
    ));
    ExperimentResult {
        id: "abl_parent",
        title: "Ablation — parent cache tier between edge and origin",
        rendered,
        checks: vec![
            (
                "parent tier absorbs cross-edge misses".into(),
                tiered.parent_hits() > 0,
            ),
            (
                "origin load drops".into(),
                tiered.origin_fetches < flat.origin_fetches,
            ),
            (
                "edge-level behaviour unchanged".into(),
                flat.hits == tiered.hits,
            ),
        ],
    }
}

/// X8: ablation — edge cache capacity sweep.
pub fn abl_cache(ctx: &Context) -> ExperimentResult {
    use jcdn_cdnsim::run_default;
    let workload = &ctx.short_term.workload;
    let mut table = TextTable::new(&["Edge cache", "Hit ratio", "Evict-limited?"]);
    let mut ratios = Vec::new();
    for (label, capacity) in [
        ("256 KiB", 256u64 << 10),
        ("4 MiB", 4 << 20),
        ("256 MiB", 256 << 20),
    ] {
        let stats = run_default(
            workload,
            &SimConfig {
                cache_capacity: capacity,
                ..SimConfig::default()
            },
        )
        .stats;
        let ratio = stats.cacheable_hit_ratio().unwrap_or(0.0);
        ratios.push(ratio);
        table.row(&[
            label.into(),
            pct(ratio),
            if capacity <= 4 << 20 {
                "yes"
            } else {
                "ttl-limited"
            }
            .into(),
        ]);
    }
    ExperimentResult {
        id: "abl_cache",
        title: "Ablation — edge cache capacity",
        rendered: table.render(),
        checks: vec![
            (
                "hit ratio is monotone in capacity".into(),
                ratios.windows(2).all(|w| w[1] >= w[0] - 1e-9),
            ),
            ("a starved cache hurts".into(), ratios[0] < ratios[2]),
        ],
    }
}

/// X7: lead-time analysis (interarrival-aware prediction — §5.2's stated
/// future work).
pub fn ext_leadtime(ctx: &Context) -> ExperimentResult {
    use jcdn_prefetch::lead_time::{analyze, LeadTimeConfig};
    let mut report = analyze(&ctx.long_term.trace, &LeadTimeConfig::default());
    let median = report.median_predicted();
    let lead_1s = report.predicted_with_lead_of(1.0);
    let lead_origin = report.predicted_with_lead_of(0.2); // a miss RTT
    let rendered = format!(
        "predicted transitions : {}\n\
         missed transitions    : {}\n\
         median lead time      : {}\n\
         lead >= 200ms (one origin fetch) : {}\n\
         lead >= 1s                       : {}",
        report.predicted_gaps.count(),
        report.missed_gaps.count(),
        median.map(|m| format!("{m:.1}s")).unwrap_or_default(),
        lead_origin.map(pct).unwrap_or_default(),
        lead_1s.map(pct).unwrap_or_default(),
    );
    ExperimentResult {
        id: "ext_leadtime",
        title: "Extension — prefetch lead times (interarrival-aware prediction)",
        rendered,
        checks: vec![
            (
                "predicted transitions exist".into(),
                report.predicted_gaps.count() > 1000,
            ),
            (
                "most predicted transitions leave time for an origin fetch".into(),
                lead_origin.unwrap_or(0.0) > 0.6,
            ),
        ],
    }
}

/// X5: anomaly detection from the learned models.
pub fn ext_anomaly(ctx: &Context) -> ExperimentResult {
    use jcdn_trace::{
        CacheStatus, ClientId, LogRecord, Method, MimeType, RecordFlags, SimTime, Trace,
    };

    let detector = SequenceAnomalyDetector::train(&ctx.short_term.trace, 1, 1e-4);

    // False-positive rate on clean (training) traffic.
    let clean_flags = detector.scan(&ctx.short_term.trace).len();
    let fp_rate = clean_flags as f64 / ctx.short_term.trace.len().max(1) as f64;

    // Injected scanner session: manifest → paths never seen in training.
    let manifest_url = ctx
        .short_term
        .workload
        .objects
        .iter()
        .find(|o| o.body.is_some())
        .map(|o| o.url.clone())
        .expect("manifests exist");
    let mut attack = Trace::new();
    let push = |trace: &mut Trace, t: u64, url: &str| {
        let url = trace.intern_url(url);
        trace.push(LogRecord {
            time: SimTime::from_secs(t),
            client: ClientId(0xA77AC),
            ua: None,
            url,
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 64,
            cache: CacheStatus::NotCacheable,
            retries: 0,
            flags: RecordFlags::NONE,
        });
    };
    push(&mut attack, 0, &manifest_url);
    let probes = [
        "https://news-0.example/wp-admin/setup.php",
        "https://news-0.example/.env",
        "https://news-0.example/backup.sql",
    ];
    for (i, probe) in probes.iter().enumerate() {
        push(&mut attack, 2 + i as u64, probe);
    }
    let attack_flags = detector.scan(&attack).len();

    let rendered = format!(
        "false-positive rate on clean traffic : {}\n\
         injected probe requests flagged      : {attack_flags}/{}",
        pct(fp_rate),
        probes.len()
    );
    ExperimentResult {
        id: "ext_anomaly",
        title: "Extension — anomaly detection from sequence models",
        rendered,
        checks: vec![
            (
                "all injected probes flagged".into(),
                attack_flags == probes.len(),
            ),
            (
                "clean-traffic false positives below 8%".into(),
                fp_rate < 0.08,
            ),
        ],
    }
}

/// The traffic mixes driven through the two-layer hierarchy by
/// [`ext_traffic_mix`]: request shares for (JSON, HTML, video).
const TRAFFIC_MIXES: &[(&str, [f64; 3])] = &[
    ("json-heavy", [0.70, 0.20, 0.10]),
    ("balanced", [0.40, 0.30, 0.30]),
    ("video-heavy", [0.15, 0.15, 0.70]),
];

/// Builds a synthetic workload with a controlled JSON/HTML/video request
/// mix. The generator's config deliberately has no mime-mix knob (it
/// calibrates to the paper's population), so the universe is constructed
/// directly: a fixed catalogue per class — many small JSON objects, fewer
/// medium HTML pages, a few large video segments, each Zipf-popular
/// within its class — and an event stream whose class draw follows
/// `shares`. Everything derives from `seed`, so reruns are byte-stable.
fn mix_workload(seed: u64, label: &str, shares: [f64; 3]) -> jcdn_workload::Workload {
    use jcdn_trace::{Method, MimeType, SimTime};
    use jcdn_workload::{
        CachePolicy, ClientInfo, DomainInfo, GroundTruth, ObjectInfo, RequestEvent, Workload,
        WorkloadConfig,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const CLASSES: &[(MimeType, usize, f64)] = &[
        (MimeType::Json, 3000, 2_000.0),
        (MimeType::Html, 1500, 16_000.0),
        (MimeType::Video, 300, 1_000_000.0),
    ];
    const EVENTS: usize = 30_000;
    const CLIENTS: usize = 24;
    let duration = SimDuration::from_secs(300);

    let mut config = WorkloadConfig::tiny(seed);
    config.name = format!("traffic-mix-{label}");
    config.domains = 1;
    config.clients = CLIENTS;
    config.target_events = EVENTS;
    config.duration = duration;

    let domains = vec![DomainInfo {
        host: "mix-0.example".into(),
        industry: IndustryCategory::Streaming,
        cache_policy: CachePolicy::Always,
        popularity: 1.0,
    }];

    // Fixed sizes (σ = 0) keep each class's byte footprint exact; the
    // per-class Zipf(0.9) cumulative table drives popularity draws.
    let mut objects = Vec::new();
    let mut class_starts = Vec::new();
    let mut zipf_cum: Vec<Vec<f64>> = Vec::new();
    for &(mime, count, size) in CLASSES {
        class_starts.push(objects.len() as u32);
        for i in 0..count {
            objects.push(ObjectInfo {
                url: format!("https://mix-0.example/{mime:?}/{i}"),
                domain: 0,
                mime,
                cacheable: true,
                ttl: SimDuration::from_secs(3_600),
                size_median: size,
                size_sigma: 0.0,
                body: None,
            });
        }
        let mut cum = Vec::with_capacity(count);
        let mut total = 0.0;
        for i in 0..count {
            total += 1.0 / ((i + 1) as f64).powf(0.9);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        zipf_cum.push(cum);
    }

    let mut rng = StdRng::seed_from_u64(seed ^ jcdn_trace::fnv1a(label.as_bytes()));
    let clients = (0..CLIENTS)
        .map(|i| ClientInfo {
            ip_hash: rng.gen(),
            ua: Some(format!("MixClient/{i}")),
            device: DeviceType::Desktop,
            is_browser: true,
            activity: 1.0,
        })
        .collect();

    let cum_shares = [shares[0], shares[0] + shares[1], 1.0];
    let step = duration.as_micros() / EVENTS as u64;
    let events = (0..EVENTS)
        .map(|i| {
            let u: f64 = rng.gen();
            let class = cum_shares.iter().position(|&c| u < c).unwrap_or(2);
            let v: f64 = rng.gen();
            let cum = &zipf_cum[class];
            let rank = cum.partition_point(|&c| c < v).min(cum.len() - 1);
            RequestEvent {
                time: SimTime::from_micros(i as u64 * step),
                client: rng.gen_range(0..CLIENTS as u32),
                object: class_starts[class] + rank as u32,
                method: Method::Get,
            }
        })
        .collect();

    Workload {
        config,
        domains,
        objects,
        clients,
        events,
        truth: GroundTruth::default(),
    }
}

/// X-traffic-mix: Fricker et al.'s two-layer caching result, transposed
/// to this simulator — per-tier hit rates of an edge + regional hierarchy
/// as (a) the traffic mix shifts between small JSON, medium HTML, and
/// large video objects, and (b) a fixed byte budget is split between the
/// two layers, across all five eviction policies.
pub fn ext_traffic_mix(ctx: &Context) -> ExperimentResult {
    use jcdn_cdnsim::{CacheHierarchy, Placement, PolicyKind, TierSpec};

    let seed = ctx.short_term.workload.config.seed;
    let run = |workload: &jcdn_workload::Workload,
               edge_bytes: u64,
               regional_bytes: u64,
               policy: PolicyKind| {
        let config = SimConfig {
            edges: 3,
            hierarchy: Some(CacheHierarchy {
                edge: TierSpec::lru("edge", edge_bytes).with_policy(policy),
                shared: vec![TierSpec::lru("regional", regional_bytes).with_policy(policy)],
                placement: Placement::CopyEverywhere,
                sync_interval: CacheHierarchy::DEFAULT_SYNC_INTERVAL,
            }),
            ..SimConfig::default()
        };
        run_default(workload, &config).stats
    };
    // Per-tier rates from the generalized counters: the edge rate is over
    // cacheable lookups, the regional rate over the misses that reached
    // it, and the origin share is the full fall-through fraction.
    let rates = |stats: &jcdn_cdnsim::SimStats| {
        let edge = stats.cacheable_hit_ratio().unwrap_or(0.0);
        let regional = stats.tier_hit_ratio(0).unwrap_or(0.0);
        let lookups = (stats.hits + stats.misses).max(1);
        let origin = stats.tier_misses.last().copied().unwrap_or(0) as f64 / lookups as f64;
        (edge, regional, origin)
    };

    // Part 1 — the mix sweep at a fixed 4M edge / 48M regional topology.
    const EDGE: u64 = 4 << 20;
    const REGIONAL: u64 = 48 << 20;
    let mut mix_table = TextTable::new(&["Mix", "Policy", "Edge", "Regional", "Origin"]);
    // (mix index, policy index) -> (edge, regional, origin) rates.
    let mut by_mix: Vec<Vec<(f64, f64, f64)>> = Vec::new();
    for &(label, shares) in TRAFFIC_MIXES {
        let workload = mix_workload(seed, label, shares);
        let mut row = Vec::new();
        for policy in PolicyKind::ALL {
            let stats = run(&workload, EDGE, REGIONAL, policy);
            let (edge, regional, origin) = rates(&stats);
            mix_table.row(&[
                label.to_string(),
                policy.label().to_string(),
                pct(edge),
                pct(regional),
                pct(origin),
            ]);
            row.push((edge, regional, origin));
        }
        by_mix.push(row);
    }

    // Part 2 — the size-split sweep: the same 52M byte budget divided
    // between the layers, on the balanced mix. Cells are edge / in-network
    // hit rates (in-network = served by either layer).
    let balanced = mix_workload(seed, "balanced", TRAFFIC_MIXES[1].1);
    let mut header: Vec<&str> = vec!["edge/regional split"];
    header.extend(PolicyKind::ALL.iter().map(|p| p.label()));
    let mut split_table = TextTable::new(&header);
    // (split index, policy index) -> (edge, regional, origin) rates.
    let mut by_split: Vec<Vec<(f64, f64, f64)>> = Vec::new();
    for &(edge_bytes, regional_bytes) in &[
        (4u64 << 20, 48u64 << 20),
        (26 << 20, 26 << 20),
        (48 << 20, 4 << 20),
    ] {
        let mut cells = vec![format!("{}M / {}M", edge_bytes >> 20, regional_bytes >> 20)];
        let mut row = Vec::new();
        for policy in PolicyKind::ALL {
            let stats = run(&balanced, edge_bytes, regional_bytes, policy);
            let (edge, regional, origin) = rates(&stats);
            cells.push(format!("{} / {}", pct(edge), pct(1.0 - origin)));
            row.push((edge, regional, origin));
        }
        split_table.row(&cells);
        by_split.push(row);
    }

    let rendered = format!(
        "two-layer hierarchy (3 edges, shared regional tier), 30k requests per run\n\
         classes: JSON 2KB x3000, HTML 16KB x1500, video 1MB x300 (Zipf 0.9 each)\n\n\
         per-tier hit rate by traffic mix (edge 4M, regional 48M):\n{}\n\
         size split of a 52M budget, balanced mix (cells: edge / in-network hit rate):\n{}",
        mix_table.render(),
        split_table.render()
    );
    let policies = PolicyKind::ALL.len();
    ExperimentResult {
        id: "ext_traffic_mix",
        title: "Extension — per-tier hit rate vs traffic mix and cache-size split",
        rendered,
        checks: vec![
            (
                "all five policies ran at every mix".into(),
                by_mix.len() == TRAFFIC_MIXES.len()
                    && by_mix.iter().all(|row| row.len() == policies),
            ),
            (
                "video-heavy traffic lowers the edge hit rate under every policy".into(),
                (0..policies).all(|p| by_mix[2][p].0 < by_mix[0][p].0),
            ),
            (
                "the regional tier absorbs cross-edge misses at every mix".into(),
                by_mix
                    .iter()
                    .flatten()
                    .all(|&(_, regional, _)| regional > 0.0),
            ),
            (
                "growing the edge's share of the budget raises its hit rate".into(),
                (0..policies).all(|p| by_split[2][p].0 > by_split[0][p].0),
            ),
            (
                // Fricker et al.'s headline: total performance is driven by
                // the combined budget, not by how it is divided.
                "the in-network hit rate is insensitive to the split (<10pt spread)".into(),
                (0..policies).all(|p| {
                    let rates: Vec<f64> = by_split.iter().map(|row| 1.0 - row[p].2).collect();
                    let hi = rates.iter().cloned().fold(f64::MIN, f64::max);
                    let lo = rates.iter().cloned().fold(f64::MAX, f64::min);
                    hi - lo < 0.10
                }),
            ),
        ],
    }
}
