//! # jcdn-bench — reproduction experiments and benchmarks
//!
//! One function per table/figure of the paper (see `DESIGN.md`'s experiment
//! index). The `repro` binary prints paper-vs-measured comparisons; the
//! Criterion benches in `benches/` time the underlying analyses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use jcdn_core::dataset::{simulate, Dataset};
use jcdn_workload::WorkloadConfig;

/// Shared experiment context: both datasets, simulated once.
pub struct Context {
    /// The short-term dataset (whole network, 10 simulated minutes).
    pub short_term: Dataset,
    /// The long-term dataset (three vantage points, 24 simulated hours).
    pub long_term: Dataset,
    /// The volume scale relative to the default configs.
    pub scale: f64,
}

impl Context {
    /// Simulates both datasets at `scale` of the default volume.
    pub fn new(seed: u64, scale: f64) -> Self {
        Context {
            short_term: simulate(&WorkloadConfig::short_term(seed).scaled(scale)),
            long_term: simulate(&WorkloadConfig::long_term(seed ^ 0x1001).scaled(scale)),
            scale,
        }
    }
}
