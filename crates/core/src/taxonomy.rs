//! The JSON traffic taxonomy (Figure 2 of the paper).
//!
//! The paper "divides the properties of JSON traffic into traffic source,
//! request type, and response type". This module gives that taxonomy a
//! concrete type: every log record classifies into one [`TaxonomyCell`],
//! and the characterization module aggregates over cells.

use jcdn_trace::{LogRecord, Method, RecordView};
use jcdn_ua::{classify, DeviceType};

/// Traffic source: who initiated the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TrafficSource {
    /// Device category from the user agent.
    pub device: DeviceType,
    /// Browser vs. non-browser.
    pub browser: bool,
}

/// Request type: upload vs. download (from the HTTP method, per §3.2's
/// GET/POST convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestType {
    /// GET/HEAD — retrieves data.
    Download,
    /// POST/PUT — sends data.
    Upload,
    /// Anything else.
    Other,
}

impl RequestType {
    /// Classifies an HTTP method.
    pub fn from_method(method: Method) -> RequestType {
        if method.is_download() {
            RequestType::Download
        } else if method.is_upload() {
            RequestType::Upload
        } else {
            RequestType::Other
        }
    }
}

/// Response type: size and cacheability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResponseType {
    /// Response body size in bytes.
    pub bytes: u64,
    /// Whether the customer configuration allows caching.
    pub cacheable: bool,
}

/// One record, classified along all three taxonomy axes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaxonomyCell {
    /// Who asked.
    pub source: TrafficSource,
    /// Upload or download.
    pub request: RequestType,
    /// What came back.
    pub response: ResponseType,
}

impl TaxonomyCell {
    /// Classifies one resolved log record.
    pub fn classify(view: &RecordView<'_>) -> TaxonomyCell {
        let c = classify(view.ua);
        TaxonomyCell {
            source: TrafficSource {
                device: c.device,
                browser: c.is_browser,
            },
            request: RequestType::from_method(view.record.method),
            response: ResponseType {
                bytes: view.record.response_bytes,
                cacheable: view.record.cache.is_cacheable(),
            },
        }
    }

    /// Classifies a raw record given its (optional) UA string.
    pub fn classify_raw(record: &LogRecord, ua: Option<&str>) -> TaxonomyCell {
        let c = classify(ua);
        TaxonomyCell {
            source: TrafficSource {
                device: c.device,
                browser: c.is_browser,
            },
            request: RequestType::from_method(record.method),
            response: ResponseType {
                bytes: record.response_bytes,
                cacheable: record.cache.is_cacheable(),
            },
        }
    }
}

/// A full cross-tabulation of the taxonomy over a trace's JSON records:
/// how many requests fall into each (device, browser, request-type,
/// cacheable) cell, with response bytes accumulated per cell.
///
/// This is Figure 2 turned into a queryable structure — the §4 breakdowns
/// are all marginals of it.
#[derive(Clone, Debug, Default)]
pub struct TaxonomyCrossTab {
    cells: std::collections::HashMap<CellKey, CellStats>,
    /// Total JSON requests tabulated.
    pub total: u64,
}

/// One cell coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Device type axis.
    pub device: jcdn_ua::DeviceType,
    /// Browser vs non-browser axis.
    pub browser: bool,
    /// Upload/download axis.
    pub request: RequestType,
    /// Cacheability axis.
    pub cacheable: bool,
}

/// Accumulated statistics for one cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct CellStats {
    /// Requests in the cell.
    pub requests: u64,
    /// Total response bytes in the cell.
    pub bytes: u64,
}

impl TaxonomyCrossTab {
    /// Tabulates every JSON record of a trace.
    pub fn compute(trace: &jcdn_trace::Trace) -> Self {
        use jcdn_trace::MimeType;
        // Classify each distinct UA once.
        let ua_classes: Vec<_> = trace
            .ua_table()
            .iter()
            .map(|ua| classify(Some(ua)))
            .collect();
        let missing = classify(None);
        let mut tab = TaxonomyCrossTab::default();
        for r in trace.records() {
            if r.mime != MimeType::Json {
                continue;
            }
            let c = match r.ua {
                Some(ua) => &ua_classes[ua.0 as usize],
                None => &missing,
            };
            let key = CellKey {
                device: c.device,
                browser: c.is_browser,
                request: RequestType::from_method(r.method),
                cacheable: r.cache.is_cacheable(),
            };
            let cell = tab.cells.entry(key).or_default();
            cell.requests += 1;
            cell.bytes += r.response_bytes;
            tab.total += 1;
        }
        tab
    }

    /// The statistics of one cell (zeros when empty).
    pub fn cell(&self, key: CellKey) -> CellStats {
        self.cells.get(&key).copied().unwrap_or_default()
    }

    /// Sums requests over all cells matching a predicate — marginals in
    /// one line: `tab.marginal(|k| k.device == DeviceType::Mobile)`.
    pub fn marginal(&self, predicate: impl Fn(&CellKey) -> bool) -> u64 {
        self.cells
            .iter()
            .filter(|(k, _)| predicate(k))
            .map(|(_, v)| v.requests)
            .sum()
    }

    /// Non-empty cells, largest first.
    pub fn cells_by_size(&self) -> Vec<(CellKey, CellStats)> {
        let mut cells: Vec<(CellKey, CellStats)> =
            self.cells.iter().map(|(&k, &v)| (k, v)).collect();
        cells.sort_by_key(|&(_, v)| std::cmp::Reverse(v.requests));
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_trace::{CacheStatus, ClientId, MimeType, RecordFlags, SimTime, Trace};

    #[test]
    fn request_type_mapping() {
        assert_eq!(RequestType::from_method(Method::Get), RequestType::Download);
        assert_eq!(
            RequestType::from_method(Method::Head),
            RequestType::Download
        );
        assert_eq!(RequestType::from_method(Method::Post), RequestType::Upload);
        assert_eq!(RequestType::from_method(Method::Put), RequestType::Upload);
        assert_eq!(RequestType::from_method(Method::Delete), RequestType::Other);
    }

    #[test]
    fn classify_full_record() {
        let mut t = Trace::new();
        let ua = t.intern_ua("NewsApp/3.2.1 (iPhone; iOS 12.4)");
        let url = t.intern_url("https://news-1.example/api/articles/9");
        t.push(LogRecord {
            time: SimTime::ZERO,
            client: ClientId(1),
            ua: Some(ua),
            url,
            method: Method::Post,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 512,
            cache: CacheStatus::NotCacheable,
            retries: 0,
            flags: RecordFlags::NONE,
        });
        let view = t.iter().next().unwrap();
        let cell = TaxonomyCell::classify(&view);
        assert_eq!(cell.source.device, DeviceType::Mobile);
        assert!(!cell.source.browser);
        assert_eq!(cell.request, RequestType::Upload);
        assert!(!cell.response.cacheable);
        assert_eq!(cell.response.bytes, 512);
    }

    #[test]
    fn cross_tab_marginals_are_consistent() {
        let mut t = Trace::new();
        let app = t.intern_ua("NewsApp/1.0 (iPhone; iOS 12.4)");
        let mut push = |ua, method, cache| {
            let url = t.intern_url("https://a.example/x");
            t.push(LogRecord {
                time: SimTime::ZERO,
                client: ClientId(1),
                ua,
                url,
                method,
                mime: MimeType::Json,
                status: 200,
                response_bytes: 100,
                cache,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        };
        push(Some(app), Method::Get, CacheStatus::Hit);
        push(Some(app), Method::Post, CacheStatus::NotCacheable);
        push(None, Method::Get, CacheStatus::Miss);

        let tab = TaxonomyCrossTab::compute(&t);
        assert_eq!(tab.total, 3);
        // Marginals partition the total.
        let uploads = tab.marginal(|k| k.request == RequestType::Upload);
        let downloads = tab.marginal(|k| k.request == RequestType::Download);
        assert_eq!(uploads + downloads, 3);
        assert_eq!(tab.marginal(|k| k.device == DeviceType::Mobile), 2);
        assert_eq!(tab.marginal(|k| !k.cacheable), 1);
        assert_eq!(tab.marginal(|_| true), 3);
        // Direct cell lookup.
        let cell = tab.cell(CellKey {
            device: DeviceType::Mobile,
            browser: false,
            request: RequestType::Upload,
            cacheable: false,
        });
        assert_eq!(cell.requests, 1);
        assert_eq!(cell.bytes, 100);
        // Ordering helper.
        let ranked = tab.cells_by_size();
        assert_eq!(ranked.len(), 3);
        assert!(ranked[0].1.requests >= ranked[1].1.requests);
    }

    #[test]
    fn cross_tab_ignores_non_json() {
        let mut t = Trace::new();
        let url = t.intern_url("https://a.example/h");
        t.push(LogRecord {
            time: SimTime::ZERO,
            client: ClientId(1),
            ua: None,
            url,
            method: Method::Get,
            mime: MimeType::Html,
            status: 200,
            response_bytes: 10,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        });
        let tab = TaxonomyCrossTab::compute(&t);
        assert_eq!(tab.total, 0);
        assert!(tab.cells_by_size().is_empty());
    }

    #[test]
    fn missing_ua_is_unknown_source() {
        let record = LogRecord {
            time: SimTime::ZERO,
            client: ClientId(1),
            ua: None,
            url: jcdn_trace::UrlId(0),
            method: Method::Get,
            mime: MimeType::Json,
            status: 200,
            response_bytes: 1,
            cache: CacheStatus::Hit,
            retries: 0,
            flags: RecordFlags::NONE,
        };
        let cell = TaxonomyCell::classify_raw(&record, None);
        assert_eq!(cell.source.device, DeviceType::Unknown);
        assert!(!cell.source.browser);
    }
}
