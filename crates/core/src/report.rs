//! Plain-text rendering of tables and figure data.
//!
//! The reproduction harness prints each table/figure of the paper as
//! aligned text; these helpers keep that formatting in one place.

use std::fmt::Write as _;

/// A simple aligned-column table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    ///
    /// # Panics
    /// Panics when the row length differs from the header length.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity must match header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for `&str` rows.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a ratio with two decimals and an `x` suffix.
pub fn ratio(value: f64) -> String {
    format!("{value:.2}x")
}

/// Renders a labelled comparison against the paper's value.
pub fn paper_vs_measured(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<44} paper: {paper:>8}   measured: {measured:>8}")
}

/// Renders the shared-tier hit-rate block appended to the availability
/// section when a run used a cache hierarchy: one row per shared tier
/// (nearest the edge first) with the lookups that reached it and its hit
/// rate. `None` when the run had no shared tiers.
pub fn tier_section(stats: &jcdn_cdnsim::SimStats) -> Option<String> {
    if stats.tier_hits.is_empty() {
        return None;
    }
    let mut table = TextTable::new(&["Tier", "Lookups", "Hits", "Hit rate"]);
    for t in 0..stats.tier_hits.len() {
        let hits = stats.tier_hits[t];
        let reached = hits + stats.tier_misses.get(t).copied().unwrap_or(0);
        table.row(&[
            format!("tier {t}"),
            reached.to_string(),
            hits.to_string(),
            stats.tier_hit_ratio(t).map_or_else(|| "-".to_string(), pct),
        ]);
    }
    Some(format!(
        "cache tiers (edge-nearest first):\n{}",
        table.render()
    ))
}

/// Renders the availability section of a characterization report: headline
/// error rates, the resilience counters, and the per-industry table.
pub fn availability_section(a: &crate::characterize::AvailabilityBreakdown) -> String {
    use jcdn_workload::IndustryCategory;

    let mut out = String::new();
    out.push_str("== Availability ==\n");
    let _ = writeln!(out, "logical requests        {}", a.logical_requests());
    let _ = writeln!(out, "attempts (with retries) {}", a.attempts);
    let _ = writeln!(
        out,
        "end-user error rate     {}",
        pct(a.end_user_error_rate())
    );
    let _ = writeln!(
        out,
        "attempt error rate      {}",
        pct(a.attempt_error_rate())
    );
    let _ = writeln!(
        out,
        "retry amplification     {}",
        ratio(a.retry_amplification())
    );
    let _ = writeln!(
        out,
        "served stale            {} ({})",
        a.stale_serves,
        pct(a.stale_serve_share())
    );
    let _ = writeln!(out, "negative-cache serves   {}", a.neg_cached);
    let _ = writeln!(out, "coalesced waits         {}", a.coalesced);

    let mut table = TextTable::new(&["Industry", "Requests", "Failures", "Availability"]);
    let mut categories: Vec<_> = a.per_industry.keys().copied().collect();
    categories.sort_by_key(|c| IndustryCategory::ALL.iter().position(|x| x == c));
    for category in categories {
        let (failures, logical) = a.per_industry[&category];
        let availability = a
            .industry_availability(category)
            .map_or_else(|| "-".to_string(), pct);
        table.row(&[
            category.label().to_string(),
            logical.to_string(),
            failures.to_string(),
            availability,
        ]);
    }
    if !table.is_empty() {
        out.push('\n');
        out.push_str(&table.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["K", "Clustered URLs", "Actual URLs"]);
        t.row_str(&["1", ".65", ".45"]);
        t.row_str(&["10", ".87", ".69"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("K "));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "Clustered" starts at the same offset in all rows.
        let offset = lines[0].find("Clustered").unwrap();
        assert_eq!(&lines[2][offset..offset + 3], ".65");
        assert_eq!(&lines[3][offset..offset + 3], ".87");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        TextTable::new(&["a", "b"]).row_str(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.551), "55.1%");
        assert_eq!(ratio(4.267), "4.27x");
        let line = paper_vs_measured("GET share", "84%", "83.1%");
        assert!(line.contains("paper:"));
        assert!(line.contains("measured:"));
    }
}
