//! Sharded characterization pipeline: scatter per-shard accumulation over
//! a worker pool, gather, and merge into one exact report.
//!
//! [`CharacterizationReport`] bundles every §4 breakdown. Three entry
//! points produce one:
//!
//! * [`CharacterizationReport::compute`] — single pass over a [`Trace`],
//! * [`CharacterizationReport::compute_sharded`] — per-shard partials of a
//!   [`ShardedTrace`], accumulated on a [`jcdn_exec::scatter_gather`] pool
//!   and merged in shard order,
//! * the manual route: [`CharacterizationReport::accumulate`] partials
//!   yourself, [`merge`][CharacterizationReport::merge] them, then
//!   [`finalize`][CharacterizationReport::finalize].
//!
//! Because every accumulator merge is exact (integer counts, pooled order
//! statistics, per-domain counts bucketed only at finalize), all three
//! routes yield identical reports for the same records — for any shard
//! count and thread count. The `shard_invariance` integration test holds
//! the pipeline to that.

use jcdn_obs::timeseries::WindowSpec;
use jcdn_trace::{RecordStream, ShardedTrace, Trace};

use crate::characterize::{
    AvailabilityBreakdown, CacheabilityHeatmap, CategoryProvider, ContentMix, DomainCacheability,
    RequestTypeBreakdown, ResponseTypeBreakdown, TrafficSourceBreakdown, UaClassTable,
};
use crate::series::{SeriesPartial, SeriesReport, DEFAULT_TOP_URLS};

/// Default bucket count for the cacheability heatmap (Figure 4 uses ten
/// 10%-wide cells).
pub const HEATMAP_BUCKETS: usize = 10;

/// Partial characterization state for one record subset. Merge partials
/// with [`merge`][Self::merge], then [`finalize`][Self::finalize] into a
/// [`CharacterizationReport`].
#[derive(Clone, Debug, Default)]
pub struct PartialReport {
    /// Figure 3 traffic sources (request counters only until finalize).
    pub sources: TrafficSourceBreakdown,
    /// GET/POST split.
    pub requests: RequestTypeBreakdown,
    /// Cacheability counters and size samples.
    pub responses: ResponseTypeBreakdown,
    /// Per-domain cacheable/total counts (bucketed at finalize).
    pub domains: DomainCacheability,
    /// Availability and resilience counters.
    pub availability: AvailabilityBreakdown,
    /// JSON/HTML request counts.
    pub mix: ContentMix,
}

impl PartialReport {
    /// Folds one record stream into every accumulator.
    pub fn accumulate(
        &mut self,
        stream: &RecordStream<'_>,
        classes: &UaClassTable,
        provider: &dyn CategoryProvider,
    ) {
        self.sources.accumulate(stream, classes);
        self.requests.accumulate(stream);
        self.responses.accumulate(stream);
        self.domains.accumulate(stream);
        self.availability.accumulate(stream, provider);
        self.mix.accumulate(stream);
    }

    /// Adds `other`'s partial state into `self` (associative, exact).
    pub fn merge(&mut self, other: &PartialReport) {
        self.sources.merge(&other.sources);
        self.requests.merge(&other.requests);
        self.responses.merge(&other.responses);
        self.domains.merge(&other.domains);
        self.availability.merge(&other.availability);
        self.mix.merge(&other.mix);
    }

    /// Runs the once-per-report steps (distinct-UA counts from the shared
    /// table, heatmap bucketing) and produces the final report.
    pub fn finalize(
        mut self,
        classes: &UaClassTable,
        provider: &dyn CategoryProvider,
        heatmap_buckets: usize,
    ) -> CharacterizationReport {
        self.sources.count_ua_strings(classes);
        let heatmap = self.domains.finalize(provider, heatmap_buckets);
        CharacterizationReport {
            sources: self.sources,
            requests: self.requests,
            responses: self.responses,
            heatmap,
            availability: self.availability,
            mix: self.mix,
        }
    }
}

/// Every §4 breakdown of one trace, computed in a single pass or merged
/// from per-shard partials — identically either way.
#[derive(Clone, Debug)]
pub struct CharacterizationReport {
    /// Figure 3: JSON traffic by device type / browser share.
    pub sources: TrafficSourceBreakdown,
    /// GET/POST split.
    pub requests: RequestTypeBreakdown,
    /// Cacheability share and JSON-vs-HTML size quantiles.
    pub responses: ResponseTypeBreakdown,
    /// Figure 4: per-industry domain cacheability heatmap.
    pub heatmap: CacheabilityHeatmap,
    /// Availability under faults.
    pub availability: AvailabilityBreakdown,
    /// Figure 1: JSON/HTML request mix.
    pub mix: ContentMix,
}

impl CharacterizationReport {
    /// Single-pass characterization of a whole trace.
    pub fn compute(trace: &Trace, provider: &dyn CategoryProvider) -> Self {
        let classes = UaClassTable::build(trace.interner());
        let mut partial = PartialReport::default();
        partial.accumulate(&trace.stream(), &classes, provider);
        partial.finalize(&classes, provider, HEATMAP_BUCKETS)
    }

    /// Characterizes a sharded trace: one partial per shard, accumulated
    /// on a `threads`-wide [`jcdn_exec::scatter_gather`] pool, merged in
    /// shard order, finalized once. `threads <= 1` runs sequentially.
    pub fn compute_sharded(
        sharded: &ShardedTrace,
        provider: &(dyn CategoryProvider + Sync),
        threads: usize,
    ) -> Self {
        let classes = UaClassTable::build(sharded.interner());
        let accumulate_span = jcdn_obs::span!("characterize.accumulate");
        let partials = jcdn_exec::scatter_gather_labeled(
            "characterize.shards",
            sharded.shard_count(),
            threads,
            |i| {
                let mut partial = PartialReport::default();
                partial.accumulate(&sharded.shard_stream(i), &classes, provider);
                partial
            },
        );
        drop(accumulate_span);
        let _merge_span = jcdn_obs::span!("characterize.merge");
        let mut total = PartialReport::default();
        for partial in &partials {
            total.merge(partial);
        }
        total.finalize(&classes, provider, HEATMAP_BUCKETS)
    }

    /// Like [`compute_sharded`][Self::compute_sharded] but panic-isolated:
    /// a shard whose accumulation panics (after the pool's one sequential
    /// retry) is dropped from the merge instead of aborting the process,
    /// and its index is reported in [`ExecHealth::quarantined`]. With no
    /// quarantined shards the report is bit-identical to
    /// `compute_sharded`'s; with some it is the exact report of the
    /// surviving shards — callers must surface the partial-result fact.
    pub fn compute_sharded_isolated(
        sharded: &ShardedTrace,
        provider: &(dyn CategoryProvider + Sync),
        threads: usize,
    ) -> (Self, ExecHealth) {
        let classes = UaClassTable::build(sharded.interner());
        let accumulate_span = jcdn_obs::span!("characterize.accumulate");
        let gathered = jcdn_exec::scatter_gather_isolated(
            "characterize.shards",
            sharded.shard_count(),
            threads,
            |i| {
                let mut partial = PartialReport::default();
                partial.accumulate(&sharded.shard_stream(i), &classes, provider);
                partial
            },
        );
        drop(accumulate_span);
        let _merge_span = jcdn_obs::span!("characterize.merge");
        let mut total = PartialReport::default();
        for partial in gathered.results.iter().flatten() {
            total.merge(partial);
        }
        let health = ExecHealth {
            task_panics: gathered.task_panics,
            quarantined: gathered.quarantined,
        };
        (total.finalize(&classes, provider, HEATMAP_BUCKETS), health)
    }

    /// [`compute_sharded`][Self::compute_sharded] plus the windowed §4
    /// series: one scatter produces both a [`PartialReport`] and a
    /// [`crate::series::SeriesPartial`] per shard, merged in shard order.
    /// The series rows inherit the pipeline's determinism contract — they
    /// serialize byte-identically for any shard and thread count (held by
    /// the `obs_invariance` suite).
    pub fn compute_sharded_with_series(
        sharded: &ShardedTrace,
        provider: &(dyn CategoryProvider + Sync),
        threads: usize,
        spec: WindowSpec,
    ) -> (Self, SeriesReport) {
        let classes = UaClassTable::build(sharded.interner());
        let accumulate_span = jcdn_obs::span!("characterize.accumulate");
        let partials = jcdn_exec::scatter_gather_labeled(
            "characterize.shards",
            sharded.shard_count(),
            threads,
            |i| {
                let stream = sharded.shard_stream(i);
                let mut partial = PartialReport::default();
                partial.accumulate(&stream, &classes, provider);
                let mut series = SeriesPartial::new(spec, DEFAULT_TOP_URLS);
                series.accumulate(&stream);
                (partial, series)
            },
        );
        drop(accumulate_span);
        let _merge_span = jcdn_obs::span!("characterize.merge");
        let mut total = PartialReport::default();
        let mut series = SeriesPartial::new(spec, DEFAULT_TOP_URLS);
        for (partial, shard_series) in &partials {
            total.merge(partial);
            series.merge(shard_series);
        }
        (
            total.finalize(&classes, provider, HEATMAP_BUCKETS),
            series.finalize(sharded.interner()),
        )
    }

    /// The JSON:HTML request-count ratio, when the trace has HTML traffic.
    pub fn json_html_ratio(&self) -> Option<f64> {
        self.mix.ratio()
    }
}

/// Worker-pool health from a panic-isolated characterization: how many
/// task panics were caught, and which shards (if any) contributed nothing
/// to the report because they failed both attempts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecHealth {
    /// Panics caught at the pool's unwind boundary (recovered or not).
    pub task_panics: u64,
    /// Shard indices excluded from the merged report.
    pub quarantined: Vec<usize>,
}

impl ExecHealth {
    /// Whether every shard contributed to the report.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::TokenCategoryProvider;
    use jcdn_workload::WorkloadConfig;

    fn sample_trace() -> Trace {
        let data = crate::dataset::simulate(&WorkloadConfig::tiny(7).scaled(0.3));
        data.trace
    }

    #[test]
    fn sharded_report_matches_single_pass_for_any_shard_and_thread_count() {
        let whole = sample_trace();
        let single = CharacterizationReport::compute(&whole, &TokenCategoryProvider);

        for shard_count in [1usize, 2, 8] {
            for threads in [1usize, 4] {
                let sharded = ShardedTrace::from_trace(sample_trace(), shard_count);
                let report = CharacterizationReport::compute_sharded(
                    &sharded,
                    &TokenCategoryProvider,
                    threads,
                );

                assert_eq!(report.sources, single.sources, "{shard_count}x{threads}");
                assert_eq!(report.requests, single.requests, "{shard_count}x{threads}");
                assert_eq!(report.heatmap, single.heatmap, "{shard_count}x{threads}");
                assert_eq!(
                    report.availability, single.availability,
                    "{shard_count}x{threads}"
                );
                assert_eq!(report.mix, single.mix, "{shard_count}x{threads}");
                assert_eq!(report.responses.json_total, single.responses.json_total);
                let mut merged = report.responses.clone();
                let mut pooled = single.responses.clone();
                for q in [0.25, 0.5, 0.75, 0.95] {
                    assert_eq!(
                        merged.json_sizes.quantile(q),
                        pooled.json_sizes.quantile(q),
                        "{shard_count}x{threads} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn isolated_route_matches_plain_sharded_route() {
        // With no panics in play the isolated pool must be a drop-in:
        // same partials, same merge order, same report.
        let sharded = ShardedTrace::from_trace(sample_trace(), 4);
        let plain = CharacterizationReport::compute_sharded(&sharded, &TokenCategoryProvider, 2);
        let (isolated, health) =
            CharacterizationReport::compute_sharded_isolated(&sharded, &TokenCategoryProvider, 2);
        assert!(health.is_complete());
        assert_eq!(health.task_panics, 0);
        assert_eq!(isolated.sources, plain.sources);
        assert_eq!(isolated.requests, plain.requests);
        assert_eq!(isolated.heatmap, plain.heatmap);
        assert_eq!(isolated.availability, plain.availability);
        assert_eq!(isolated.mix, plain.mix);
    }

    #[test]
    fn series_route_is_shard_and_thread_invariant() {
        use crate::series::{SeriesReport, DEFAULT_TOP_URLS};
        use jcdn_obs::timeseries::WindowSpec;

        let whole = sample_trace();
        let Ok(spec) = WindowSpec::parse("1m") else {
            unreachable!("static spec parses");
        };
        let plain = CharacterizationReport::compute(&whole, &TokenCategoryProvider);
        let single = SeriesReport::compute(&whole, spec, DEFAULT_TOP_URLS);
        assert!(!single.rows.is_empty(), "trace spans at least one window");
        let total_requests: u64 = single.rows.iter().map(|r| r.requests).sum();
        assert_eq!(total_requests, whole.len() as u64);

        let mut baseline = None;
        for shard_count in [1usize, 2, 8] {
            for threads in [1usize, 4] {
                let sharded = ShardedTrace::from_trace(sample_trace(), shard_count);
                let (report, series) = CharacterizationReport::compute_sharded_with_series(
                    &sharded,
                    &TokenCategoryProvider,
                    threads,
                    spec,
                );
                assert_eq!(report.mix, plain.mix, "{shard_count}x{threads}");
                let rendered = series.to_jsonl();
                assert_eq!(rendered, single.to_jsonl(), "{shard_count}x{threads}");
                match &baseline {
                    None => baseline = Some(rendered),
                    Some(b) => assert_eq!(b, &rendered, "{shard_count}x{threads}"),
                }
            }
        }
    }

    #[test]
    fn empty_trace_reports_cleanly() {
        let report = CharacterizationReport::compute(&Trace::new(), &TokenCategoryProvider);
        assert_eq!(report.sources.total, 0);
        assert_eq!(report.requests.total(), 0);
        assert!(report.json_html_ratio().is_none());
        assert_eq!(report.availability.end_user_error_rate(), 0.0);
    }
}
