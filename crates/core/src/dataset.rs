//! Dataset assembly: workload generation → CDN simulation → trace.

use jcdn_cdnsim::{run_default, run_sharded, SimConfig, SimOutput, SimStats};
use jcdn_obs::{MetricsSnapshot, WindowedCounters};
use jcdn_trace::summary::DatasetSummary;
use jcdn_trace::Trace;
use jcdn_workload::{build, Workload, WorkloadConfig};

/// A fully simulated dataset: the generating workload (with ground truth),
/// the resulting edge logs, and simulator statistics.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The workload (population + ground truth labels).
    pub workload: Workload,
    /// The edge request logs.
    pub trace: Trace,
    /// Simulator counters.
    pub stats: SimStats,
    /// Per-edge observability counters from the simulator, ready to merge
    /// into a run manifest.
    pub metrics: MetricsSnapshot,
    /// Per-window simulator counters, when the sim config asked for a
    /// window ([`SimConfig::window`]).
    pub series: Option<WindowedCounters>,
}

impl Dataset {
    /// Table 2 summary of this dataset.
    pub fn summary(&self) -> DatasetSummary {
        DatasetSummary::compute(self.workload.config.name.clone(), &self.trace)
    }
}

/// Generates and simulates a dataset with the default simulator
/// configuration.
pub fn simulate(config: &WorkloadConfig) -> Dataset {
    simulate_with(config, &SimConfig::default())
}

/// Generates and simulates with an explicit simulator configuration.
pub fn simulate_with(config: &WorkloadConfig, sim: &SimConfig) -> Dataset {
    simulate_workload(build(config), sim)
}

/// Simulates an already-built workload. Useful when the simulator config
/// refers to the workload itself — e.g. fault windows targeting a domain
/// that must first be resolved to its index.
pub fn simulate_workload(workload: Workload, sim: &SimConfig) -> Dataset {
    let SimOutput {
        trace,
        stats,
        metrics,
        series,
    } = run_default(&workload, sim);
    Dataset {
        workload,
        trace,
        stats,
        metrics,
        series,
    }
}

/// [`simulate_workload`] with per-edge simulation fanned out over a
/// `threads`-wide pool (see [`jcdn_cdnsim::run_sharded`] for when the
/// parallel path applies). Trace records are identical to the sequential
/// run for any thread count.
pub fn simulate_workload_parallel(workload: Workload, sim: &SimConfig, threads: usize) -> Dataset {
    let SimOutput {
        trace,
        stats,
        metrics,
        series,
    } = run_sharded(&workload, sim, threads);
    Dataset {
        workload,
        trace,
        stats,
        metrics,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_workload::WorkloadConfig;

    #[test]
    fn dataset_summary_matches_trace() {
        let data = simulate(&WorkloadConfig::tiny(3).scaled(0.2));
        let s = data.summary();
        assert_eq!(s.logs, data.trace.len());
        assert_eq!(s.name, "Tiny");
        assert!(s.domains > 0);
        assert!(s.json_logs > 0);
    }

    #[test]
    fn stats_and_trace_agree_on_request_count() {
        let data = simulate(&WorkloadConfig::tiny(4).scaled(0.2));
        assert_eq!(data.stats.requests as usize, data.trace.len());
        // Retried attempts add extra records beyond the workload events.
        assert_eq!(
            data.workload.events.len() as u64 + data.stats.retries_issued,
            data.trace.len() as u64
        );
    }
}
