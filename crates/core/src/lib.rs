//! # jcdn-core — the IMC '19 JSON-traffic analysis pipeline
//!
//! This crate is the paper's primary contribution rebuilt as a library: the
//! traffic taxonomy (Figure 2) and the three studies that run over CDN
//! request logs:
//!
//! * [`characterize`] — §4: traffic-source breakdown (Figure 3), request
//!   types, response sizes and cacheability, and the per-industry domain
//!   cacheability heatmap (Figure 4), plus the JSON:HTML ratio series
//!   (Figure 1),
//! * [`periodicity`] — §5.1: object/client-object flow periodicity with
//!   permutation-thresholded detection (Figures 5 and 6),
//! * [`prediction`] — §5.2: backoff n-gram next-request prediction on raw
//!   and clustered URLs (Table 3),
//! * [`pipeline`] — the sharded scatter–gather characterization pipeline:
//!   per-shard partial reports merged exactly into one
//!   [`pipeline::CharacterizationReport`],
//! * [`dataset`] — glue that generates a synthetic dataset (workload →
//!   CDN simulation → trace) in one call,
//! * [`report`] — plain-text table/figure rendering used by the `repro`
//!   harness and the examples.
//!
//! The input everywhere is a [`jcdn_trace::Trace`] — whether it came from
//! the bundled simulator or (in principle) from real edge logs decoded via
//! `jcdn-trace`'s codecs.
//!
//! ## Example: characterize a small synthetic dataset
//!
//! ```
//! use jcdn_core::dataset;
//! use jcdn_core::characterize::TrafficSourceBreakdown;
//! use jcdn_workload::WorkloadConfig;
//!
//! let data = dataset::simulate(&WorkloadConfig::tiny(1).scaled(0.2));
//! let sources = TrafficSourceBreakdown::compute(&data.trace);
//! // Mobile dominates JSON traffic, as in Figure 3.
//! assert!(sources.request_share(jcdn_ua::DeviceType::Mobile) > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's measured quantities (§3–§4) as mergeable report sections.
pub mod characterize;
/// Dataset assembly: synthetic workloads rendered into analyzable traces.
pub mod dataset;
/// Request-interval periodicity detection over object flows (§5.2).
pub mod periodicity;
/// The sharded scatter–gather analysis pipeline and its partial reports.
pub mod pipeline;
/// Next-request prediction experiments (§6).
pub mod prediction;
/// Text report rendering: tables, percentages, and section layout.
pub mod report;
/// Windowed §4 partials: per-window rates, mix, and top-URL churn.
pub mod series;
/// The JSON traffic taxonomy (§3.2): request classes and their shares.
pub mod taxonomy;
