//! §5.2 — next-request prediction (Table 3).
//!
//! Per-client JSON request sequences are extracted from the trace, URLs are
//! interned either raw or through the Klotski-style clusterer, clients are
//! split into train/test sets by hash, and a backoff n-gram model is
//! trained and scored at top-K for the paper's K ∈ {1, 5, 10} and history
//! N ∈ {1, 5}.

use jcdn_ngram::eval::{evaluate_sequence, split_client, EvalResult, Split};
use jcdn_ngram::{NgramModel, Vocab};
use jcdn_trace::flows::client_sequences;
use jcdn_trace::{fnv1a, MimeType, Trace};

/// Study configuration.
#[derive(Clone, Debug)]
pub struct PredictionStudyConfig {
    /// History length N (paper's Table 3 uses N = 1; §5.2 notes N = 5 adds
    /// at most 5%).
    pub history: usize,
    /// The K values to evaluate (paper: 1, 5, 10).
    pub ks: Vec<usize>,
    /// Percentage of clients used for training (the paper splits "by
    /// unique clients"; it does not state the ratio — 70% here).
    pub train_percent: u8,
    /// Minimum sequence length for a client to participate.
    pub min_sequence: usize,
}

impl Default for PredictionStudyConfig {
    fn default() -> Self {
        PredictionStudyConfig {
            history: 1,
            ks: vec![1, 5, 10],
            train_percent: 70,
            min_sequence: 2,
        }
    }
}

/// Accuracy for one (K, URL-mode) cell of Table 3, plus the
/// popularity-only baseline the n-gram model must beat.
#[derive(Clone, Copy, Debug)]
pub struct AccuracyCell {
    /// The K evaluated.
    pub k: usize,
    /// Accuracy on clustered URLs.
    pub clustered: f64,
    /// Accuracy on raw URLs.
    pub actual: f64,
    /// Baseline: always predict the K globally most popular raw URLs,
    /// ignoring history. The paper notes its model "takes into account the
    /// popularity of highly requested items"; this column shows how much
    /// the *transition* structure adds on top of popularity alone.
    pub popularity_baseline: f64,
}

/// The study output: one row per K.
#[derive(Clone, Debug)]
pub struct PredictionReport {
    /// History length used.
    pub history: usize,
    /// Accuracy rows in the order of `config.ks`.
    pub rows: Vec<AccuracyCell>,
    /// Transitions evaluated (raw-URL variant).
    pub test_transitions: u64,
    /// Number of train / test clients.
    pub train_clients: usize,
    /// Number of held-out clients.
    pub test_clients: usize,
}

/// Token sequences plus the trained model for one URL mode.
struct ModeData {
    sequences: Vec<(u64, Vec<u32>)>,
    model: NgramModel,
}

fn prepare_mode(trace: &Trace, mut vocab: Vocab, config: &PredictionStudyConfig) -> ModeData {
    // Canonicalize each distinct URL once.
    let tokens: Vec<u32> = trace
        .url_table()
        .iter()
        .map(|url| vocab.intern(url))
        .collect();

    let sequences: Vec<(u64, Vec<u32>)> = client_sequences(trace, |r| r.mime == MimeType::Json)
        .into_iter()
        .filter(|(_, seq)| seq.len() >= config.min_sequence)
        .map(|((client, ua), seq)| {
            // Stable client key from (ip hash, ua id).
            let key = fnv1a(&{
                let mut bytes = client.0.to_le_bytes().to_vec();
                bytes.extend_from_slice(&ua.map_or(u32::MAX, |u| u.0).to_le_bytes());
                bytes
            });
            let toks: Vec<u32> = seq.iter().map(|&(_, url)| tokens[url.0 as usize]).collect();
            (key, toks)
        })
        .collect();

    let mut model = NgramModel::new(config.history);
    for (client, seq) in &sequences {
        if split_client(*client, config.train_percent) == Split::Train {
            model.train_sequence(seq);
        }
    }
    ModeData { sequences, model }
}

fn evaluate_mode(data: &ModeData, k: usize, train_percent: u8) -> EvalResult {
    let mut result = EvalResult::default();
    for (client, seq) in &data.sequences {
        if split_client(*client, train_percent) == Split::Test {
            result.merge(evaluate_sequence(&data.model, seq, k));
        }
    }
    result
}

/// Top-K accuracy of the history-free popularity predictor: the fixed set
/// of K most popular tokens (by training count) is predicted for every
/// transition.
fn evaluate_popularity_baseline(data: &ModeData, k: usize, train_percent: u8) -> EvalResult {
    // An empty history forces the model to its unigram table.
    let top: Vec<u32> = data
        .model
        .predict(&[], k)
        .into_iter()
        .map(|p| p.token)
        .collect();
    let mut result = EvalResult::default();
    for (client, seq) in &data.sequences {
        if split_client(*client, train_percent) == Split::Test {
            for &next in &seq[1.min(seq.len())..] {
                result.transitions += 1;
                if top.contains(&next) {
                    result.hits += 1;
                }
            }
        }
    }
    result
}

/// Runs the full Table 3 study over a trace.
pub fn run_study(trace: &Trace, config: &PredictionStudyConfig) -> PredictionReport {
    let raw = prepare_mode(trace, Vocab::raw(), config);
    let clustered = prepare_mode(trace, Vocab::clustered(), config);

    let train_clients = raw
        .sequences
        .iter()
        .filter(|(c, _)| split_client(*c, config.train_percent) == Split::Train)
        .count();
    let test_clients = raw.sequences.len() - train_clients;

    let mut rows = Vec::with_capacity(config.ks.len());
    let mut test_transitions = 0;
    for &k in &config.ks {
        let raw_result = evaluate_mode(&raw, k, config.train_percent);
        let clustered_result = evaluate_mode(&clustered, k, config.train_percent);
        let baseline = evaluate_popularity_baseline(&raw, k, config.train_percent);
        test_transitions = raw_result.transitions;
        rows.push(AccuracyCell {
            k,
            clustered: clustered_result.accuracy().unwrap_or(0.0),
            actual: raw_result.accuracy().unwrap_or(0.0),
            popularity_baseline: baseline.accuracy().unwrap_or(0.0),
        });
    }
    PredictionReport {
        history: config.history,
        rows,
        test_transitions,
        train_clients,
        test_clients,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_trace::{CacheStatus, ClientId, LogRecord, Method, RecordFlags, SimTime};

    /// Clients repeat an app pattern: manifest → article/{client-specific
    /// id} → detail. Clustered URLs can generalize across clients; raw URLs
    /// cannot predict unseen article ids.
    fn app_trace(clients: u64) -> Trace {
        let mut t = Trace::new();
        for c in 0..clients {
            let manifest = t.intern_url("https://news-0.example/api/v2/stories/0");
            // Article id differs per client → raw URLs don't transfer.
            let article = t.intern_url(&format!("https://news-0.example/api/articles/{}", 100 + c));
            let detail = t.intern_url(&format!(
                "https://news-0.example/api/articles/{}/related",
                100 + c
            ));
            for session in 0..6u64 {
                let base = c * 10_000 + session * 600;
                for (offset, url) in [(0, manifest), (10, article), (20, detail)] {
                    t.push(LogRecord {
                        time: SimTime::from_secs(base + offset),
                        client: ClientId(c),
                        ua: None,
                        url,
                        method: Method::Get,
                        mime: MimeType::Json,
                        status: 200,
                        response_bytes: 100,
                        cache: CacheStatus::Hit,
                        retries: 0,
                        flags: RecordFlags::NONE,
                    });
                }
            }
        }
        t.sort_by_time();
        t
    }

    #[test]
    fn clustered_beats_raw_on_personalized_patterns() {
        let trace = app_trace(60);
        let report = run_study(&trace, &PredictionStudyConfig::default());
        assert_eq!(report.rows.len(), 3);
        for cell in &report.rows {
            assert!(
                cell.clustered >= cell.actual,
                "K={}: clustered {} < raw {}",
                cell.k,
                cell.clustered,
                cell.actual
            );
        }
        // The clustered pattern is fully deterministic → near-perfect at
        // K=1 for transitions within the session cycle.
        let k1 = &report.rows[0];
        assert!(
            k1.clustered > 0.8,
            "clustered K=1 accuracy {}",
            k1.clustered
        );
        // The n-gram model must beat history-free popularity.
        for cell in &report.rows {
            assert!(
                cell.actual >= cell.popularity_baseline,
                "K={}: ngram {} below popularity baseline {}",
                cell.k,
                cell.actual,
                cell.popularity_baseline
            );
        }
        assert!(report.train_clients > 0 && report.test_clients > 0);
        assert!(report.test_transitions > 0);
    }

    #[test]
    fn accuracy_is_monotone_in_k() {
        let trace = app_trace(40);
        let report = run_study(&trace, &PredictionStudyConfig::default());
        for pair in report.rows.windows(2) {
            assert!(pair[1].clustered >= pair[0].clustered - 1e-12);
            assert!(pair[1].actual >= pair[0].actual - 1e-12);
        }
    }

    #[test]
    fn longer_history_does_not_collapse_accuracy() {
        let trace = app_trace(40);
        let n1 = run_study(&trace, &PredictionStudyConfig::default());
        let n5 = run_study(
            &trace,
            &PredictionStudyConfig {
                history: 5,
                ..PredictionStudyConfig::default()
            },
        );
        // §5.2: larger N changes accuracy only marginally.
        let d = (n5.rows[2].clustered - n1.rows[2].clustered).abs();
        assert!(d < 0.15, "N=5 shifted K=10 accuracy by {d}");
    }

    #[test]
    fn empty_trace_produces_zero_rows() {
        let report = run_study(&Trace::new(), &PredictionStudyConfig::default());
        assert_eq!(report.test_transitions, 0);
        for cell in &report.rows {
            assert_eq!(cell.actual, 0.0);
            assert_eq!(cell.clustered, 0.0);
        }
    }

    #[test]
    fn non_json_records_are_excluded() {
        let mut t = Trace::new();
        let url = t.intern_url("https://a.example/page");
        for c in 0..20u64 {
            for i in 0..5u64 {
                t.push(LogRecord {
                    time: SimTime::from_secs(c * 100 + i),
                    client: ClientId(c),
                    ua: None,
                    url,
                    method: Method::Get,
                    mime: MimeType::Html,
                    status: 200,
                    response_bytes: 10,
                    cache: CacheStatus::Hit,
                    retries: 0,
                    flags: RecordFlags::NONE,
                });
            }
        }
        let report = run_study(&t, &PredictionStudyConfig::default());
        assert_eq!(report.test_transitions, 0);
    }
}
