//! §5.1 — periodicity in JSON request flows.
//!
//! The study: extract object flows and client-object flows from the trace
//! (JSON records only), apply the paper's ≥10-requests / ≥10-clients
//! filters, run the permutation-thresholded period detector on both
//! levels, and label a client-object flow *periodic* when its period
//! matches its object flow's period. Outputs drive Figures 5 and 6 and the
//! periodic-traffic cross statistics (56.2% uncacheable, 78% upload).

use std::collections::{HashMap, HashSet};

use jcdn_signal::periodicity::{detect_period, DetectedPeriod, PeriodicityConfig};
use jcdn_stats::{Ecdf, LogHistogram};
use jcdn_trace::flows::{FlowClient, FlowSet};
use jcdn_trace::{MimeType, Trace, UrlId};

/// Study configuration.
#[derive(Clone, Debug)]
pub struct PeriodicityStudyConfig {
    /// Detector tuning (defaults: x = 100 permutations, 1s sampling).
    pub detector: PeriodicityConfig,
    /// Minimum requests per client-object flow (paper: 10).
    pub min_requests: usize,
    /// Minimum clients per object flow (paper: 10).
    pub min_clients: usize,
    /// Match tolerance between client and object periods, in sampling bins.
    pub match_tolerance_bins: usize,
}

impl Default for PeriodicityStudyConfig {
    fn default() -> Self {
        PeriodicityStudyConfig {
            detector: PeriodicityConfig {
                // Client sessions span up to a few hours at 1s sampling;
                // full-day object flows coarsen to ~2.6s bins. Permutations
                // fan out across cores.
                max_bins: 1 << 15,
                parallel: true,
                ..PeriodicityConfig::default()
            },
            min_requests: 10,
            min_clients: 10,
            match_tolerance_bins: 2,
        }
    }
}

/// One periodic client-object flow.
#[derive(Clone, Debug)]
pub struct PeriodicFlow {
    /// The client.
    pub client: FlowClient,
    /// The object.
    pub url: UrlId,
    /// The detected period (seconds).
    pub period_seconds: f64,
    /// Number of requests in the flow.
    pub requests: usize,
}

/// The study's full output.
#[derive(Clone, Debug, Default)]
pub struct PeriodicityReport {
    /// Detected object-flow periods (seconds), one per periodic object —
    /// the data behind Figure 5.
    pub object_periods: HashMap<UrlId, f64>,
    /// Per object: fraction of its (filtered) clients that are periodic —
    /// the data behind Figure 6.
    pub periodic_client_fraction: HashMap<UrlId, f64>,
    /// All periodic client-object flows.
    pub periodic_flows: Vec<PeriodicFlow>,
    /// JSON requests belonging to periodic flows.
    pub periodic_requests: u64,
    /// All JSON requests in the trace.
    pub total_json_requests: u64,
    /// Of periodic requests: how many were uncacheable (paper: 56.2%).
    pub periodic_uncacheable: u64,
    /// Of periodic requests: how many were uploads (paper: 78%).
    pub periodic_uploads: u64,
}

impl PeriodicityReport {
    /// Share of JSON requests that are periodic (paper: 6.3%).
    pub fn periodic_share(&self) -> f64 {
        if self.total_json_requests == 0 {
            return 0.0;
        }
        self.periodic_requests as f64 / self.total_json_requests as f64
    }

    /// Uncacheable share within periodic traffic.
    pub fn periodic_uncacheable_share(&self) -> f64 {
        if self.periodic_requests == 0 {
            return 0.0;
        }
        self.periodic_uncacheable as f64 / self.periodic_requests as f64
    }

    /// Upload share within periodic traffic.
    pub fn periodic_upload_share(&self) -> f64 {
        if self.periodic_requests == 0 {
            return 0.0;
        }
        self.periodic_uploads as f64 / self.periodic_requests as f64
    }

    /// Figure 5: histogram of object periods (log-spaced bins from 10s).
    pub fn period_histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new(10.0, 1.25, 32);
        for &p in self.object_periods.values() {
            h.record(p);
        }
        h
    }

    /// Figure 6: the CDF of per-object periodic-client percentages.
    pub fn client_fraction_cdf(&self) -> Ecdf {
        Ecdf::from_samples(self.periodic_client_fraction.values().copied())
    }

    /// The share of periodic objects where a majority of clients is
    /// periodic (paper highlight: ~20%).
    pub fn majority_periodic_object_share(&self) -> f64 {
        if self.periodic_client_fraction.is_empty() {
            return 0.0;
        }
        let majority = self
            .periodic_client_fraction
            .values()
            .filter(|&&f| f > 0.5)
            .count();
        majority as f64 / self.periodic_client_fraction.len() as f64
    }
}

/// Runs the full §5.1 study over a trace.
pub fn run_study(trace: &Trace, config: &PeriodicityStudyConfig) -> PeriodicityReport {
    let total_json_requests = trace
        .records()
        .iter()
        .filter(|r| r.mime == MimeType::Json)
        .count() as u64;
    let mut report = PeriodicityReport {
        total_json_requests,
        ..PeriodicityReport::default()
    };

    let flows = FlowSet::build(trace, |r| r.mime == MimeType::Json)
        .apply_significance_filters(config.min_requests, config.min_clients);

    // Clip each flow to its first `max_bins × sampling` seconds so the
    // detector always runs at full (1s) resolution. A full-day object flow
    // would otherwise coarsen to multi-second bins, where session-level
    // rate correlation drowns the request-level period.
    let window_secs = config.detector.max_bins as f64 * config.detector.sampling_seconds;
    let clip = |times: Vec<f64>| -> Vec<f64> {
        let Some(&t0) = times.first() else {
            return times;
        };
        let end = t0 + window_secs;
        times.into_iter().take_while(|&t| t < end).collect()
    };

    for flow in &flows.flows {
        // Object-level detection on the merged request sequence.
        let merged = clip(
            flow.merged_times()
                .iter()
                .map(|t| t.as_secs_f64())
                .collect(),
        );
        let Some(object_period) = detect_period(&merged, &config.detector) else {
            continue;
        };

        // Client-level detection; a client is periodic w.r.t. its object
        // when both periods exist and match.
        let mut periodic_clients = 0usize;
        for cf in &flow.client_flows {
            let times = clip(cf.times.iter().map(|t| t.as_secs_f64()).collect());
            let Some(client_period) = detect_period(&times, &config.detector) else {
                continue;
            };
            if client_matches_object(&client_period, &object_period, config.match_tolerance_bins) {
                periodic_clients += 1;
                report.periodic_requests += cf.len() as u64;
                report.periodic_flows.push(PeriodicFlow {
                    client: cf.client,
                    url: flow.url,
                    period_seconds: client_period.period_seconds,
                    requests: cf.len(),
                });
            }
        }

        if periodic_clients > 0 {
            report
                .object_periods
                .insert(flow.url, object_period.period_seconds);
            report.periodic_client_fraction.insert(
                flow.url,
                periodic_clients as f64 / flow.client_count() as f64,
            );
        }
    }

    // Cross statistics need the records of periodic (client, object) pairs.
    let periodic_pairs: HashSet<(FlowClient, UrlId)> = report
        .periodic_flows
        .iter()
        .map(|f| (f.client, f.url))
        .collect();
    for r in trace.records() {
        if r.mime != MimeType::Json {
            continue;
        }
        if periodic_pairs.contains(&((r.client, r.ua), r.url)) {
            if !r.cache.is_cacheable() {
                report.periodic_uncacheable += 1;
            }
            if r.method.is_upload() {
                report.periodic_uploads += 1;
            }
        }
    }
    report
}

fn client_matches_object(
    client: &DetectedPeriod,
    object: &DetectedPeriod,
    tolerance_bins: usize,
) -> bool {
    // Compare in seconds: the two detections may have run at different
    // effective sampling rates (object flows have more events).
    let tolerance = tolerance_bins as f64
        * (client.period_seconds / client.period_bins.max(1) as f64)
            .max(object.period_seconds / object.period_bins.max(1) as f64);
    // Aggregating many phase-shifted clients can emphasize a small integer
    // multiple (or harmonic) of the true period in the object flow, so the
    // match accepts m·client ≈ object and client ≈ m·object for m ≤ 4.
    for m in 1..=4u32 {
        let m = f64::from(m);
        if (client.period_seconds * m - object.period_seconds).abs() <= tolerance * m
            || (client.period_seconds - object.period_seconds * m).abs() <= tolerance * m
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_trace::{CacheStatus, ClientId, LogRecord, Method, RecordFlags, SimTime};

    /// Builds a trace with one planted periodic object (12 clients polling
    /// every 30s), one noise object, and background traffic.
    fn planted_trace() -> Trace {
        let mut t = Trace::new();
        let periodic = t.intern_url("https://game-0.example/api/scores/live");
        let noise = t.intern_url("https://shop-1.example/api/v1/items/3");
        let mut push = |time: u64, client: u64, url, method, cache| {
            t.push(LogRecord {
                time: SimTime::from_secs(time),
                client: ClientId(client),
                ua: None,
                url,
                method,
                mime: MimeType::Json,
                status: 200,
                response_bytes: 100,
                cache,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        };
        // 12 periodic clients, 30s period, irregular phases (evenly spaced
        // phases would plant a genuine sub-period in the merged flow),
        // 40 min span.
        for c in 0..12u64 {
            let phase = (c * 13) % 30;
            for tick in 0..80u64 {
                push(
                    phase + tick * 30,
                    c,
                    periodic,
                    Method::Post,
                    CacheStatus::NotCacheable,
                );
            }
        }
        // 12 noise clients with pseudo-random (deterministic, aperiodic)
        // arrivals on another object.
        for c in 100..112u64 {
            let mut time = c % 17;
            for k in 0..30u64 {
                // Irregular gaps from a quadratic residue pattern.
                time += 11 + (c * 7 + k * k * 13) % 83;
                push(time, c, noise, Method::Get, CacheStatus::Hit);
            }
        }
        t.sort_by_time();
        t
    }

    fn fast_config() -> PeriodicityStudyConfig {
        PeriodicityStudyConfig {
            detector: PeriodicityConfig {
                permutations: 40,
                parallel: false,
                ..PeriodicityConfig::default()
            },
            ..PeriodicityStudyConfig::default()
        }
    }

    #[test]
    fn recovers_the_planted_period_and_rejects_noise() {
        let trace = planted_trace();
        let report = run_study(&trace, &fast_config());
        assert_eq!(report.object_periods.len(), 1, "exactly the planted object");
        let (&url, &period) = report.object_periods.iter().next().unwrap();
        assert_eq!(trace.url(url), "https://game-0.example/api/scores/live");
        assert!((period - 30.0).abs() <= 2.0, "period {period}");
        // All 12 clients are periodic.
        let fraction = report.periodic_client_fraction[&url];
        assert!(fraction > 0.9, "periodic client fraction {fraction}");
        assert!(report.majority_periodic_object_share() > 0.99);
    }

    #[test]
    fn cross_stats_reflect_planted_method_and_cacheability() {
        let trace = planted_trace();
        let report = run_study(&trace, &fast_config());
        assert!(report.periodic_requests > 0);
        // The planted poller POSTs to an uncacheable endpoint.
        assert_eq!(report.periodic_upload_share(), 1.0);
        assert_eq!(report.periodic_uncacheable_share(), 1.0);
        let share = report.periodic_share();
        // 960 periodic / (960 + 360) total.
        assert!((share - 960.0 / 1320.0).abs() < 0.05, "share {share}");
    }

    #[test]
    fn figures_render_from_report() {
        let trace = planted_trace();
        let report = run_study(&trace, &fast_config());
        let hist = report.period_histogram();
        assert_eq!(hist.total(), 1);
        let cdf = report.client_fraction_cdf();
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let report = run_study(&Trace::new(), &fast_config());
        assert_eq!(report.total_json_requests, 0);
        assert_eq!(report.periodic_share(), 0.0);
        assert!(report.object_periods.is_empty());
    }

    #[test]
    fn filters_drop_small_flows() {
        let mut t = Trace::new();
        let url = t.intern_url("https://game-0.example/api/scores/live");
        // Only 3 clients → below the 10-client filter despite perfect
        // periodicity.
        for c in 0..3u64 {
            for tick in 0..50u64 {
                t.push(LogRecord {
                    time: SimTime::from_secs(tick * 30),
                    client: ClientId(c),
                    ua: None,
                    url,
                    method: Method::Get,
                    mime: MimeType::Json,
                    status: 200,
                    response_bytes: 1,
                    cache: CacheStatus::Hit,
                    retries: 0,
                    flags: RecordFlags::NONE,
                });
            }
        }
        let report = run_study(&t, &fast_config());
        assert!(report.object_periods.is_empty());
        assert_eq!(report.periodic_requests, 0);
    }
}
