//! Windowed §4 partials: per-window request rate, mime/method mix, and
//! top-URL churn over the simulated timeline — the rolling counterpart of
//! the run-to-completion accumulators in [`crate::characterize`].
//!
//! The design mirrors the sharded pipeline's mergeable-partials
//! discipline, with one addition: **interior-window retirement**. A
//! [`SeriesPartial`] accumulates per-bucket tallies (including a
//! URL-count map, the expensive part) for one shard's records, then
//! closes every window that lies strictly inside the shard's time range:
//! the URL map collapses to its top-K list and is dropped. Shards of a
//! `ShardedTrace` are contiguous time partitions, so an interior window
//! can never receive records from another shard — closing it early is
//! exact. Only the boundary windows (first and last touched by the
//! shard) stay live, carrying full URL maps into the merge, where
//! neighbor shards' boundary maps union exactly. The result: per-window
//! rows byte-identical across shard and thread counts, with per-shard
//! memory bounded by the boundary windows instead of the whole run.
//!
//! Churn is the share of a window's top URLs absent from the previous
//! window's top list, in per-mille (integer arithmetic, so the output
//! stays exactly reproducible). The first emitted window has no
//! predecessor and serializes `"churn_pml":null`.

use std::collections::BTreeMap;

use jcdn_obs::json;
use jcdn_obs::timeseries::WindowSpec;
use jcdn_trace::{Interner, LogRecord, Method, MimeType, RecordFlags, RecordStream};

/// Default number of top URLs tracked per window.
pub const DEFAULT_TOP_URLS: usize = 5;

/// Mime classes in emission order, paired with their row labels.
const MIME_LABELS: [&str; 7] = ["json", "html", "css", "js", "image", "video", "other"];

/// Method classes in emission order, paired with their row labels.
const METHOD_LABELS: [&str; 5] = ["GET", "POST", "HEAD", "PUT", "DELETE"];

fn mime_index(mime: MimeType) -> usize {
    match mime {
        MimeType::Json => 0,
        MimeType::Html => 1,
        MimeType::Css => 2,
        MimeType::JavaScript => 3,
        MimeType::Image => 4,
        MimeType::Video => 5,
        MimeType::Other => 6,
    }
}

fn method_index(method: Method) -> usize {
    match method {
        Method::Get => 0,
        Method::Post => 1,
        Method::Head => 2,
        Method::Put => 3,
        Method::Delete => 4,
    }
}

/// Scalar per-window tallies (everything except the URL map).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct WindowStats {
    requests: u64,
    errors: u64,
    retries: u64,
    failures: u64,
    bytes: u64,
    mime: [u64; 7],
    method: [u64; 5],
}

impl WindowStats {
    fn observe(&mut self, record: &LogRecord) {
        self.requests += 1;
        if record.is_error() {
            self.errors += 1;
        }
        if record.retries > 0 || record.flags.contains(RecordFlags::RETRIED) {
            self.retries += 1;
        }
        if record.is_end_user_failure() {
            self.failures += 1;
        }
        self.bytes += record.response_bytes;
        self.mime[mime_index(record.mime)] += 1;
        self.method[method_index(record.method)] += 1;
    }

    fn merge(&mut self, other: &WindowStats) {
        self.requests += other.requests;
        self.errors += other.errors;
        self.retries += other.retries;
        self.failures += other.failures;
        self.bytes += other.bytes;
        for (dst, src) in self.mime.iter_mut().zip(other.mime.iter()) {
            *dst += src;
        }
        for (dst, src) in self.method.iter_mut().zip(other.method.iter()) {
            *dst += src;
        }
    }
}

/// One live base bucket: scalar tallies plus the full URL-count map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct BucketTally {
    stats: WindowStats,
    /// Requests per interned URL id (the retirement target: interior
    /// windows collapse this to a top-K list and drop it).
    urls: BTreeMap<u32, u64>,
}

impl BucketTally {
    fn merge(&mut self, other: &BucketTally) {
        self.stats.merge(&other.stats);
        for (&url, &count) in &other.urls {
            *self.urls.entry(url).or_default() += count;
        }
    }
}

/// A window closed early: stats snapshot plus the collapsed top-K list
/// (`(count, url)`, count-descending then url-ascending).
#[derive(Clone, Debug, PartialEq, Eq)]
struct ClosedWindow {
    stats: WindowStats,
    top: Vec<(u64, u32)>,
}

/// Reduces a URL-count map to its top-K `(count, url)` list: count
/// descending, url id ascending on ties — a total order, so the list is
/// independent of accumulation order.
fn top_k(urls: &BTreeMap<u32, u64>, k: usize) -> Vec<(u64, u32)> {
    let mut entries: Vec<(u64, u32)> = urls.iter().map(|(&u, &c)| (c, u)).collect();
    entries.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    entries.truncate(k);
    entries
}

/// Per-shard windowed §4 state. Accumulate one shard's stream, let the
/// pipeline merge partials in shard order, then
/// [`finalize`][SeriesPartial::finalize] into a [`SeriesReport`].
#[derive(Clone, Debug)]
pub struct SeriesPartial {
    spec: WindowSpec,
    top_urls: usize,
    /// Live buckets still carrying full URL maps (shard-boundary windows
    /// plus anything not yet retired).
    live: BTreeMap<u64, BucketTally>,
    /// Windows closed by interior retirement, exact by construction.
    closed: BTreeMap<u64, ClosedWindow>,
    /// Buckets whose URL maps were dropped by retirement (memory
    /// telemetry; shard-layout-dependent, so never a deterministic
    /// counter).
    buckets_retired: u64,
}

impl SeriesPartial {
    /// An empty partial tracking `top_urls` URLs per window.
    pub fn new(spec: WindowSpec, top_urls: usize) -> SeriesPartial {
        SeriesPartial {
            spec,
            top_urls: top_urls.max(1),
            live: BTreeMap::new(),
            closed: BTreeMap::new(),
            buckets_retired: 0,
        }
    }

    /// The window shape.
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Buckets whose URL maps retirement has dropped so far.
    pub fn buckets_retired(&self) -> u64 {
        self.buckets_retired
    }

    /// Folds one record stream into the per-bucket tallies, then retires
    /// every window strictly interior to the stream's time range (exact
    /// for contiguous time partitions — see the module docs).
    pub fn accumulate(&mut self, stream: &RecordStream<'_>) {
        for record in stream.iter() {
            let bucket = self.spec.bucket_of(record.time.as_micros());
            let tally = self.live.entry(bucket).or_default();
            tally.stats.observe(record);
            *tally.urls.entry(record.url.0).or_default() += 1;
        }
        self.retire_interior();
    }

    /// Closes windows whose every covered bucket lies strictly between
    /// this partial's first and last touched buckets, and drops buckets
    /// no unclosed window still needs.
    fn retire_interior(&mut self) {
        let (Some(&lo), Some(&hi)) = (self.live.keys().next(), self.live.keys().next_back()) else {
            return;
        };
        let per = self.spec.buckets_per_window();
        // Window w covers buckets [w, w + per). Interior ⇔ w > lo and
        // w + per - 1 < hi.
        let first = lo + 1;
        let last = hi.saturating_sub(per); // w + per - 1 < hi ⇔ w ≤ hi - per
        for w in first..=last {
            if let Some(window) = self.close_window(w) {
                self.closed.insert(w, window);
            }
        }
        if first <= last {
            // Buckets needed only by now-closed windows: b is covered by
            // windows (b - per, b], all closed when first ≤ b - per + 1
            // and b ≤ last ⇔ b ≥ first + per - 1 is wrong way — every
            // covering window of b is in [first, last] ⇔ b ≥ first and
            // b - per + 1 ≥ first … simplest exact bound: windows < first
            // keep buckets ≤ lo + per - 1, windows > last keep buckets
            // ≥ last + 1.
            // Unclosed low windows (w ≤ lo) still need buckets up to
            // lo + per - 1; unclosed high windows (w > last) need buckets
            // from last + 1 on. Everything between is only referenced by
            // closed windows.
            let drop_from = lo + per;
            let drop_to = last; // = hi - per
            if drop_from <= drop_to {
                let dropped: Vec<u64> = self
                    .live
                    .range(drop_from..=drop_to)
                    .map(|(&b, _)| b)
                    .collect();
                for b in dropped {
                    self.live.remove(&b);
                    self.buckets_retired += 1;
                }
            }
        }
    }

    /// Builds the closed form of window `w` from live buckets, when any
    /// covered bucket holds data.
    fn close_window(&self, w: u64) -> Option<ClosedWindow> {
        let hi = w.saturating_add(self.spec.buckets_per_window());
        let mut stats = WindowStats::default();
        let mut urls: BTreeMap<u32, u64> = BTreeMap::new();
        let mut any = false;
        for (_, tally) in self.live.range(w..hi) {
            stats.merge(&tally.stats);
            for (&url, &count) in &tally.urls {
                *urls.entry(url).or_default() += count;
            }
            any = true;
        }
        any.then(|| ClosedWindow {
            stats,
            top: top_k(&urls, self.top_urls),
        })
    }

    /// Merges another shard's partial: closed windows land on disjoint
    /// indexes for contiguous shards (defensively, a collision merges
    /// stats and re-merges top lists deterministically); live boundary
    /// buckets union exactly.
    pub fn merge(&mut self, other: &SeriesPartial) {
        for (&w, theirs) in &other.closed {
            match self.closed.get_mut(&w) {
                None => {
                    self.closed.insert(w, theirs.clone());
                }
                Some(mine) => {
                    mine.stats.merge(&theirs.stats);
                    let mut counts: BTreeMap<u32, u64> = BTreeMap::new();
                    for &(c, u) in mine.top.iter().chain(theirs.top.iter()) {
                        *counts.entry(u).or_default() += c;
                    }
                    mine.top = top_k(&counts, self.top_urls);
                }
            }
        }
        for (&b, tally) in &other.live {
            self.live.entry(b).or_default().merge(tally);
        }
        self.buckets_retired += other.buckets_retired;
    }

    /// Closes every remaining window, resolves top URLs against
    /// `interner`, and computes churn between consecutive emitted
    /// windows. Integer arithmetic throughout — the rows serialize
    /// byte-identically for identical record sets.
    pub fn finalize(mut self, interner: &Interner) -> SeriesReport {
        // Candidate windows: everything already closed plus every window
        // overlapping a live bucket.
        let mut windows: Vec<u64> = self.closed.keys().copied().collect();
        if let (Some(&lo), Some(&hi)) = (self.live.keys().next(), self.live.keys().next_back()) {
            let per = self.spec.buckets_per_window();
            for w in lo.saturating_sub(per - 1)..=hi {
                if !self.closed.contains_key(&w) {
                    if let Some(cw) = self.close_window(w) {
                        self.closed.insert(w, cw);
                        windows.push(w);
                    }
                }
            }
        }
        windows.sort_unstable();
        windows.dedup();

        let mut rows = Vec::with_capacity(windows.len());
        let mut prev_top: Option<Vec<u32>> = None;
        for w in windows {
            let Some(closed) = self.closed.get(&w) else {
                continue;
            };
            let top_ids: Vec<u32> = closed.top.iter().map(|&(_, u)| u).collect();
            let churn_pml = match (&prev_top, top_ids.is_empty()) {
                (Some(prev), false) => {
                    let new = top_ids.iter().filter(|u| !prev.contains(u)).count() as u64;
                    Some(new * 1000 / top_ids.len() as u64)
                }
                _ => None,
            };
            rows.push(SeriesRow {
                window: w,
                start_us: self.spec.window_start_us(w),
                end_us: self.spec.window_end_us(w),
                requests: closed.stats.requests,
                errors: closed.stats.errors,
                retries: closed.stats.retries,
                failures: closed.stats.failures,
                bytes: closed.stats.bytes,
                mime: closed.stats.mime,
                method: closed.stats.method,
                top_urls: closed
                    .top
                    .iter()
                    .map(|&(count, u)| (interner.url(jcdn_trace::UrlId(u)).to_string(), count))
                    .collect(),
                churn_pml,
            });
            prev_top = Some(top_ids);
        }
        SeriesReport {
            spec: self.spec,
            rows,
        }
    }
}

/// One emitted §4 window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesRow {
    /// Window index (`start_us / slide_us`).
    pub window: u64,
    /// Window start on the simulated timeline, µs.
    pub start_us: u64,
    /// Exclusive window end, µs.
    pub end_us: u64,
    /// Request records arriving in the window (attempts, like §4 totals).
    pub requests: u64,
    /// HTTP 5xx records.
    pub errors: u64,
    /// Retry attempts (a record that is a retry, or scheduled one).
    pub retries: u64,
    /// End-user failures (5xx with no retry after it).
    pub failures: u64,
    /// Response bytes served.
    pub bytes: u64,
    /// Requests per mime class, [`MIME_LABELS`] order.
    pub mime: [u64; 7],
    /// Requests per method, [`METHOD_LABELS`] order.
    pub method: [u64; 5],
    /// Top URLs by request count: `(url, count)`, count-descending.
    pub top_urls: Vec<(String, u64)>,
    /// Share of `top_urls` absent from the previous window's list, in
    /// per-mille. `None` for the first emitted window.
    pub churn_pml: Option<u64>,
}

impl SeriesRow {
    /// Requests per simulated second, floored (integer, for display).
    pub fn rate_per_sec(&self) -> u64 {
        let width_us = self.end_us.saturating_sub(self.start_us).max(1);
        self.requests.saturating_mul(1_000_000) / width_us
    }

    /// Serializes as one canonical JSONL line (no trailing newline),
    /// tagged `"stream":"section4"`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut w = json::ObjectWriter::begin(&mut out);
        w.field_str("stream", "section4");
        w.field_u64("window", self.window);
        w.field_u64("start_us", self.start_us);
        w.field_u64("end_us", self.end_us);
        w.field_u64("requests", self.requests);
        w.field_u64("errors", self.errors);
        w.field_u64("retries", self.retries);
        w.field_u64("failures", self.failures);
        w.field_u64("bytes", self.bytes);
        let mime = json::object_of_u64(
            MIME_LABELS
                .iter()
                .zip(self.mime.iter())
                .filter(|(_, &n)| n > 0)
                .map(|(&l, &n)| (l, n)),
        );
        w.field_raw("mime", &mime);
        let method = json::object_of_u64(
            METHOD_LABELS
                .iter()
                .zip(self.method.iter())
                .filter(|(_, &n)| n > 0)
                .map(|(&l, &n)| (l, n)),
        );
        w.field_raw("method", &method);
        let mut urls = String::from("[");
        for (i, (url, count)) in self.top_urls.iter().enumerate() {
            if i > 0 {
                urls.push(',');
            }
            let mut one = String::new();
            let mut uw = json::ObjectWriter::begin(&mut one);
            uw.field_str("url", url);
            uw.field_u64("requests", *count);
            uw.end();
            urls.push_str(&one);
        }
        urls.push(']');
        w.field_raw("top_urls", &urls);
        match self.churn_pml {
            Some(pml) => w.field_u64("churn_pml", pml),
            None => w.field_raw("churn_pml", "null"),
        }
        w.end();
        out
    }
}

/// The windowed §4 report: one row per non-empty window, in time order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesReport {
    /// The window shape the rows were computed under.
    pub spec: WindowSpec,
    /// Non-empty windows in index order.
    pub rows: Vec<SeriesRow>,
}

impl SeriesReport {
    /// Single-pass series over a whole trace (the unsharded route; the
    /// sharded pipeline produces byte-identical rows).
    pub fn compute(trace: &jcdn_trace::Trace, spec: WindowSpec, top_urls: usize) -> SeriesReport {
        let mut partial = SeriesPartial::new(spec, top_urls);
        partial.accumulate(&trace.stream());
        partial.finalize(trace.interner())
    }

    /// Sharded series without the rest of the §4 pipeline: one
    /// [`SeriesPartial`] per shard on a `threads`-wide pool, merged in
    /// shard order. Byte-identical to [`compute`][Self::compute] for any
    /// shard and thread count.
    pub fn compute_sharded(
        sharded: &jcdn_trace::ShardedTrace,
        threads: usize,
        spec: WindowSpec,
        top_urls: usize,
    ) -> SeriesReport {
        let partials = jcdn_exec::scatter_gather_labeled(
            "series.shards",
            sharded.shard_count(),
            threads,
            |i| {
                let mut partial = SeriesPartial::new(spec, top_urls);
                partial.accumulate(&sharded.shard_stream(i));
                partial
            },
        );
        let mut total = SeriesPartial::new(spec, top_urls);
        for partial in &partials {
            total.merge(partial);
        }
        total.finalize(sharded.interner())
    }

    /// Serializes every row as canonical JSONL, newline-terminated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&row.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// The busiest window, by request count (ties to the earlier window).
    pub fn peak(&self) -> Option<&SeriesRow> {
        self.rows.iter().reduce(|best, row| {
            if row.requests > best.requests {
                row
            } else {
                best
            }
        })
    }

    /// Mean top-URL churn across rows that have one, in per-mille.
    pub fn mean_churn_pml(&self) -> Option<u64> {
        let churns: Vec<u64> = self.rows.iter().filter_map(|r| r.churn_pml).collect();
        if churns.is_empty() {
            return None;
        }
        Some(churns.iter().sum::<u64>() / churns.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_trace::{CacheStatus, ClientId, ShardedTrace, SimTime, Trace};

    fn spec(s: &str) -> WindowSpec {
        match WindowSpec::parse(s) {
            Ok(spec) => spec,
            Err(e) => unreachable!("bad test spec {s}: {e}"),
        }
    }

    fn sample_trace(records: usize) -> Trace {
        let mut t = Trace::new();
        let urls: Vec<_> = (0..7)
            .map(|i| t.intern_url(&format!("https://api.example/o/{i}")))
            .collect();
        for i in 0..records as u64 {
            t.push(LogRecord {
                time: SimTime::from_micros(i * 7_000_000), // one per 7s
                client: ClientId(i % 5),
                ua: None,
                url: urls[(i % 7) as usize],
                method: if i % 4 == 0 {
                    Method::Post
                } else {
                    Method::Get
                },
                mime: if i % 3 == 0 {
                    MimeType::Json
                } else {
                    MimeType::Html
                },
                status: if i % 11 == 0 { 503 } else { 200 },
                response_bytes: 100 + i,
                cache: CacheStatus::Hit,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        t
    }

    fn series_of(trace: &Trace, shards: usize, s: &str) -> SeriesReport {
        let sharded = ShardedTrace::from_trace(trace.clone(), shards);
        let mut total = SeriesPartial::new(spec(s), DEFAULT_TOP_URLS);
        for i in 0..sharded.shard_count() {
            let mut partial = SeriesPartial::new(spec(s), DEFAULT_TOP_URLS);
            partial.accumulate(&sharded.shard_stream(i));
            total.merge(&partial);
        }
        total.finalize(sharded.interner())
    }

    #[test]
    fn rows_partition_the_trace() {
        let trace = sample_trace(120);
        let report = series_of(&trace, 1, "1m");
        let total: u64 = report.rows.iter().map(|r| r.requests).sum();
        assert_eq!(total, trace.len() as u64);
        let mime_total: u64 = report.rows.iter().flat_map(|r| r.mime.iter()).sum();
        assert_eq!(mime_total, trace.len() as u64);
        assert!(report.rows.windows(2).all(|w| w[0].window < w[1].window));
        assert_eq!(report.rows[0].churn_pml, None, "first row has no churn");
    }

    #[test]
    fn sharded_series_is_byte_identical_to_single_shard() {
        let trace = sample_trace(200);
        for s in ["1m", "2m/1m", "5m"] {
            let single = series_of(&trace, 1, s);
            for shards in [2, 4, 8] {
                let sharded = series_of(&trace, shards, s);
                assert_eq!(
                    single.to_jsonl(),
                    sharded.to_jsonl(),
                    "spec {s}, {shards} shards"
                );
            }
        }
    }

    #[test]
    fn interior_retirement_drops_buckets() {
        let trace = sample_trace(300);
        let sharded = ShardedTrace::from_trace(trace, 1);
        let mut partial = SeriesPartial::new(spec("1m"), DEFAULT_TOP_URLS);
        partial.accumulate(&sharded.shard_stream(0));
        assert!(
            partial.buckets_retired() > 0,
            "interior windows must retire their URL maps"
        );
        // The live set holds only the boundary neighborhoods.
        assert!(partial.live.len() <= 2);
    }

    #[test]
    fn churn_reflects_top_url_turnover() {
        let mut t = Trace::new();
        let a = t.intern_url("https://x/a");
        let b = t.intern_url("https://x/b");
        for (time_s, url) in [(0u64, a), (1, a), (70, b), (71, b)] {
            t.push(LogRecord {
                time: SimTime::from_secs(time_s),
                client: ClientId(0),
                ua: None,
                url,
                method: Method::Get,
                mime: MimeType::Json,
                status: 200,
                response_bytes: 1,
                cache: CacheStatus::Hit,
                retries: 0,
                flags: RecordFlags::NONE,
            });
        }
        let report = series_of(&t, 1, "1m");
        assert_eq!(report.rows.len(), 2);
        // Window 1's only top URL (b) is new: 1000‰ churn.
        assert_eq!(report.rows[1].churn_pml, Some(1000));
        assert_eq!(report.rows[0].top_urls[0].0, "https://x/a");
        assert_eq!(report.peak().map(|r| r.window), Some(0));
    }

    #[test]
    fn jsonl_rows_are_canonical() {
        let trace = sample_trace(10);
        let report = series_of(&trace, 1, "1m");
        let line = report.rows[0].to_jsonl();
        assert!(line.starts_with("{\"stream\":\"section4\",\"window\":0,"));
        assert!(line.contains("\"mime\":{"));
        assert!(line.contains("\"top_urls\":[{\"url\":"));
    }
}
