//! §4 — characterizing JSON traffic.
//!
//! Every breakdown here follows the sharded-pipeline accumulator shape:
//! `accumulate` folds a [`RecordStream`] (a whole trace, one shard, or any
//! record subset) into partial counts, `merge` combines partials exactly
//! (associative and commutative), and the original `compute(&Trace)`
//! constructors remain as single-shard conveniences. Per-shard results
//! therefore equal the single-pass result bit-for-bit, which the
//! `shard_invariance` integration tests assert.

use std::collections::BTreeMap;

use jcdn_stats::ExactQuantiles;
use jcdn_trace::{Interner, MimeType, RecordFlags, RecordStream, Trace, UaId};
use jcdn_ua::{classify, Classification, DeviceType};
use jcdn_workload::IndustryCategory;

use crate::taxonomy::RequestType;

/// Pre-classified user-agent table: each distinct UA string classified
/// once, shared by every shard's accumulation pass (records reference UAs
/// by id, so classification cost is per-string, not per-record).
#[derive(Clone, Debug)]
pub struct UaClassTable {
    classes: Vec<Classification>,
    missing: Classification,
}

impl UaClassTable {
    /// Classifies every UA in the interner's table.
    pub fn build(interner: &Interner) -> Self {
        UaClassTable {
            classes: interner
                .ua_table()
                .iter()
                .map(|ua| classify(Some(ua.as_ref())))
                .collect(),
            missing: classify(None),
        }
    }

    /// The classification for a record's UA id (`None` ⇒ header absent).
    pub fn class(&self, ua: Option<UaId>) -> &Classification {
        match ua {
            Some(ua) => &self.classes[ua.0 as usize],
            None => &self.missing,
        }
    }

    /// Iterates the classifications of all distinct UA strings.
    pub fn classes(&self) -> impl Iterator<Item = &Classification> {
        self.classes.iter()
    }
}

/// Figure 3: the breakdown of JSON requests by device type, plus the
/// browser/non-browser and UA-string-level shares §4 reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficSourceBreakdown {
    /// JSON request counts per device type.
    pub requests_by_device: BTreeMap<DeviceType, u64>,
    /// Distinct UA strings per device type (the paper's "distribution of
    /// user agent strings": 73% Mobile / 17% Embedded / 3% Desktop / 7%
    /// Unknown). Filled by [`count_ua_strings`][Self::count_ua_strings],
    /// not by record accumulation — it is a property of the shared UA
    /// table, so per-shard partials leave it empty and the merged result
    /// counts it once.
    pub ua_strings_by_device: BTreeMap<DeviceType, u64>,
    /// JSON requests issued by browsers.
    pub browser_requests: u64,
    /// JSON requests issued by mobile browsers.
    pub mobile_browser_requests: u64,
    /// JSON requests issued by browsers on embedded devices (paper: 0).
    pub embedded_browser_requests: u64,
    /// Total JSON requests.
    pub total: u64,
}

impl TrafficSourceBreakdown {
    /// Computes the breakdown over the trace's JSON records.
    pub fn compute(trace: &Trace) -> Self {
        let classes = UaClassTable::build(trace.interner());
        let mut out = TrafficSourceBreakdown::default();
        out.accumulate(&trace.stream(), &classes);
        out.count_ua_strings(&classes);
        out
    }

    /// Folds one record stream into the request counters.
    pub fn accumulate(&mut self, stream: &RecordStream<'_>, classes: &UaClassTable) {
        for r in stream.iter() {
            if r.mime != MimeType::Json {
                continue;
            }
            let c = classes.class(r.ua);
            self.total += 1;
            *self.requests_by_device.entry(c.device).or_default() += 1;
            if c.is_browser {
                self.browser_requests += 1;
                match c.device {
                    DeviceType::Mobile => self.mobile_browser_requests += 1,
                    DeviceType::Embedded => self.embedded_browser_requests += 1,
                    _ => {}
                }
            }
        }
    }

    /// Adds `other`'s request counters into `self`. Call on per-shard
    /// partials (whose `ua_strings_by_device` is still empty), then
    /// [`count_ua_strings`][Self::count_ua_strings] once on the total.
    pub fn merge(&mut self, other: &TrafficSourceBreakdown) {
        for (&device, &count) in &other.requests_by_device {
            *self.requests_by_device.entry(device).or_default() += count;
        }
        for (&device, &count) in &other.ua_strings_by_device {
            *self.ua_strings_by_device.entry(device).or_default() += count;
        }
        self.browser_requests += other.browser_requests;
        self.mobile_browser_requests += other.mobile_browser_requests;
        self.embedded_browser_requests += other.embedded_browser_requests;
        self.total += other.total;
    }

    /// Fills the distinct-UA-string distribution from the shared UA table.
    /// The UA table is global to all shards, so this runs once per report,
    /// not once per shard.
    pub fn count_ua_strings(&mut self, classes: &UaClassTable) {
        for c in classes.classes() {
            *self.ua_strings_by_device.entry(c.device).or_default() += 1;
        }
    }

    /// Request share of a device type in `[0, 1]`.
    pub fn request_share(&self, device: DeviceType) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.requests_by_device.get(&device).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Distinct-UA-string share of a device type.
    pub fn ua_share(&self, device: DeviceType) -> f64 {
        let total: u64 = self.ua_strings_by_device.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.ua_strings_by_device.get(&device).unwrap_or(&0) as f64 / total as f64
    }

    /// Share of JSON requests that are non-browser (paper: 88%).
    pub fn non_browser_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        1.0 - self.browser_requests as f64 / self.total as f64
    }
}

/// §4's request-type split: GET/downloads vs POST/uploads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestTypeBreakdown {
    /// JSON download (GET/HEAD) requests.
    pub downloads: u64,
    /// JSON upload (POST/PUT) requests.
    pub uploads: u64,
    /// Everything else.
    pub other: u64,
}

impl RequestTypeBreakdown {
    /// Computes the split over JSON records.
    pub fn compute(trace: &Trace) -> Self {
        let mut out = RequestTypeBreakdown::default();
        out.accumulate(&trace.stream());
        out
    }

    /// Folds one record stream into the counters.
    pub fn accumulate(&mut self, stream: &RecordStream<'_>) {
        for r in stream.iter() {
            if r.mime != MimeType::Json {
                continue;
            }
            match RequestType::from_method(r.method) {
                RequestType::Download => self.downloads += 1,
                RequestType::Upload => self.uploads += 1,
                RequestType::Other => self.other += 1,
            }
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &RequestTypeBreakdown) {
        self.downloads += other.downloads;
        self.uploads += other.uploads;
        self.other += other.other;
    }

    /// Total JSON requests.
    pub fn total(&self) -> u64 {
        self.downloads + self.uploads + self.other
    }

    /// GET share (paper: 84%).
    pub fn download_share(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.downloads as f64 / self.total() as f64
    }

    /// Of the non-download remainder, the share that uploads (paper: 96%).
    pub fn upload_share_of_rest(&self) -> f64 {
        let rest = self.uploads + self.other;
        if rest == 0 {
            return 0.0;
        }
        self.uploads as f64 / rest as f64
    }
}

/// §4's response-type characterization: cacheability and sizes.
#[derive(Clone, Debug, Default)]
pub struct ResponseTypeBreakdown {
    /// JSON requests marked uncacheable.
    pub json_uncacheable: u64,
    /// Total JSON requests.
    pub json_total: u64,
    /// JSON response-size distribution.
    pub json_sizes: ExactQuantiles,
    /// HTML response-size distribution.
    pub html_sizes: ExactQuantiles,
}

impl ResponseTypeBreakdown {
    /// Computes cacheability and size distributions.
    pub fn compute(trace: &Trace) -> Self {
        let mut out = ResponseTypeBreakdown::default();
        out.accumulate(&trace.stream());
        out
    }

    /// Folds one record stream into the counters and size samples.
    pub fn accumulate(&mut self, stream: &RecordStream<'_>) {
        for r in stream.iter() {
            match r.mime {
                MimeType::Json => {
                    self.json_total += 1;
                    if !r.cache.is_cacheable() {
                        self.json_uncacheable += 1;
                    }
                    self.json_sizes.record(r.response_bytes as f64);
                }
                MimeType::Html => self.html_sizes.record(r.response_bytes as f64),
                _ => {}
            }
        }
    }

    /// Absorbs `other`'s counters and size samples. Quantile queries over
    /// the merged breakdown equal single-pass queries (order statistics
    /// are insertion-order-insensitive).
    pub fn merge(&mut self, other: &ResponseTypeBreakdown) {
        self.json_uncacheable += other.json_uncacheable;
        self.json_total += other.json_total;
        self.json_sizes.merge(&other.json_sizes);
        self.html_sizes.merge(&other.html_sizes);
    }

    /// Uncacheable share of JSON traffic (paper: ~55%).
    pub fn uncacheable_share(&self) -> f64 {
        if self.json_total == 0 {
            return 0.0;
        }
        self.json_uncacheable as f64 / self.json_total as f64
    }

    /// How much smaller JSON is than HTML at quantile `q`, as a fraction
    /// (paper: 0.24 at the median, 0.87 at p75). `None` when either
    /// distribution is empty.
    pub fn json_smaller_than_html_at(&mut self, q: f64) -> Option<f64> {
        let json = self.json_sizes.quantile(q)?;
        let html = self.html_sizes.quantile(q)?;
        (html > 0.0).then(|| 1.0 - json / html)
    }
}

/// Figure 1 support: JSON and HTML request counts, and their ratio.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContentMix {
    /// JSON responses.
    pub json: u64,
    /// HTML responses.
    pub html: u64,
}

impl ContentMix {
    /// Counts JSON/HTML responses over the trace.
    pub fn compute(trace: &Trace) -> Self {
        let mut out = ContentMix::default();
        out.accumulate(&trace.stream());
        out
    }

    /// Folds one record stream into the counters.
    pub fn accumulate(&mut self, stream: &RecordStream<'_>) {
        for r in stream.iter() {
            match r.mime {
                MimeType::Json => self.json += 1,
                MimeType::Html => self.html += 1,
                _ => {}
            }
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &ContentMix) {
        self.json += other.json;
        self.html += other.html;
    }

    /// The JSON:HTML request-count ratio, or `None` without HTML traffic.
    pub fn ratio(&self) -> Option<f64> {
        (self.html > 0).then(|| self.json as f64 / self.html as f64)
    }
}

/// Maps a domain (URL host) to its industry category.
///
/// The paper used a commercial categorization service \[10\]; the synthetic
/// universe encodes the category in the hostname, and real deployments can
/// plug in an actual service.
pub trait CategoryProvider {
    /// The category for `host`, or `None` when unknown.
    fn category(&self, host: &str) -> Option<IndustryCategory>;
}

/// Category provider for the synthetic universe: reads the industry token
/// the workload generator prefixes hostnames with (`sports-17.example` →
/// `Sports`).
#[derive(Clone, Copy, Debug, Default)]
pub struct TokenCategoryProvider;

impl CategoryProvider for TokenCategoryProvider {
    fn category(&self, host: &str) -> Option<IndustryCategory> {
        let token = host.split('-').next()?;
        IndustryCategory::ALL
            .iter()
            .copied()
            .find(|c| c.host_token() == token)
    }
}

/// Mergeable per-domain cacheability counts — the accumulator behind
/// [`CacheabilityHeatmap`].
///
/// The heatmap buckets each domain's cacheable *fraction*, and fractions
/// from partial streams cannot be combined after bucketing (a domain split
/// across shards would be counted twice). Partials therefore carry the raw
/// `(cacheable, total)` counts per domain and bucket only at
/// [`finalize`][Self::finalize].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DomainCacheability {
    /// `host → (cacheable JSON requests, total JSON requests)`.
    pub per_domain: BTreeMap<String, (u64, u64)>,
}

impl DomainCacheability {
    /// Folds one record stream into the per-domain counts.
    pub fn accumulate(&mut self, stream: &RecordStream<'_>) {
        for r in stream.iter() {
            if r.mime != MimeType::Json {
                continue;
            }
            let host = stream.host_of(r.url);
            // Look up by &str first so only new hosts allocate a key.
            let entry = match self.per_domain.get_mut(host) {
                Some(entry) => entry,
                None => self.per_domain.entry(host.to_owned()).or_default(),
            };
            entry.1 += 1;
            if r.cache.is_cacheable() {
                entry.0 += 1;
            }
        }
    }

    /// Adds `other`'s counts into `self`, summing per-domain pairs.
    pub fn merge(&mut self, other: &DomainCacheability) {
        for (host, &(cacheable, total)) in &other.per_domain {
            let entry = match self.per_domain.get_mut(host.as_str()) {
                Some(entry) => entry,
                None => self.per_domain.entry(host.clone()).or_default(),
            };
            entry.0 += cacheable;
            entry.1 += total;
        }
    }

    /// Buckets the per-domain fractions into a heatmap.
    pub fn finalize(&self, provider: &dyn CategoryProvider, buckets: usize) -> CacheabilityHeatmap {
        assert!(buckets >= 2, "need at least two buckets");
        let mut rows: BTreeMap<IndustryCategory, Vec<u64>> = BTreeMap::new();
        let mut uncategorized = 0;
        for (host, &(cacheable, total)) in &self.per_domain {
            let Some(category) = provider.category(host) else {
                uncategorized += 1;
                continue;
            };
            let fraction = cacheable as f64 / total as f64;
            let bucket = ((fraction * buckets as f64) as usize).min(buckets - 1);
            rows.entry(category).or_insert_with(|| vec![0; buckets])[bucket] += 1;
        }
        CacheabilityHeatmap {
            buckets,
            rows,
            uncategorized,
        }
    }
}

/// Figure 4: the heatmap of per-domain cacheability by industry category.
///
/// Each domain's *cacheable request fraction* is computed from its JSON
/// records, then bucketed into `buckets` equal-width cells; the heatmap
/// row for a category is the distribution of its domains over those cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheabilityHeatmap {
    /// Number of cacheability buckets (columns).
    pub buckets: usize,
    /// `rows[category] = domain counts per bucket`.
    pub rows: BTreeMap<IndustryCategory, Vec<u64>>,
    /// Domains whose host had no category.
    pub uncategorized: u64,
}

impl CacheabilityHeatmap {
    /// Computes the heatmap over JSON records.
    pub fn compute(trace: &Trace, provider: &dyn CategoryProvider, buckets: usize) -> Self {
        let mut counts = DomainCacheability::default();
        counts.accumulate(&trace.stream());
        counts.finalize(provider, buckets)
    }

    /// Fraction of all categorized domains in the lowest bucket ("never
    /// cacheable"; paper: ~50%).
    pub fn never_cacheable_share(&self) -> f64 {
        self.bucket_share(0)
    }

    /// Fraction of all categorized domains in the highest bucket ("always
    /// cacheable"; paper: ~30%).
    pub fn always_cacheable_share(&self) -> f64 {
        self.bucket_share(self.buckets - 1)
    }

    fn bucket_share(&self, bucket: usize) -> f64 {
        let total: u64 = self.rows.values().flat_map(|row| row.iter()).sum();
        if total == 0 {
            return 0.0;
        }
        let in_bucket: u64 = self.rows.values().map(|row| row[bucket]).sum();
        in_bucket as f64 / total as f64
    }

    /// Mean cacheable-domain-fraction for one category row (bucket
    /// midpoints weighted by counts), or `None` when the row is absent.
    pub fn row_mean(&self, category: IndustryCategory) -> Option<f64> {
        let row = self.rows.get(&category)?;
        let total: u64 = row.iter().sum();
        if total == 0 {
            return None;
        }
        let weighted: f64 = row
            .iter()
            .enumerate()
            .map(|(b, &count)| (b as f64 + 0.5) / self.buckets as f64 * count as f64)
            .sum();
        Some(weighted / total as f64)
    }
}

/// Availability under faults: what fraction of requests ultimately failed,
/// how hard clients retried, and how often the edge's graceful-degradation
/// machinery (serve-stale, negative caching, coalescing) fired.
///
/// Works on any trace; fault-free traces simply report near-perfect
/// availability. Counts cover *all* records, not just JSON — availability
/// is a service-level property.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AvailabilityBreakdown {
    /// Log records, i.e. delivery attempts (retries included).
    pub attempts: u64,
    /// Attempts that failed and were retried (non-final attempts).
    pub retried_attempts: u64,
    /// 5xx responses with no retry behind them — what the end user saw.
    pub end_user_failures: u64,
    /// All 5xx attempts, retried or not (the origin-side error count).
    pub attempt_failures: u64,
    /// Responses rescued by serve-stale.
    pub stale_serves: u64,
    /// Responses answered out of the negative cache.
    pub neg_cached: u64,
    /// Cache hits that waited on a coalesced in-flight fetch.
    pub coalesced: u64,
    /// Per-industry `(end-user failures, logical requests)` tallies.
    pub per_industry: BTreeMap<IndustryCategory, (u64, u64)>,
    /// Logical requests on hosts with no category.
    pub uncategorized: u64,
}

impl AvailabilityBreakdown {
    /// Computes the breakdown over every record in the trace.
    pub fn compute(trace: &Trace, provider: &dyn CategoryProvider) -> Self {
        let mut out = AvailabilityBreakdown::default();
        out.accumulate(&trace.stream(), provider);
        out
    }

    /// Folds one record stream into the counters.
    pub fn accumulate(&mut self, stream: &RecordStream<'_>, provider: &dyn CategoryProvider) {
        for r in stream.iter() {
            self.attempts += 1;
            let retried = r.flags.contains(RecordFlags::RETRIED);
            let failed = r.status >= 500;
            if retried {
                self.retried_attempts += 1;
            }
            if failed {
                self.attempt_failures += 1;
            }
            if r.flags.contains(RecordFlags::SERVED_STALE) {
                self.stale_serves += 1;
            }
            if r.flags.contains(RecordFlags::NEG_CACHED) {
                self.neg_cached += 1;
            }
            if r.flags.contains(RecordFlags::COALESCED) {
                self.coalesced += 1;
            }
            // Final attempts are the logical requests; a failed final
            // attempt is an end-user failure.
            if !retried {
                if failed {
                    self.end_user_failures += 1;
                }
                match provider.category(stream.host_of(r.url)) {
                    Some(category) => {
                        let entry = self.per_industry.entry(category).or_default();
                        entry.1 += 1;
                        if failed {
                            entry.0 += 1;
                        }
                    }
                    None => self.uncategorized += 1,
                }
            }
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &AvailabilityBreakdown) {
        self.attempts += other.attempts;
        self.retried_attempts += other.retried_attempts;
        self.end_user_failures += other.end_user_failures;
        self.attempt_failures += other.attempt_failures;
        self.stale_serves += other.stale_serves;
        self.neg_cached += other.neg_cached;
        self.coalesced += other.coalesced;
        for (&category, &(failures, logical)) in &other.per_industry {
            let entry = self.per_industry.entry(category).or_default();
            entry.0 += failures;
            entry.1 += logical;
        }
        self.uncategorized += other.uncategorized;
    }

    /// Logical requests: final attempts (attempts minus retried ones).
    pub fn logical_requests(&self) -> u64 {
        self.attempts - self.retried_attempts
    }

    /// Share of logical requests that ultimately failed.
    pub fn end_user_error_rate(&self) -> f64 {
        let logical = self.logical_requests();
        if logical == 0 {
            return 0.0;
        }
        self.end_user_failures as f64 / logical as f64
    }

    /// Share of *attempts* that failed — the origin-side error rate the
    /// retry layer hides from end users.
    pub fn attempt_error_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.attempt_failures as f64 / self.attempts as f64
    }

    /// Attempts per logical request (`1.0` when nothing was retried).
    pub fn retry_amplification(&self) -> f64 {
        let logical = self.logical_requests();
        if logical == 0 {
            return 1.0;
        }
        self.attempts as f64 / logical as f64
    }

    /// Share of logical requests rescued by serve-stale.
    pub fn stale_serve_share(&self) -> f64 {
        let logical = self.logical_requests();
        if logical == 0 {
            return 0.0;
        }
        self.stale_serves as f64 / logical as f64
    }

    /// Availability (`1 - error rate`) for one industry category, or
    /// `None` when no logical request hit that category.
    pub fn industry_availability(&self, category: IndustryCategory) -> Option<f64> {
        let &(failures, logical) = self.per_industry.get(&category)?;
        (logical > 0).then(|| 1.0 - failures as f64 / logical as f64)
    }
}

/// Figure 1 support: the JSON:HTML request-count ratio of a trace.
pub fn json_html_ratio(trace: &Trace) -> Option<f64> {
    ContentMix::compute(trace).ratio()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_trace::{
        CacheStatus, ClientId, LogRecord, Method, RecordFlags, ShardedTrace, SimTime, UaId,
    };

    fn push(
        trace: &mut Trace,
        url: &str,
        ua: Option<UaId>,
        method: Method,
        mime: MimeType,
        bytes: u64,
        cache: CacheStatus,
    ) {
        let url = trace.intern_url(url);
        trace.push(LogRecord {
            time: SimTime::ZERO,
            client: ClientId(1),
            ua,
            url,
            method,
            mime,
            status: 200,
            response_bytes: bytes,
            cache,
            retries: 0,
            flags: RecordFlags::NONE,
        });
    }

    #[test]
    fn traffic_source_counts_json_only() {
        let mut t = Trace::new();
        let app = t.intern_ua("NewsApp/1.0 (iPhone; iOS 12.4)");
        let browser = t.intern_ua(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
             (KHTML, like Gecko) Chrome/74.0.3729.131 Safari/537.36",
        );
        push(
            &mut t,
            "https://a.example/j",
            Some(app),
            Method::Get,
            MimeType::Json,
            10,
            CacheStatus::Hit,
        );
        push(
            &mut t,
            "https://a.example/j",
            Some(browser),
            Method::Get,
            MimeType::Json,
            10,
            CacheStatus::Hit,
        );
        push(
            &mut t,
            "https://a.example/h",
            Some(browser),
            Method::Get,
            MimeType::Html,
            10,
            CacheStatus::Hit,
        );
        push(
            &mut t,
            "https://a.example/j",
            None,
            Method::Get,
            MimeType::Json,
            10,
            CacheStatus::Hit,
        );

        let b = TrafficSourceBreakdown::compute(&t);
        assert_eq!(b.total, 3, "HTML records are excluded");
        assert_eq!(b.request_share(DeviceType::Mobile), 1.0 / 3.0);
        assert_eq!(b.request_share(DeviceType::Desktop), 1.0 / 3.0);
        assert_eq!(b.request_share(DeviceType::Unknown), 1.0 / 3.0);
        assert_eq!(b.browser_requests, 1);
        assert!((b.non_browser_share() - 2.0 / 3.0).abs() < 1e-12);
        // UA strings: one mobile, one desktop.
        assert_eq!(b.ua_share(DeviceType::Mobile), 0.5);
    }

    #[test]
    fn request_type_shares() {
        let mut t = Trace::new();
        for _ in 0..84 {
            push(
                &mut t,
                "https://a.example/x",
                None,
                Method::Get,
                MimeType::Json,
                1,
                CacheStatus::Hit,
            );
        }
        for _ in 0..15 {
            push(
                &mut t,
                "https://a.example/x",
                None,
                Method::Post,
                MimeType::Json,
                1,
                CacheStatus::Hit,
            );
        }
        push(
            &mut t,
            "https://a.example/x",
            None,
            Method::Delete,
            MimeType::Json,
            1,
            CacheStatus::Hit,
        );
        let b = RequestTypeBreakdown::compute(&t);
        assert_eq!(b.total(), 100);
        assert!((b.download_share() - 0.84).abs() < 1e-12);
        assert!((b.upload_share_of_rest() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn response_type_sizes_and_cacheability() {
        let mut t = Trace::new();
        for i in 0..10 {
            push(
                &mut t,
                "https://a.example/j",
                None,
                Method::Get,
                MimeType::Json,
                100 + i,
                if i < 6 {
                    CacheStatus::NotCacheable
                } else {
                    CacheStatus::Hit
                },
            );
            push(
                &mut t,
                "https://a.example/h",
                None,
                Method::Get,
                MimeType::Html,
                1000 + i,
                CacheStatus::Hit,
            );
        }
        let mut b = ResponseTypeBreakdown::compute(&t);
        assert!((b.uncacheable_share() - 0.6).abs() < 1e-12);
        let smaller = b.json_smaller_than_html_at(0.5).unwrap();
        assert!(
            smaller > 0.88 && smaller < 0.91,
            "JSON ~10x smaller: {smaller}"
        );
    }

    #[test]
    fn heatmap_buckets_domains() {
        let mut t = Trace::new();
        // news-1: all cacheable; bank-1: none; game-1: half.
        for _ in 0..4 {
            push(
                &mut t,
                "https://news-1.example/a",
                None,
                Method::Get,
                MimeType::Json,
                1,
                CacheStatus::Hit,
            );
            push(
                &mut t,
                "https://bank-1.example/a",
                None,
                Method::Get,
                MimeType::Json,
                1,
                CacheStatus::NotCacheable,
            );
        }
        for i in 0..4 {
            push(
                &mut t,
                "https://game-1.example/a",
                None,
                Method::Get,
                MimeType::Json,
                1,
                if i % 2 == 0 {
                    CacheStatus::Hit
                } else {
                    CacheStatus::NotCacheable
                },
            );
        }
        let h = CacheabilityHeatmap::compute(&t, &TokenCategoryProvider, 10);
        assert_eq!(h.rows[&IndustryCategory::NewsMedia][9], 1);
        assert_eq!(h.rows[&IndustryCategory::FinancialServices][0], 1);
        assert_eq!(h.rows[&IndustryCategory::Gaming][5], 1);
        assert!((h.never_cacheable_share() - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.always_cacheable_share() - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.row_mean(IndustryCategory::Gaming).unwrap() - 0.55).abs() < 1e-12);
        assert_eq!(h.uncategorized, 0);
    }

    #[test]
    fn heatmap_handles_unknown_hosts() {
        let mut t = Trace::new();
        push(
            &mut t,
            "https://mystery.example/a",
            None,
            Method::Get,
            MimeType::Json,
            1,
            CacheStatus::Hit,
        );
        let h = CacheabilityHeatmap::compute(&t, &TokenCategoryProvider, 10);
        assert_eq!(h.uncategorized, 1);
        assert!(h.rows.is_empty());
    }

    #[test]
    fn ratio_requires_html() {
        let mut t = Trace::new();
        push(
            &mut t,
            "https://a.example/j",
            None,
            Method::Get,
            MimeType::Json,
            1,
            CacheStatus::Hit,
        );
        assert!(json_html_ratio(&t).is_none());
        push(
            &mut t,
            "https://a.example/h",
            None,
            Method::Get,
            MimeType::Html,
            1,
            CacheStatus::Hit,
        );
        for _ in 0..3 {
            push(
                &mut t,
                "https://a.example/j",
                None,
                Method::Get,
                MimeType::Json,
                1,
                CacheStatus::Hit,
            );
        }
        assert_eq!(json_html_ratio(&t), Some(4.0));
    }

    #[test]
    fn availability_separates_end_user_from_attempt_failures() {
        let mut t = Trace::new();
        let mut push_attempt = |url: &str, status: u16, retries: u8, flags: RecordFlags| {
            let url = t.intern_url(url);
            t.push(LogRecord {
                time: SimTime::ZERO,
                client: ClientId(1),
                ua: None,
                url,
                method: Method::Get,
                mime: MimeType::Json,
                status,
                response_bytes: 1,
                cache: CacheStatus::Miss,
                retries,
                flags,
            });
        };
        // Request A on a sports domain: fails, retried, then succeeds.
        push_attempt("https://sports-1.example/a", 503, 0, RecordFlags::RETRIED);
        push_attempt("https://sports-1.example/a", 200, 1, RecordFlags::NONE);
        // Request B on a news domain: fails outright.
        push_attempt("https://news-1.example/b", 500, 0, RecordFlags::NONE);
        // Request C: rescued by serve-stale (a success from the user's view).
        push_attempt(
            "https://news-1.example/c",
            200,
            0,
            RecordFlags::SERVED_STALE.with(RecordFlags::NEG_CACHED),
        );

        let a = AvailabilityBreakdown::compute(&t, &TokenCategoryProvider);
        assert_eq!(a.attempts, 4);
        assert_eq!(a.retried_attempts, 1);
        assert_eq!(a.logical_requests(), 3);
        assert_eq!(a.attempt_failures, 2);
        assert_eq!(a.end_user_failures, 1, "the retried 503 is not end-user");
        assert!((a.end_user_error_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.attempt_error_rate() - 0.5).abs() < 1e-12);
        assert!((a.retry_amplification() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.stale_serves, 1);
        assert_eq!(a.neg_cached, 1);

        assert_eq!(a.industry_availability(IndustryCategory::Sports), Some(1.0));
        assert_eq!(
            a.industry_availability(IndustryCategory::NewsMedia),
            Some(0.5)
        );
    }

    /// A trace with varied mimes, UAs, hosts, statuses, and flags spread
    /// over distinct timestamps, for shard-merge equivalence checks.
    fn varied_trace() -> Trace {
        let mut t = Trace::new();
        let uas: Vec<UaId> = [
            "NewsApp/1.0 (iPhone; iOS 12.4)",
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 \
             (KHTML, like Gecko) Chrome/74.0.3729.131 Safari/537.36",
            "okhttp/3.12.1",
        ]
        .iter()
        .map(|ua| t.intern_ua(ua))
        .collect();
        for i in 0..200u64 {
            let host = match i % 4 {
                0 => "news-1.example",
                1 => "bank-2.example",
                2 => "game-3.example",
                _ => "mystery.example",
            };
            let url = t.intern_url(&format!("https://{host}/api/{}", i % 9));
            t.push(LogRecord {
                time: SimTime::from_millis(i * 11),
                client: ClientId(i % 13),
                ua: (i % 5 != 0).then(|| uas[(i % 3) as usize]),
                url,
                method: if i % 6 == 0 {
                    Method::Post
                } else {
                    Method::Get
                },
                mime: match i % 3 {
                    0 => MimeType::Json,
                    1 => MimeType::Html,
                    _ => MimeType::Json,
                },
                status: if i % 17 == 0 { 503 } else { 200 },
                response_bytes: (i * 37) % 5000,
                cache: match i % 3 {
                    0 => CacheStatus::Hit,
                    1 => CacheStatus::Miss,
                    _ => CacheStatus::NotCacheable,
                },
                retries: 0,
                flags: if i % 23 == 0 {
                    RecordFlags::RETRIED
                } else {
                    RecordFlags::NONE
                },
            });
        }
        t
    }

    #[test]
    fn sharded_accumulation_merges_to_the_single_pass_result() {
        let whole = varied_trace();
        let classes = UaClassTable::build(whole.interner());

        let single_sources = TrafficSourceBreakdown::compute(&whole);
        let single_requests = RequestTypeBreakdown::compute(&whole);
        let mut single_responses = ResponseTypeBreakdown::compute(&whole);
        let single_heatmap = CacheabilityHeatmap::compute(&whole, &TokenCategoryProvider, 10);
        let single_avail = AvailabilityBreakdown::compute(&whole, &TokenCategoryProvider);
        let single_mix = ContentMix::compute(&whole);

        for shard_count in [1usize, 2, 3, 8] {
            let sharded = ShardedTrace::from_trace(varied_trace(), shard_count);
            let mut sources = TrafficSourceBreakdown::default();
            let mut requests = RequestTypeBreakdown::default();
            let mut responses = ResponseTypeBreakdown::default();
            let mut domains = DomainCacheability::default();
            let mut avail = AvailabilityBreakdown::default();
            let mut mix = ContentMix::default();
            for i in 0..sharded.shard_count() {
                let stream = sharded.shard_stream(i);
                let mut s = TrafficSourceBreakdown::default();
                s.accumulate(&stream, &classes);
                sources.merge(&s);
                let mut q = RequestTypeBreakdown::default();
                q.accumulate(&stream);
                requests.merge(&q);
                let mut r = ResponseTypeBreakdown::default();
                r.accumulate(&stream);
                responses.merge(&r);
                let mut d = DomainCacheability::default();
                d.accumulate(&stream);
                domains.merge(&d);
                let mut a = AvailabilityBreakdown::default();
                a.accumulate(&stream, &TokenCategoryProvider);
                avail.merge(&a);
                let mut m = ContentMix::default();
                m.accumulate(&stream);
                mix.merge(&m);
            }
            sources.count_ua_strings(&classes);

            assert_eq!(sources, single_sources, "{shard_count} shards");
            assert_eq!(requests, single_requests, "{shard_count} shards");
            assert_eq!(avail, single_avail, "{shard_count} shards");
            assert_eq!(mix, single_mix, "{shard_count} shards");
            assert_eq!(
                domains.finalize(&TokenCategoryProvider, 10),
                single_heatmap,
                "{shard_count} shards"
            );
            assert_eq!(responses.json_total, single_responses.json_total);
            assert_eq!(
                responses.json_uncacheable,
                single_responses.json_uncacheable
            );
            for q in [0.1, 0.5, 0.75, 0.99] {
                assert_eq!(
                    responses.json_sizes.quantile(q),
                    single_responses.json_sizes.quantile(q),
                    "{shard_count} shards, q={q}"
                );
                assert_eq!(
                    responses.html_sizes.quantile(q),
                    single_responses.html_sizes.quantile(q),
                    "{shard_count} shards, q={q}"
                );
            }
        }
    }
}
