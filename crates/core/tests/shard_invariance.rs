//! End-to-end shard-invariance properties: the sharded pipeline (parallel
//! generate → shard-framed codec → scatter–gather characterize) produces
//! results identical to the single-shard, single-thread pipeline for any
//! shard count, thread count, and seed.
//!
//! The CI matrix exercises specific shard counts by setting
//! `JCDN_TEST_SHARDS`; without it every test covers {1, 2, 8}.

use jcdn_cdnsim::SimConfig;
use jcdn_core::characterize::TokenCategoryProvider;
use jcdn_core::dataset::{simulate_workload_parallel, Dataset};
use jcdn_core::pipeline::CharacterizationReport;
use jcdn_trace::codec::{decode_sharded, encode_sharded};
use jcdn_trace::ShardedTrace;
use jcdn_workload::{build_parallel, WorkloadConfig};
use proptest::prelude::*;

/// Shard counts under test: `JCDN_TEST_SHARDS` (comma-separated) when the
/// CI matrix sets it, `{1, 2, 8}` otherwise.
fn shard_counts() -> Vec<usize> {
    match std::env::var("JCDN_TEST_SHARDS") {
        Ok(raw) => raw
            .split(',')
            .map(|part| part.trim().parse().expect("JCDN_TEST_SHARDS: bad count"))
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

fn generate(seed: u64, threads: usize) -> Dataset {
    let config = WorkloadConfig::tiny(seed).scaled(0.25);
    let workload = build_parallel(&config, threads);
    let sim = SimConfig {
        edges: 4,
        ..SimConfig::default()
    };
    simulate_workload_parallel(workload, &sim, threads)
}

/// Reference report: single trace, one pass, no worker pool.
fn baseline_report(data: &Dataset) -> CharacterizationReport {
    CharacterizationReport::compute(&data.trace, &TokenCategoryProvider)
}

fn assert_reports_equal(
    seed: u64,
    shards: usize,
    a: &CharacterizationReport,
    b: &CharacterizationReport,
) {
    let ctx = format!("seed {seed}, {shards} shards");
    assert_eq!(a.sources, b.sources, "traffic sources diverged ({ctx})");
    assert_eq!(a.requests, b.requests, "request types diverged ({ctx})");
    assert_eq!(a.heatmap, b.heatmap, "heatmap diverged ({ctx})");
    assert_eq!(
        a.availability, b.availability,
        "availability diverged ({ctx})"
    );
    assert_eq!(a.mix, b.mix, "content mix diverged ({ctx})");
    // Response sizes carry quantile pools; compare through the query API.
    let mut left = a.responses.clone();
    let mut right = b.responses.clone();
    assert_eq!(
        left.uncacheable_share(),
        right.uncacheable_share(),
        "uncacheable share diverged ({ctx})"
    );
    for q in [0.1, 0.5, 0.75, 0.99] {
        assert_eq!(
            left.json_smaller_than_html_at(q),
            right.json_smaller_than_html_at(q),
            "size quantile p{q} diverged ({ctx})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The whole pipeline — generate in parallel, frame into shards,
    // round-trip through codec v3, characterize with a worker pool —
    // matches the sequential single-shard run for any seed.
    #[test]
    fn sharded_pipeline_matches_sequential(seed in 0u64..1000) {
        let baseline = generate(seed, 1);
        let expected = baseline_report(&baseline);

        for shards in shard_counts() {
            for threads in [1usize, 4] {
                let data = generate(seed, threads);
                prop_assert_eq!(
                    data.trace.records(),
                    baseline.trace.records(),
                    "trace diverged at seed {} with {} threads",
                    seed,
                    threads
                );
                let sharded = ShardedTrace::from_trace(data.trace, shards);
                let bytes = encode_sharded(&sharded).expect("traces are canonical-sorted");
                let decoded = decode_sharded(bytes).expect("own encoding decodes");
                prop_assert_eq!(decoded.shard_count(), sharded.shard_count());
                let report = CharacterizationReport::compute_sharded(
                    &decoded,
                    &TokenCategoryProvider,
                    threads,
                );
                assert_reports_equal(seed, shards, &report, &expected);
            }
        }
    }
}

/// The cache-hierarchy leg of the CI matrix: a 3-tier hierarchy (edge +
/// two shared tiers) with non-LRU policies must go through the lockstep
/// parallel driver — `run_sharded` no longer falls back to sequential
/// when shared tiers exist — and produce byte-identical records and
/// observability counters at every `JCDN_TEST_SHARDS` leg (the shard
/// counts double as simulator thread counts here).
#[test]
fn ci_matrix_hierarchy_agrees_with_sequential() {
    use jcdn_cdnsim::{CacheHierarchy, Placement, PolicyKind, TierSpec};

    let sim = SimConfig {
        edges: 4,
        hierarchy: Some(CacheHierarchy {
            edge: TierSpec::lru("edge", 16 << 20).with_policy(PolicyKind::TinyLfu),
            shared: vec![
                TierSpec::lru("regional", 64 << 20).with_policy(PolicyKind::S3Fifo),
                TierSpec::lru("shield", 256 << 20).with_policy(PolicyKind::Slru),
            ],
            placement: Placement::CopyDown,
            sync_interval: CacheHierarchy::DEFAULT_SYNC_INTERVAL,
        }),
        ..SimConfig::default()
    };
    let config = WorkloadConfig::tiny(7).scaled(0.25);
    let workload = build_parallel(&config, 2);
    let baseline = simulate_workload_parallel(workload.clone(), &sim, 1);
    assert!(
        !baseline.stats.tier_hits.is_empty(),
        "hierarchy runs must produce per-tier counters"
    );
    for threads in shard_counts() {
        let data = simulate_workload_parallel(workload.clone(), &sim, threads);
        assert_eq!(
            data.trace.records(),
            baseline.trace.records(),
            "hierarchy trace diverged at {threads} thread(s)"
        );
        assert_eq!(
            data.stats.tier_hits, baseline.stats.tier_hits,
            "tier hits diverged at {threads} thread(s)"
        );
        assert_eq!(
            data.stats.tier_misses, baseline.stats.tier_misses,
            "tier misses diverged at {threads} thread(s)"
        );
        assert_eq!(
            data.metrics.counters_json(),
            baseline.metrics.counters_json(),
            "obs counters diverged at {threads} thread(s)"
        );
    }
}

/// Fixed-seed variant so the CI matrix (JCDN_TEST_SHARDS=1 vs 8) gets a
/// deterministic, directly comparable run in both legs.
#[test]
fn ci_matrix_shard_counts_agree_with_baseline() {
    let data = generate(99, 2);
    let expected = baseline_report(&data);
    for shards in shard_counts() {
        let sharded = ShardedTrace::from_trace(data.trace.clone(), shards);
        let report = CharacterizationReport::compute_sharded(&sharded, &TokenCategoryProvider, 2);
        assert_reports_equal(99, shards, &report, &expected);
    }
}
