//! Observability counters are part of the determinism contract: the
//! simulator's per-edge counter snapshot must serialize byte-identically
//! for any shard/thread count (mirroring `shard_invariance.rs`), while
//! the perf side (gauges, histograms, pool reports) is explicitly allowed
//! to differ run to run.
//!
//! The CI matrix exercises specific shard counts by setting
//! `JCDN_TEST_SHARDS`; without it every test covers {1, 2, 8}.

use jcdn_cdnsim::SimConfig;
use jcdn_core::dataset::{simulate_workload_parallel, Dataset};
use jcdn_core::series::{SeriesReport, DEFAULT_TOP_URLS};
use jcdn_obs::timeseries::WindowSpec;
use jcdn_obs::RunManifest;
use jcdn_trace::ShardedTrace;
use jcdn_workload::{build_parallel, WorkloadConfig};

/// Shard counts under test: `JCDN_TEST_SHARDS` (comma-separated) when the
/// CI matrix sets it, `{1, 2, 8}` otherwise.
fn shard_counts() -> Vec<usize> {
    match std::env::var("JCDN_TEST_SHARDS") {
        Ok(raw) => raw
            .split(',')
            .map(|part| part.trim().parse().expect("JCDN_TEST_SHARDS: bad count"))
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

fn generate(seed: u64, threads: usize) -> Dataset {
    let config = WorkloadConfig::tiny(seed).scaled(0.25);
    let workload = build_parallel(&config, threads);
    let sim = SimConfig {
        edges: 4,
        error_fraction: 0.02, // exercise retry/origin-error counters too
        ..SimConfig::default()
    };
    simulate_workload_parallel(workload, &sim, threads)
}

fn window() -> WindowSpec {
    match WindowSpec::parse("1m") {
        Ok(spec) => spec,
        Err(e) => unreachable!("static spec: {e}"),
    }
}

/// `generate` with per-window sim counters enabled.
fn generate_windowed(seed: u64, threads: usize) -> Dataset {
    let config = WorkloadConfig::tiny(seed).scaled(0.25);
    let workload = build_parallel(&config, threads);
    let sim = SimConfig {
        edges: 4,
        error_fraction: 0.02,
        window: Some(window()),
        ..SimConfig::default()
    };
    simulate_workload_parallel(workload, &sim, threads)
}

#[test]
fn counter_section_is_byte_identical_across_thread_counts() {
    let baseline = generate(7, 1);
    let expected = baseline.metrics.counters_json();
    assert!(
        expected.contains("sim.requests{edge="),
        "baseline counters populated: {expected}"
    );
    for threads in shard_counts() {
        let data = generate(7, threads.max(1));
        assert_eq!(
            data.metrics.counters_json(),
            expected,
            "{threads} threads diverged"
        );
    }
}

#[test]
fn counter_section_is_byte_identical_across_same_seed_runs() {
    let a = generate(11, 2);
    let b = generate(11, 2);
    assert_eq!(a.metrics.counters_json(), b.metrics.counters_json());
}

#[test]
fn windowed_sim_series_is_byte_identical_across_thread_counts() {
    let baseline = generate_windowed(7, 1);
    let expected = match &baseline.series {
        Some(series) => series.to_jsonl("sim"),
        None => unreachable!("window configured, series must be present"),
    };
    assert!(
        expected.contains("\"stream\":\"sim\"") && expected.contains("sim.requests{edge="),
        "baseline series populated: {expected}"
    );
    for threads in shard_counts() {
        let data = generate_windowed(7, threads.max(1));
        let rendered = match &data.series {
            Some(series) => series.to_jsonl("sim"),
            None => unreachable!("window configured, series must be present"),
        };
        assert_eq!(rendered, expected, "{threads} threads diverged");
    }
}

#[test]
fn windowed_section4_series_is_byte_identical_across_shard_and_thread_counts() {
    let trace = generate(7, 2).trace;
    let expected = SeriesReport::compute(&trace, window(), DEFAULT_TOP_URLS).to_jsonl();
    assert!(
        expected.contains("\"stream\":\"section4\""),
        "baseline rows populated"
    );
    for shards in shard_counts() {
        for threads in [1usize, 4] {
            let sharded = ShardedTrace::from_trace(trace.clone(), shards.max(1));
            let rendered =
                SeriesReport::compute_sharded(&sharded, threads, window(), DEFAULT_TOP_URLS)
                    .to_jsonl();
            assert_eq!(rendered, expected, "{shards} shards x {threads} threads");
        }
    }
}

#[test]
fn window_row_totals_match_run_totals() {
    // The windowed sim series partitions the run totals: summing every
    // bucket must reproduce the flat counter section exactly (modulo the
    // cache-occupancy keys, which are state gauges rather than windowed
    // events).
    let data = generate_windowed(11, 2);
    let Some(series) = &data.series else {
        unreachable!("window configured, series must be present");
    };
    let windowed = series.total().counters_json();
    let flat: String = data
        .metrics
        .counters_json()
        .split(',')
        .filter(|part| !part.contains("cache.evic"))
        .collect::<Vec<_>>()
        .join(",");
    assert_eq!(windowed, flat);
}

#[test]
fn manifests_with_identical_counters_may_differ_only_in_perf() {
    // Two manifests built from same-seed runs: counter sections equal
    // byte for byte even though the perf sections (wall time, pools)
    // legitimately differ.
    let mut first = RunManifest::start("test");
    first.metrics.merge(&generate(13, 4).metrics);
    first.finish();

    let mut second = RunManifest::start("test");
    second.metrics.merge(&generate(13, 1).metrics);
    second.finish();

    assert_eq!(first.counters_json(), second.counters_json());
    // The full JSON still embeds the identical counter section verbatim.
    assert!(first.to_json().contains(&first.counters_json()));
    assert!(second.to_json().contains(&first.counters_json()));
}
