//! Manifest-driven prefetching (Table 1's pattern, executed by the edge).

use std::collections::HashMap;

use jcdn_cdnsim::{Policy, PolicyOutcome, RequestCtx};
use jcdn_workload::ObjectInfo;

/// A [`Policy`] that parses JSON manifest bodies as they are served and
/// prefetches the objects they reference.
///
/// This is the JSON analogue of HTML-driven server push: "browser traffic
/// is guided by an HTML manifest file … however, non-browser traffic from
/// mobile apps is less standardized" (§1) — but when the app's root object
/// *is* a manifest (Table 1), the CDN can read the same structure.
///
/// Reference resolution is by exact URL match against the object universe;
/// parse results are memoized per object id.
#[derive(Debug, Default)]
pub struct ManifestPrefetcher {
    /// Memoized manifest → children resolution.
    children: HashMap<u32, Vec<u32>>,
    /// URL → object index for the bound universe.
    url_to_object: HashMap<String, u32>,
    /// Whether the universe has been bound.
    bound: bool,
}

impl ManifestPrefetcher {
    /// Creates an unbound prefetcher.
    pub fn new() -> Self {
        ManifestPrefetcher::default()
    }

    /// Indexes the universe's URLs (must run before simulation).
    pub fn bind_universe(&mut self, objects: &[ObjectInfo]) {
        self.url_to_object = objects
            .iter()
            .enumerate()
            .map(|(i, o)| (o.url.clone(), i as u32))
            .collect();
        self.children.clear();
        self.bound = true;
    }

    fn resolve_children(&mut self, object_id: u32, objects: &[ObjectInfo]) -> Vec<u32> {
        if let Some(cached) = self.children.get(&object_id) {
            return cached.clone();
        }
        let object = &objects[object_id as usize];
        let mut resolved = Vec::new();
        if let Some(body) = &object.body {
            if let Ok(doc) = jcdn_json::parse(body) {
                let base = jcdn_url::Url::parse(&object.url).ok();
                for reference in jcdn_json::extract_url_refs(&doc) {
                    // Try exact match first, then resolve relative refs
                    // against the manifest's own URL.
                    let target = if let Some(&id) = self.url_to_object.get(reference) {
                        Some(id)
                    } else if let Some(base) = &base {
                        base.join(reference)
                            .ok()
                            .and_then(|joined| self.url_to_object.get(&joined.to_string()).copied())
                    } else {
                        None
                    };
                    if let Some(id) = target {
                        resolved.push(id);
                    }
                }
            }
        }
        self.children.insert(object_id, resolved.clone());
        resolved
    }
}

impl Policy for ManifestPrefetcher {
    fn on_request(&mut self, ctx: &RequestCtx<'_>) -> PolicyOutcome {
        debug_assert!(self.bound, "bind_universe must run before simulation");
        let prefetch = self.resolve_children(ctx.object, ctx.objects);
        PolicyOutcome {
            prefetch,
            priority: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jcdn_cdnsim::{run, run_default, SimConfig};
    use jcdn_workload::{build, WorkloadConfig};

    #[test]
    fn resolves_children_from_real_manifest_bodies() {
        let w = build(&WorkloadConfig::tiny(51));
        let mut p = ManifestPrefetcher::new();
        p.bind_universe(&w.objects);
        // Find a manifest object and check its children resolve to the
        // ground-truth reference set.
        let (manifest_id, truth_children) = w
            .truth
            .manifest_children
            .iter()
            .find(|(&id, _)| w.objects[id as usize].body.is_some())
            .map(|(&id, c)| (id, c.clone()))
            .expect("workload has JSON manifests");
        let resolved = p.resolve_children(manifest_id, &w.objects);
        assert!(!resolved.is_empty());
        for child in &resolved {
            assert!(
                truth_children.contains(child),
                "resolved child {child} not in ground truth"
            );
        }
    }

    #[test]
    fn manifest_prefetching_improves_hit_ratio() {
        let w = build(&WorkloadConfig::tiny(61));
        let base = run_default(&w, &SimConfig::default());
        let mut p = ManifestPrefetcher::new();
        p.bind_universe(&w.objects);
        let boosted = run(&w, &SimConfig::default(), &mut p);
        assert!(boosted.stats.prefetch_issued > 0);
        assert!(
            boosted.stats.cacheable_hit_ratio().unwrap()
                >= base.stats.cacheable_hit_ratio().unwrap(),
            "manifest prefetch must not hurt"
        );
    }

    #[test]
    fn non_manifest_objects_prefetch_nothing() {
        let w = build(&WorkloadConfig::tiny(71));
        let mut p = ManifestPrefetcher::new();
        p.bind_universe(&w.objects);
        let plain = w
            .objects
            .iter()
            .position(|o| o.body.is_none())
            .expect("plain objects exist") as u32;
        assert!(p.resolve_children(plain, &w.objects).is_empty());
    }
}
