//! # jcdn-prefetch — the optimizations §5 of the paper proposes
//!
//! The paper stops at *suggesting* optimizations; this crate builds them on
//! top of the simulator so their effect can be measured:
//!
//! * [`NgramPrefetcher`] — "a JSON request prediction system can be used by
//!   CDNs to perform prefetching for cacheable requests" (§5.2): a backoff
//!   n-gram model trained on a previous trace predicts each client's next
//!   requests and warms the edge cache.
//! * [`ManifestPrefetcher`] — Table 1's pattern directly: when a manifest
//!   JSON body passes through the edge, parse it (with `jcdn-json`) and
//!   prefetch the objects it references — the JSON analogue of HTML-driven
//!   server push.
//! * [`DeprioritizePolicy`] — "CDN operators can deprioritize machine-to-
//!   machine traffic as it is not human-triggered" (§5.1/§7): periodic
//!   flows are served at lower priority.
//! * [`anomaly`] — "periodic information can also be used for anomaly
//!   detection when an object is requested at a different period … detect
//!   when a highly unlikely object is requested": sequence- and
//!   period-deviation detectors over traces.
//! * [`lead_time`] — the interarrival-aware analysis §5.2 leaves as future
//!   work: how much time a prefetcher actually has between trigger and
//!   demand request.
//! * [`eval`] — A/B harnesses that run the simulator with and without a
//!   policy and report hit-ratio and latency deltas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
mod depri;
pub mod eval;
pub mod lead_time;
mod manifest;
mod ngram_prefetch;

pub use depri::DeprioritizePolicy;
pub use manifest::ManifestPrefetcher;
pub use ngram_prefetch::NgramPrefetcher;
