//! A/B evaluation harnesses: simulate with and without a policy and report
//! the deltas the paper's §5 implications predict.

use jcdn_cdnsim::{run, run_default, Policy, SimConfig, SimStats};
use jcdn_workload::Workload;

/// Side-by-side statistics of a baseline run and a policy run.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The no-policy run.
    pub baseline: SimStats,
    /// The policy run.
    pub with_policy: SimStats,
}

impl Comparison {
    /// Absolute cacheable-hit-ratio uplift (policy − baseline).
    pub fn hit_ratio_uplift(&self) -> Option<f64> {
        Some(self.with_policy.cacheable_hit_ratio()? - self.baseline.cacheable_hit_ratio()?)
    }

    /// Fraction of issued prefetches that served a later demand hit.
    pub fn prefetch_precision(&self) -> Option<f64> {
        (self.with_policy.prefetch_issued > 0).then(|| {
            self.with_policy.prefetch_useful as f64 / self.with_policy.prefetch_issued as f64
        })
    }

    /// Extra origin bytes the policy spent, relative to baseline.
    pub fn extra_origin_bytes(&self) -> i64 {
        self.with_policy.bytes_origin as i64 - self.baseline.bytes_origin as i64
    }

    /// Mean normal-class latency change (policy − baseline), seconds.
    pub fn normal_latency_delta(&self) -> Option<f64> {
        Some(self.with_policy.latency_normal.mean()? - self.baseline.latency_normal.mean()?)
    }
}

/// Runs the workload twice — without and with `policy` — under the same
/// simulator configuration.
pub fn compare_policies(
    workload: &Workload,
    config: &SimConfig,
    policy: &mut dyn Policy,
) -> Comparison {
    let baseline = run_default(workload, config).stats;
    let with_policy = run(workload, config, policy).stats;
    Comparison {
        baseline,
        with_policy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ManifestPrefetcher;
    use jcdn_workload::{build, WorkloadConfig};

    #[test]
    fn comparison_reports_uplift_and_cost() {
        let w = build(&WorkloadConfig::tiny(101));
        let mut policy = ManifestPrefetcher::new();
        policy.bind_universe(&w.objects);
        let cmp = compare_policies(&w, &SimConfig::default(), &mut policy);
        let uplift = cmp.hit_ratio_uplift().unwrap();
        assert!(uplift >= 0.0, "manifest prefetch must not hurt: {uplift}");
        if cmp.with_policy.prefetch_issued > 0 {
            // The origin-byte delta can go either way: prefetches cost
            // fetches, but every useful prefetch avoids later demand
            // misses. It must at least move.
            assert_ne!(cmp.extra_origin_bytes(), 0);
            let precision = cmp.prefetch_precision().unwrap();
            assert!((0.0..=1.0).contains(&precision));
        }
    }
}
